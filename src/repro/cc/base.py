"""Controller interface shared by classical and learned congestion controllers.

All quantities use these units throughout the simulator:

* time — seconds,
* window / queue sizes — packets (MSS-sized, fractional amounts allowed because
  the simulator is fluid),
* rates — packets per second.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["TickFeedback", "CongestionController", "MIN_CWND", "MSS_BYTES"]

#: Minimum congestion window enforced for every controller (packets).
MIN_CWND = 2.0

#: Maximum-segment size assumed when converting Mbps to packets/second.
MSS_BYTES = 1500


@dataclass(frozen=True)
class TickFeedback:
    """Per-tick feedback delivered to a controller by its flow.

    Attributes:
        now: Simulation time (seconds) at the end of the tick.
        dt: Tick duration (seconds).
        acked: Packets acknowledged during this tick.
        lost: Packets reported lost during this tick.
        rtt: Most recent RTT sample in seconds (0.0 if no ack arrived).
        min_rtt: Smallest RTT observed so far on this flow (seconds).
        queuing_delay: Most recent queuing-delay sample in seconds.
        inflight: Packets currently in flight after processing acks/losses.
        delivery_rate: Smoothed delivery (ack) rate in packets/second.
    """

    now: float
    dt: float
    acked: float
    lost: float
    rtt: float
    min_rtt: float
    queuing_delay: float
    inflight: float
    delivery_rate: float


class CongestionController(ABC):
    """Base class: owns the congestion window and reacts to network feedback."""

    name = "base"

    def __init__(self, initial_cwnd: float = 10.0) -> None:
        if initial_cwnd < MIN_CWND:
            initial_cwnd = MIN_CWND
        self._cwnd = float(initial_cwnd)

    @property
    def cwnd(self) -> float:
        """Current congestion window in packets."""
        return self._cwnd

    def set_cwnd(self, value: float) -> None:
        """Override the window (used by the Orca/Canopy coarse-grained agent)."""
        self._cwnd = max(MIN_CWND, float(value))

    def reset(self) -> None:
        """Reset controller state at the start of a new flow."""
        self._cwnd = max(MIN_CWND, self._cwnd)

    @abstractmethod
    def on_tick(self, feedback: TickFeedback) -> None:
        """Update internal state (and cwnd) from one tick of feedback."""

    def pacing_rate(self, feedback: TickFeedback | None = None) -> float | None:
        """Optional pacing rate in packets/second (None means window-limited only)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(cwnd={self._cwnd:.2f})"
