"""Time-stepped network simulator driving a topology of bottleneck hops.

This is the Mahimahi substitute: it advances simulation time in fixed ticks,
moves packets from every active flow onto the first hop of its route, drains
every hop at its trace-driven capacity in topological order, and records
per-tick statistics.  Routes may fork/join over a DAG, every chunk following
its own flow's route.

Propagation follows the per-hop delay-split convention (see
:mod:`repro.topology.graph`): a chunk leaving hop *i* enters the
:class:`~repro.topology.transit.TransitQueue` and only becomes eligible for
hop *i+1*'s FIFO after hop *i*'s forward delay share (``delay / 2``), so a
chunk can no longer traverse a whole multi-hop DAG inside one tick.  The
terminal hop's delivery schedules the ack after the *remaining* return-path
delay, so the ack still arrives one full path RTT (plus accumulated queuing)
after the send — and a one-hop route, which never enters transit, charges
everything at ack time exactly like the legacy single-link simulator.

The network can be a full :class:`repro.topology.graph.Topology` — multi-hop
chains, parking lots, dumbbells, fan-in/tree/shared-segment DAGs, with
declarative cross-traffic sources — or a bare
:class:`repro.cc.link.BottleneckLink`, which is wrapped as a one-hop
topology and reproduces the legacy single-link trajectory exactly (pinned by
``tests/test_topology_differential.py``).  Flows may start and stop mid-run
(:class:`repro.cc.flow.Flow` lifetimes); ``SimulationResult.lifetimes``
records each flow's active window.

Two consumption styles are supported:

* ``run(duration)`` — run the whole experiment and return a
  :class:`SimulationResult` (used by the evaluation harness).
* ``tick()`` / ``monitor_report(flow_id)`` — step manually; used by
  :class:`repro.orca.env.OrcaNetworkEnv`, whose RL agent interacts with the
  network once per monitor interval.

Observability: an optional :class:`~repro.telemetry.events.EventTrace`
records structured, sim-time-stamped events from the tick loop — per-hop
queue/transit drops, flow arrival/departure transitions, and conservation
snapshots every ``stride`` ticks — and an optional
:class:`~repro.telemetry.profiler.TickProfiler` times the tick phases in
wall-clock, reported separately so determinism is untouched.  Both default to
``None`` and cost the hot path only a few ``is not None`` checks per tick
(the chain(3) tick-rate bench pins the disabled overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cc.flow import Flow, TickRecord
from repro.cc.link import BottleneckLink
from repro.telemetry.events import EventTrace
from repro.telemetry.profiler import TickProfiler

__all__ = ["NetworkSimulator", "FlowStats", "MonitorReport", "SimulationResult"]

DEFAULT_TICK = 0.01


@dataclass
class FlowStats:
    """Per-tick time series collected for one flow."""

    flow_id: int
    records: List[TickRecord] = field(default_factory=list)

    def append(self, record: TickRecord) -> None:
        self.records.append(record)

    # Convenience array views -------------------------------------------------
    def _column(self, name: str) -> np.ndarray:
        return np.array([getattr(r, name) for r in self.records], dtype=np.float64)

    @property
    def times(self) -> np.ndarray:
        return self._column("time")

    @property
    def acked(self) -> np.ndarray:
        return self._column("acked")

    @property
    def sent(self) -> np.ndarray:
        return self._column("sent")

    @property
    def lost(self) -> np.ndarray:
        return self._column("lost")

    @property
    def rtt(self) -> np.ndarray:
        return self._column("rtt")

    @property
    def queuing_delay(self) -> np.ndarray:
        return self._column("queuing_delay")

    @property
    def cwnd(self) -> np.ndarray:
        return self._column("cwnd")

    @property
    def inflight(self) -> np.ndarray:
        return self._column("inflight")


@dataclass(frozen=True)
class MonitorReport:
    """Aggregated statistics over one monitor interval (the paper's Table 1)."""

    throughput_pps: float      # thr — average delivery rate over the interval
    loss_rate: float           # l — lost / (lost + acked)
    avg_queuing_delay: float   # delay — packet-weighted average queuing delay (s)
    n_acks: float              # n — number of (fluid) acked packets
    interval: float            # m — time since the previous report (s)
    srtt: float                # smoothed RTT (s)
    min_rtt: float             # minimum RTT observed so far (s)
    avg_rtt: float             # packet-weighted average RTT over the interval (s)
    cwnd: float                # controller window at the end of the interval
    sent_pps: float            # sending rate over the interval


@dataclass
class SimulationResult:
    """Outcome of a full simulation run.

    ``lifetimes`` maps each flow id to its ``(start_time, stop_time)`` window
    (``stop_time`` is ``None`` for flows that live to the end of the run) so
    downstream summaries can score churned flows over their *active* window
    only instead of averaging in the silence before arrival / after departure.
    """

    duration: float
    dt: float
    flow_stats: Dict[int, FlowStats]
    capacity_mbps: np.ndarray
    times: np.ndarray
    lifetimes: Dict[int, Tuple[float, Optional[float]]] = field(default_factory=dict)

    def stats_for(self, flow_id: int) -> FlowStats:
        return self.flow_stats[flow_id]

    def lifetime_for(self, flow_id: int) -> Tuple[float, Optional[float]]:
        """The flow's active window; ``(0.0, None)`` when nothing was recorded."""
        return self.lifetimes.get(flow_id, (0.0, None))


class NetworkSimulator:
    """Drives a topology of hops and a set of flows in lockstep.

    ``network`` is either a :class:`~repro.topology.graph.Topology` or a bare
    :class:`~repro.cc.link.BottleneckLink` (wrapped as a one-hop topology for
    backward compatibility).  ``self.link`` always refers to the designated
    bottleneck hop's queue, so callers that only care about the reference
    capacity — the Orca environment, the evaluation metrics — work unchanged
    on any topology.
    """

    def __init__(
        self,
        network: Union[BottleneckLink, "Topology"],
        flows: Sequence[Flow],
        dt: float = DEFAULT_TICK,
        telemetry: Optional[EventTrace] = None,
        profiler: Optional[TickProfiler] = None,
    ) -> None:
        # Imported here (not at module top): repro.topology builds on
        # repro.cc.link / repro.traces, so a module-level import would cycle.
        from repro.topology.graph import Topology

        if dt <= 0:
            raise ValueError("dt must be positive")
        if not flows:
            raise ValueError("at least one flow is required")
        ids = [flow.flow_id for flow in flows]
        if len(set(ids)) != len(ids):
            raise ValueError("flow ids must be unique")
        if any(fid < 0 for fid in ids):
            raise ValueError("flow ids must be non-negative (negative ids are "
                             "reserved for cross traffic)")
        if isinstance(network, Topology):
            self.topology = network
        else:
            self.topology = Topology.single(network)
        #: Back-compat alias: the bottleneck hop's queue (the only hop for
        #: legacy single-link simulations).
        self.link = self.topology.bottleneck.queue

        self.flows: Dict[int, Flow] = {flow.flow_id: flow for flow in flows}
        # Flow membership is fixed for the simulator's lifetime; cache the
        # iteration list so the per-tick hot path does not rebuild it.
        self._flow_list: List[Flow] = list(self.flows.values())
        self.dt = float(dt)
        self.now = 0.0
        self.stats: Dict[int, FlowStats] = {fid: FlowStats(fid) for fid in self.flows}
        self._capacity_log: List[float] = []
        self._time_log: List[float] = []
        # Monitor-interval accumulators keyed by flow id.  The first report
        # interval of a late-starting flow begins at its start time, not at
        # t=0, so churned flows do not dilute their first interval with the
        # silence before they arrived.
        self._monitor_acc: Dict[int, Dict[str, float]] = {fid: self._fresh_acc() for fid in self.flows}
        self._last_report_time: Dict[int, float] = {fid: flow.start_time
                                                    for fid, flow in self.flows.items()}
        self._tick_count = 0

        # Route resolution, fixed for the simulator's lifetime: entry hop and
        # path RTT per flow, plus a (flow, hop) -> successor map used by the
        # drain loop to forward or deliver each chunk.  The delay split is
        # precomputed per route: the ack delay left after the forward transit
        # shares, and — per hop a flow can be dropped at — the return delay a
        # loss notification needs to travel back from there.
        from repro.topology.transit import TransitQueue

        self._telemetry = telemetry
        self._profiler = profiler
        # Lifecycle edge detection for flow_arrival/flow_departure events
        # (only consulted when telemetry is enabled).
        self._flow_active: Dict[int, bool] = {fid: False for fid in self.flows}
        if telemetry is not None:
            telemetry.emit("topology", **self.topology.describe())

        self._transit = TransitQueue(telemetry=telemetry)
        self._ordered_links = self.topology.ordered_links
        self._bottleneck_trace = self.topology.bottleneck.queue.trace
        self._entry_link: Dict[int, "Link"] = {}
        self._route_rtt: Dict[int, float] = {}
        self._next_hop: Dict[Tuple[int, str], Optional["Link"]] = {}
        self._ack_delay: Dict[int, float] = {}
        self._drop_notify_delay: Dict[Tuple[int, str], float] = {}
        for fid in self.flows:
            self._register_route(fid, self.topology.route_links(fid))
        self._cross_sources = list(self.topology.cross_traffic)
        #: Offered / delivered / dropped totals per cross-traffic source id.
        self.cross_stats: Dict[int, Dict[str, float]] = {}
        for source in self._cross_sources:
            self._register_route(source.flow_id,
                                 [self.topology.links[name] for name in source.path])
            self.cross_stats[source.flow_id] = {"offered": 0.0, "delivered": 0.0, "dropped": 0.0}

    def _register_route(self, flow_id: int, route) -> None:
        self._entry_link[flow_id] = route[0]
        rtt = sum(link.delay for link in route)
        self._route_rtt[flow_id] = rtt
        # Delay split: forwarding out of a non-terminal hop charges that hop's
        # forward share (delay / 2) in transit; whatever the forward path did
        # not charge is the ack's return delay, so ack time stays one full
        # path RTT after the send.  A chunk dropped entering a hop has already
        # incurred the forward shares of every hop before it, and the loss
        # notification travels back over those hops' (equal) return shares.
        incurred = 0.0
        for index, link in enumerate(route):
            successor = route[index + 1] if index + 1 < len(route) else None
            self._next_hop[(flow_id, link.name)] = successor
            self._drop_notify_delay[(flow_id, link.name)] = incurred
            if successor is not None:
                incurred += 0.5 * link.delay
        self._ack_delay[flow_id] = rtt - incurred

    @staticmethod
    def _fresh_acc() -> Dict[str, float]:
        return {"acked": 0.0, "lost": 0.0, "sent": 0.0, "delay_weighted": 0.0,
                "rtt_weighted": 0.0, "ack_weight": 0.0}

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def path_rtt(self, flow_id: int) -> float:
        """End-to-end propagation RTT of ``flow_id``'s route (seconds)."""
        return self._route_rtt[flow_id]

    def hop_occupancy(self) -> Dict[str, float]:
        """Queued packets per hop (for multi-bottleneck diagnostics)."""
        return {link.name: link.queue.queue_occupancy for link in self._ordered_links}

    def in_transit_occupancy(self) -> Dict[str, float]:
        """Packets propagating between hops, keyed by the destination hop.

        The in-transit bucket is disjoint from :meth:`hop_occupancy`: together
        with pending ack/loss notifications they account for every packet a
        flow has sent but not yet had acknowledged or reported lost
        (``sent == acked + lost + queued + in-transit + notifications``).
        """
        return self._transit.per_link_occupancy()

    def in_transit_total(self) -> float:
        """Total packets currently in the transit stage between hops."""
        return self._transit.occupancy

    def in_transit_per_flow(self) -> Dict[int, float]:
        """In-transit packets broken down by flow id (conservation suites)."""
        return self._transit.per_flow_occupancy()

    # ------------------------------------------------------------------ #
    # Core stepping
    # ------------------------------------------------------------------ #
    def tick(self) -> Dict[int, TickRecord]:
        """Advance the simulation by one tick and return per-flow records."""
        now = self.now
        dt = self.dt
        tel = self._telemetry
        prof = self._profiler
        if prof is not None:
            prof.begin()
        if tel is not None:
            tel.advance(now)
            # One conservation snapshot every `stride` ticks, taken after the
            # tick completes so the sums include this tick's movements.
            snapshot_due = self._tick_count % tel.stride == 0
            # Flow lifetime edges: a flow whose active window opened or closed
            # since the last tick emits an arrival/departure event.
            for fid, flow in self.flows.items():
                active = flow.is_active(now)
                if active != self._flow_active[fid]:
                    self._flow_active[fid] = active
                    tel.emit("flow_arrival" if active else "flow_departure", flow=fid)

        # 0. Cross-traffic sources offer their load at their entry hops (they
        # are already "on the wire", so they contend before this tick's
        # sender packets).
        for source in self._cross_sources:
            offered = source.generator.rate_pps(now) * dt
            if offered > 0:
                _, dropped, random_lost = self._entry_link[source.flow_id].queue.enqueue(
                    source.flow_id, offered, now)
                counters = self.cross_stats[source.flow_id]
                counters["offered"] += offered
                lost = dropped + random_lost
                counters["dropped"] += lost
                if tel is not None and lost > 0:
                    tel.emit("queue_drop", hop=self._entry_link[source.flow_id].name,
                             flow=source.flow_id, packets=lost)
        if prof is not None:
            prof.mark("inject")

        # 1. Senders put packets on the first hop of their route.  The service
        # order is rotated every tick so no flow systematically wins the race
        # for the last buffer slot (real links interleave packets from
        # different flows).
        flow_list = self._flow_list
        n_flows = len(flow_list)
        offset = self._tick_count % n_flows
        for position in range(n_flows):
            flow = flow_list[(offset + position) % n_flows]
            fid = flow.flow_id
            prop_rtt = self._route_rtt[fid]
            allowance = flow.send_allowance(now, dt, prop_rtt)
            if allowance > 0:
                accepted, dropped, random_lost = self._entry_link[fid].queue.enqueue(
                    fid, allowance, now)
                flow.record_sent(accepted, dropped, random_lost, now, prop_rtt)
                if tel is not None and dropped + random_lost > 0:
                    tel.emit("queue_drop", hop=self._entry_link[fid].name,
                             flow=fid, packets=dropped + random_lost)
        self._tick_count += 1
        if prof is not None:
            prof.mark("enqueue")

        # 2. Every hop drains at its trace capacity in upstream→downstream
        # order.  Before a hop drains, the transit chunks whose forward
        # propagation has elapsed enter its FIFO (possibly being dropped at a
        # full buffer — the loss notification then needs only the return trip
        # from this hop).  Chunks leaving a non-terminal hop go back into
        # transit towards their route's next hop after this hop's forward
        # delay share; chunks leaving their terminal hop turn into acks after
        # the remaining return-path delay, so end-to-end ack time is the
        # summed path RTT plus accumulated queuing — unchanged.
        flows = self.flows
        next_hop = self._next_hop
        transit = self._transit
        drop_delay = self._drop_notify_delay
        for link in self._ordered_links:
            link_name = link.name
            if prof is not None:
                t0 = perf_counter()
                arriving_chunks = transit.arrivals(link_name, now)
                prof.add("transit", perf_counter() - t0)
            else:
                arriving_chunks = transit.arrivals(link_name, now)
            for arriving in arriving_chunks:
                fid = arriving.flow_id
                _, dropped, random_lost = link.queue.enqueue(
                    fid, arriving.packets, now, carried_delay=arriving.queuing_delay)
                lost = dropped + random_lost
                if lost > 0:
                    flow = flows.get(fid)
                    if flow is not None:
                        flow.record_transit_drop(lost, now, drop_delay[(fid, link_name)])
                    else:
                        self.cross_stats[fid]["dropped"] += lost
                    if tel is not None:
                        tel.emit("transit_drop", hop=link_name, flow=fid, packets=lost)
            deliveries = link.queue.drain(now, dt)
            if not deliveries:
                continue
            half_delay = 0.5 * link.delay
            for chunk in deliveries:
                successor = next_hop[(chunk.flow_id, link_name)]
                if successor is None:
                    flow = flows.get(chunk.flow_id)
                    if flow is not None:
                        flow.record_delivery(chunk.packets, chunk.queuing_delay, now,
                                             self._route_rtt[chunk.flow_id],
                                             ack_delay=self._ack_delay[chunk.flow_id])
                    else:
                        self.cross_stats[chunk.flow_id]["delivered"] += chunk.packets
                else:
                    transit.send(successor.name, chunk.flow_id, chunk.packets,
                                 chunk.queuing_delay, now + half_delay)
        if prof is not None:
            prof.mark("drain")

        # 3. Each flow consumes due ack/loss events and updates its controller.
        end_of_tick = now + dt
        records: Dict[int, TickRecord] = {}
        for fid, flow in self.flows.items():
            flow.process_events(end_of_tick, dt)
            record = flow.finish_tick(end_of_tick, dt)
            self.stats[fid].append(record)
            records[fid] = record
            acc = self._monitor_acc[fid]
            acc["acked"] += record.acked
            acc["lost"] += record.lost
            acc["sent"] += record.sent
            if record.acked > 0:
                acc["delay_weighted"] += record.queuing_delay * record.acked
                acc["rtt_weighted"] += record.rtt * record.acked
                acc["ack_weight"] += record.acked

        self._capacity_log.append(self._bottleneck_trace.capacity_mbps(now))
        self._time_log.append(end_of_tick)
        self.now = end_of_tick
        if prof is not None:
            prof.mark("acks")
            prof.finish()
        if tel is not None:
            # Leave the trace clock at the tick boundary so emitters that run
            # between ticks (the QC monitor's decision filter) stamp correctly.
            tel.advance(end_of_tick)
            if snapshot_due:
                self._emit_conservation(tel, end_of_tick)
        return records

    def _emit_conservation(self, tel: EventTrace, t: float) -> None:
        """Emit one conservation snapshot: per-hop state plus lifetime sums."""
        hops = {link.name: link.queue.queue_occupancy for link in self._ordered_links}
        caps = {link.name: link.queue.capacity_pps(t) for link in self._ordered_links}
        sent = acked = lost = pending = 0.0
        for flow in self._flow_list:
            sent += flow.total_sent
            acked += flow.total_acked
            lost += flow.total_lost
            pending += flow.pending_event_packets
        tel.emit("conservation", t=t, hops=hops, caps=caps,
                 transit=self._transit.occupancy,
                 sent=sent, acked=acked, lost=lost, pending=pending)

    def run(self, duration: float) -> SimulationResult:
        """Run for ``duration`` seconds and return the collected statistics."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        steps = int(round(duration / self.dt))
        for _ in range(steps):
            self.tick()
        return self.result()

    def result(self) -> SimulationResult:
        return SimulationResult(
            duration=self.now,
            dt=self.dt,
            flow_stats=self.stats,
            capacity_mbps=np.array(self._capacity_log),
            times=np.array(self._time_log),
            lifetimes={fid: (flow.start_time, flow.stop_time)
                       for fid, flow in self.flows.items()},
        )

    # ------------------------------------------------------------------ #
    # Monitor-interval reporting (Orca's observation pipeline)
    # ------------------------------------------------------------------ #
    def monitor_report(self, flow_id: int) -> MonitorReport:
        """Aggregate and reset the accumulators for ``flow_id``.

        Called by the Orca environment once per monitor interval; the report
        fields correspond to the observed network states in Table 1 of the
        paper.  All statistics are end-to-end: queuing delays accumulate over
        every hop of the flow's route and RTTs include the summed path delay
        (the transit stage charges forward shares in simulation time, the ack
        charges the rest, so the sum is always the path RTT).

        Before the first ack arrives ``flow.min_rtt`` is still the +inf
        sentinel; it is clamped to the flow's path RTT — the physical lower
        bound no observed RTT can beat — instead of the old impossible 0.0,
        so the Orca observation's first interval never sees a zero min-RTT.
        """
        flow = self.flows[flow_id]
        acc = self._monitor_acc[flow_id]
        interval = max(self.now - self._last_report_time[flow_id], self.dt)
        acked = acc["acked"]
        lost = acc["lost"]
        weight = acc["ack_weight"]
        report = MonitorReport(
            throughput_pps=acked / interval,
            loss_rate=lost / (acked + lost) if (acked + lost) > 0 else 0.0,
            avg_queuing_delay=acc["delay_weighted"] / weight if weight > 0 else 0.0,
            n_acks=acked,
            interval=interval,
            srtt=flow.srtt,
            min_rtt=flow.min_rtt if flow.min_rtt < float("inf") else self._route_rtt[flow_id],
            avg_rtt=acc["rtt_weighted"] / weight if weight > 0 else flow.srtt,
            cwnd=flow.controller.cwnd,
            sent_pps=acc["sent"] / interval,
        )
        self._monitor_acc[flow_id] = self._fresh_acc()
        self._last_report_time[flow_id] = self.now
        return report
