"""Time-stepped network simulator coordinating the bottleneck link and flows.

This is the Mahimahi substitute: it advances simulation time in fixed ticks,
moves packets from every active flow into the shared bottleneck queue, drains
the queue at the trace-driven capacity, routes deliveries back to their flows
(as ack events one propagation RTT later), and records per-tick statistics.

Two consumption styles are supported:

* ``run(duration)`` — run the whole experiment and return a
  :class:`SimulationResult` (used by the evaluation harness).
* ``tick()`` / ``monitor_report(flow_id)`` — step manually; used by
  :class:`repro.orca.env.OrcaNetworkEnv`, whose RL agent interacts with the
  network once per monitor interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.cc.flow import Flow, TickRecord
from repro.cc.link import BottleneckLink

__all__ = ["NetworkSimulator", "FlowStats", "MonitorReport", "SimulationResult"]

DEFAULT_TICK = 0.01


@dataclass
class FlowStats:
    """Per-tick time series collected for one flow."""

    flow_id: int
    records: List[TickRecord] = field(default_factory=list)

    def append(self, record: TickRecord) -> None:
        self.records.append(record)

    # Convenience array views -------------------------------------------------
    def _column(self, name: str) -> np.ndarray:
        return np.array([getattr(r, name) for r in self.records], dtype=np.float64)

    @property
    def times(self) -> np.ndarray:
        return self._column("time")

    @property
    def acked(self) -> np.ndarray:
        return self._column("acked")

    @property
    def sent(self) -> np.ndarray:
        return self._column("sent")

    @property
    def lost(self) -> np.ndarray:
        return self._column("lost")

    @property
    def rtt(self) -> np.ndarray:
        return self._column("rtt")

    @property
    def queuing_delay(self) -> np.ndarray:
        return self._column("queuing_delay")

    @property
    def cwnd(self) -> np.ndarray:
        return self._column("cwnd")

    @property
    def inflight(self) -> np.ndarray:
        return self._column("inflight")


@dataclass(frozen=True)
class MonitorReport:
    """Aggregated statistics over one monitor interval (the paper's Table 1)."""

    throughput_pps: float      # thr — average delivery rate over the interval
    loss_rate: float           # l — lost / (lost + acked)
    avg_queuing_delay: float   # delay — packet-weighted average queuing delay (s)
    n_acks: float              # n — number of (fluid) acked packets
    interval: float            # m — time since the previous report (s)
    srtt: float                # smoothed RTT (s)
    min_rtt: float             # minimum RTT observed so far (s)
    avg_rtt: float             # packet-weighted average RTT over the interval (s)
    cwnd: float                # controller window at the end of the interval
    sent_pps: float            # sending rate over the interval


@dataclass
class SimulationResult:
    """Outcome of a full simulation run."""

    duration: float
    dt: float
    flow_stats: Dict[int, FlowStats]
    capacity_mbps: np.ndarray
    times: np.ndarray

    def stats_for(self, flow_id: int) -> FlowStats:
        return self.flow_stats[flow_id]


class NetworkSimulator:
    """Drives the link and a set of flows over a shared bottleneck."""

    def __init__(
        self,
        link: BottleneckLink,
        flows: Sequence[Flow],
        dt: float = DEFAULT_TICK,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not flows:
            raise ValueError("at least one flow is required")
        ids = [flow.flow_id for flow in flows]
        if len(set(ids)) != len(ids):
            raise ValueError("flow ids must be unique")
        self.link = link
        self.flows: Dict[int, Flow] = {flow.flow_id: flow for flow in flows}
        # Flow membership is fixed for the simulator's lifetime; cache the
        # iteration list so the per-tick hot path does not rebuild it.
        self._flow_list: List[Flow] = list(self.flows.values())
        self.dt = float(dt)
        self.now = 0.0
        self.stats: Dict[int, FlowStats] = {fid: FlowStats(fid) for fid in self.flows}
        self._capacity_log: List[float] = []
        self._time_log: List[float] = []
        # Monitor-interval accumulators keyed by flow id.
        self._monitor_acc: Dict[int, Dict[str, float]] = {fid: self._fresh_acc() for fid in self.flows}
        self._last_report_time: Dict[int, float] = {fid: 0.0 for fid in self.flows}
        self._tick_count = 0

    @staticmethod
    def _fresh_acc() -> Dict[str, float]:
        return {"acked": 0.0, "lost": 0.0, "sent": 0.0, "delay_weighted": 0.0,
                "rtt_weighted": 0.0, "ack_weight": 0.0}

    # ------------------------------------------------------------------ #
    # Core stepping
    # ------------------------------------------------------------------ #
    def tick(self) -> Dict[int, TickRecord]:
        """Advance the simulation by one tick and return per-flow records."""
        now = self.now
        dt = self.dt
        prop_rtt = self.link.min_rtt

        # 1. Senders put packets on the bottleneck queue.  The service order is
        # rotated every tick so no flow systematically wins the race for the
        # last buffer slot (real links interleave packets from different flows).
        flow_list = self._flow_list
        n_flows = len(flow_list)
        offset = self._tick_count % n_flows
        for position in range(n_flows):
            flow = flow_list[(offset + position) % n_flows]
            allowance = flow.send_allowance(now, dt, prop_rtt)
            if allowance > 0:
                accepted, dropped, random_lost = self.link.enqueue(flow.flow_id, allowance, now)
                flow.record_sent(accepted, dropped, random_lost, now, prop_rtt)
        self._tick_count += 1

        # 2. The bottleneck drains at trace capacity; deliveries turn into acks.
        for chunk in self.link.drain(now, dt):
            self.flows[chunk.flow_id].record_delivery(chunk.packets, chunk.queuing_delay, now, prop_rtt)

        # 3. Each flow consumes due ack/loss events and updates its controller.
        end_of_tick = now + dt
        records: Dict[int, TickRecord] = {}
        for fid, flow in self.flows.items():
            flow.process_events(end_of_tick, dt)
            record = flow.finish_tick(end_of_tick, dt)
            self.stats[fid].append(record)
            records[fid] = record
            acc = self._monitor_acc[fid]
            acc["acked"] += record.acked
            acc["lost"] += record.lost
            acc["sent"] += record.sent
            if record.acked > 0:
                acc["delay_weighted"] += record.queuing_delay * record.acked
                acc["rtt_weighted"] += record.rtt * record.acked
                acc["ack_weight"] += record.acked

        self._capacity_log.append(self.link.trace.capacity_mbps(now))
        self._time_log.append(end_of_tick)
        self.now = end_of_tick
        return records

    def run(self, duration: float) -> SimulationResult:
        """Run for ``duration`` seconds and return the collected statistics."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        steps = int(round(duration / self.dt))
        for _ in range(steps):
            self.tick()
        return self.result()

    def result(self) -> SimulationResult:
        return SimulationResult(
            duration=self.now,
            dt=self.dt,
            flow_stats=self.stats,
            capacity_mbps=np.array(self._capacity_log),
            times=np.array(self._time_log),
        )

    # ------------------------------------------------------------------ #
    # Monitor-interval reporting (Orca's observation pipeline)
    # ------------------------------------------------------------------ #
    def monitor_report(self, flow_id: int) -> MonitorReport:
        """Aggregate and reset the accumulators for ``flow_id``.

        Called by the Orca environment once per monitor interval; the report
        fields correspond to the observed network states in Table 1 of the
        paper.
        """
        flow = self.flows[flow_id]
        acc = self._monitor_acc[flow_id]
        interval = max(self.now - self._last_report_time[flow_id], self.dt)
        acked = acc["acked"]
        lost = acc["lost"]
        weight = acc["ack_weight"]
        report = MonitorReport(
            throughput_pps=acked / interval,
            loss_rate=lost / (acked + lost) if (acked + lost) > 0 else 0.0,
            avg_queuing_delay=acc["delay_weighted"] / weight if weight > 0 else 0.0,
            n_acks=acked,
            interval=interval,
            srtt=flow.srtt,
            min_rtt=flow.min_rtt if flow.min_rtt < float("inf") else 0.0,
            avg_rtt=acc["rtt_weighted"] / weight if weight > 0 else flow.srtt,
            cwnd=flow.controller.cwnd,
            sent_pps=acc["sent"] / interval,
        )
        self._monitor_acc[flow_id] = self._fresh_acc()
        self._last_report_time[flow_id] = self.now
        return report
