"""A sender/receiver pair whose sending is governed by a congestion controller.

The flow keeps the classic TCP invariant: the amount of unacknowledged data in
flight never exceeds the controller's congestion window.  Feedback is delayed
realistically under the per-hop delay-split convention (see
:mod:`repro.topology.graph`): on a multi-hop route the forward propagation of
every non-terminal hop is incurred *in simulation time* while the chunk sits
in the transit stage between hops, and the ack returns after the **remaining**
return-path delay, so the end-to-end ack still arrives one full path RTT
(plus accumulated queuing) after the packets were sent.  On a one-hop route
nothing is in transit and the entire path RTT is charged at ack time — the
legacy single-link behaviour, bit-for-bit.

Loss notifications follow the same physics: a drop at a *downstream* hop
notifies the sender after the forward delay already incurred plus the return
propagation from the drop hop (:meth:`Flow.record_transit_drop`), while a
drop at the sender's own entry queue — where nothing of the path has been
traversed — is detected a full (smoothed-RTT-estimated) round trip later via
dup-acks from the packets behind it (:meth:`Flow.record_sent`, the legacy
convention the one-hop differential pins keep bit-identical).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque

from repro.cc.base import CongestionController, TickFeedback

__all__ = ["Flow", "TickRecord"]


@dataclass
class _AckEvent:
    time: float
    packets: float
    rtt: float
    queuing_delay: float


@dataclass
class _LossEvent:
    time: float
    packets: float


@dataclass(frozen=True)
class TickRecord:
    """Everything the flow observed during one simulator tick."""

    time: float
    sent: float
    acked: float
    lost: float
    rtt: float
    queuing_delay: float
    cwnd: float
    inflight: float


class Flow:
    """One congestion-controlled flow traversing the bottleneck link."""

    def __init__(
        self,
        flow_id: int,
        controller: CongestionController,
        start_time: float = 0.0,
        stop_time: float | None = None,
    ) -> None:
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        if stop_time is not None and stop_time <= start_time:
            raise ValueError("stop_time must exceed start_time")
        self.flow_id = flow_id
        self.controller = controller
        self.start_time = float(start_time)
        self.stop_time = stop_time
        self.inflight = 0.0
        self.min_rtt = float("inf")
        self.srtt = 0.0
        self.delivery_rate = 0.0
        self._ack_events: Deque[_AckEvent] = deque()
        self._loss_events: Deque[_LossEvent] = deque()
        self._pacing_credit = 0.0
        # Per-tick accumulators, reset by finish_tick().
        self._tick_sent = 0.0
        self._tick_acked = 0.0
        self._tick_lost = 0.0
        self._tick_rtt = 0.0
        self._tick_delay = 0.0
        self._tick_ack_weight = 0.0
        # Lifetime counters.
        self.total_sent = 0.0
        self.total_acked = 0.0
        self.total_lost = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def is_active(self, now: float) -> bool:
        if now + 1e-12 < self.start_time:
            return False
        if self.stop_time is not None and now >= self.stop_time:
            return False
        return True

    def reset(self) -> None:
        self.controller.reset()
        self.inflight = 0.0
        self.min_rtt = float("inf")
        self.srtt = 0.0
        self.delivery_rate = 0.0
        self._ack_events.clear()
        self._loss_events.clear()
        self._pacing_credit = 0.0
        self.total_sent = 0.0
        self.total_acked = 0.0
        self.total_lost = 0.0
        self._reset_tick()

    def _reset_tick(self) -> None:
        self._tick_sent = 0.0
        self._tick_acked = 0.0
        self._tick_lost = 0.0
        self._tick_rtt = 0.0
        self._tick_delay = 0.0
        self._tick_ack_weight = 0.0

    # ------------------------------------------------------------------ #
    # Sending side
    # ------------------------------------------------------------------ #
    def send_allowance(self, now: float, dt: float, prop_rtt: float) -> float:
        """Packets the flow may emit this tick (window- and pacing-limited)."""
        if not self.is_active(now):
            return 0.0
        window_room = max(0.0, self.controller.cwnd - self.inflight)
        rate = self.controller.pacing_rate()
        if rate is None:
            # Window-limited senders still pace a window per RTT to avoid
            # emitting the whole window in a single tick.
            rtt_estimate = self.srtt if self.srtt > 0 else (self.min_rtt if self.min_rtt < float("inf") else prop_rtt)
            rate = self.controller.cwnd / max(rtt_estimate, 1e-3)
        self._pacing_credit = min(self._pacing_credit + rate * dt, max(rate * dt * 4, 1.0))
        allowance = min(window_room, self._pacing_credit)
        return max(0.0, allowance)

    def record_sent(self, accepted: float, tail_dropped: float, random_lost: float, now: float, prop_rtt: float) -> None:
        """Account for packets handed to the link this tick."""
        sent = accepted + tail_dropped + random_lost
        if sent <= 0:
            return
        self._pacing_credit = max(0.0, self._pacing_credit - sent)
        self.inflight += sent
        self._tick_sent += sent
        self.total_sent += sent
        lost = tail_dropped + random_lost
        if lost > 0:
            # Entry-queue drop: nothing of the path has been traversed, so the
            # sender only learns about it a full round trip later via dup-acks
            # from the packets behind it — estimated by srtt (the one-hop
            # differential pins keep this convention bit-identical).  Drops at
            # downstream hops go through record_transit_drop instead, which
            # charges the actual return delay from the drop hop.
            rtt_estimate = self.srtt if self.srtt > 0 else prop_rtt
            self._loss_events.append(_LossEvent(now + rtt_estimate, lost))

    def record_transit_drop(self, packets: float, now: float, notify_delay: float) -> None:
        """Packets of this flow were dropped at a downstream hop of its path.

        The packets were already counted as sent (and in flight) when they
        entered the first hop, and the forward propagation up to the drop hop
        has already elapsed in simulation time (the transit stage).  The loss
        notification therefore only has the *return* trip from the drop hop
        left to travel: ``notify_delay`` is the summed return-delay shares of
        the hops the packets actually traversed — not the legacy full-``srtt``
        guess, which over-delayed drops near the sender and under-located
        drops near the receiver.
        """
        if packets <= 0:
            return
        self._loss_events.append(_LossEvent(now + notify_delay, packets))

    def record_delivery(self, packets: float, queuing_delay: float, now: float,
                        prop_rtt: float, ack_delay: float | None = None) -> None:
        """A chunk of this flow left its terminal hop; schedule the ack.

        ``prop_rtt`` is the full path RTT (the propagation component of the
        RTT sample).  ``ack_delay`` is the *remaining* return-path delay under
        the delay-split convention — the path RTT minus the forward shares
        already incurred in transit — so the ack arrives exactly one path RTT
        (plus queuing) after the packets were sent regardless of hop count.
        One-hop callers (and the legacy single-link simulator) omit it: with
        no transit stage the whole path RTT is charged here, at ack time.
        """
        if packets <= 0:
            return
        rtt_sample = queuing_delay + prop_rtt
        if ack_delay is None:
            ack_delay = prop_rtt
        self._ack_events.append(_AckEvent(now + ack_delay, packets, rtt_sample, queuing_delay))

    # ------------------------------------------------------------------ #
    # Conservation accounting
    # ------------------------------------------------------------------ #
    @property
    def pending_ack_packets(self) -> float:
        """Packets delivered end-to-end whose ack is still on the return path."""
        return sum(event.packets for event in self._ack_events)

    @property
    def pending_loss_packets(self) -> float:
        """Packets dropped whose loss notification has not reached the sender."""
        return sum(event.packets for event in self._loss_events)

    @property
    def pending_event_packets(self) -> float:
        """Packets in either notification queue (ack or loss still in flight)."""
        return self.pending_ack_packets + self.pending_loss_packets

    # ------------------------------------------------------------------ #
    # Receiving side (processed each tick)
    # ------------------------------------------------------------------ #
    def process_events(self, now: float, dt: float) -> None:
        """Consume ack/loss events due by ``now`` and update RTT estimators."""
        while self._ack_events and self._ack_events[0].time <= now + 1e-12:
            event = self._ack_events.popleft()
            self.inflight = max(0.0, self.inflight - event.packets)
            self.total_acked += event.packets
            self._tick_acked += event.packets
            self._tick_rtt += event.rtt * event.packets
            self._tick_delay += event.queuing_delay * event.packets
            self._tick_ack_weight += event.packets
            self.min_rtt = min(self.min_rtt, event.rtt)
            if self.srtt == 0.0:
                self.srtt = event.rtt
            else:
                self.srtt = 0.875 * self.srtt + 0.125 * event.rtt
        while self._loss_events and self._loss_events[0].time <= now + 1e-12:
            event = self._loss_events.popleft()
            self.inflight = max(0.0, self.inflight - event.packets)
            self.total_lost += event.packets
            self._tick_lost += event.packets
        # Exponentially smoothed delivery (ack) rate in packets/second.
        instant_rate = self._tick_acked / dt if dt > 0 else 0.0
        alpha = 0.3
        self.delivery_rate = (1 - alpha) * self.delivery_rate + alpha * instant_rate

    def finish_tick(self, now: float, dt: float) -> TickRecord:
        """Build feedback, update the controller, and return the tick record."""
        if self._tick_ack_weight > 0:
            rtt = self._tick_rtt / self._tick_ack_weight
            delay = self._tick_delay / self._tick_ack_weight
        else:
            rtt = 0.0
            delay = 0.0
        feedback = TickFeedback(
            now=now,
            dt=dt,
            acked=self._tick_acked,
            lost=self._tick_lost,
            rtt=rtt,
            min_rtt=self.min_rtt if self.min_rtt < float("inf") else 0.0,
            queuing_delay=delay,
            inflight=self.inflight,
            delivery_rate=self.delivery_rate,
        )
        if self.is_active(now):
            self.controller.on_tick(feedback)
        record = TickRecord(
            time=now,
            sent=self._tick_sent,
            acked=self._tick_acked,
            lost=self._tick_lost,
            rtt=rtt,
            queuing_delay=delay,
            cwnd=self.controller.cwnd,
            inflight=self.inflight,
        )
        self._reset_tick()
        return record
