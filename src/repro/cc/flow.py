"""A sender/receiver pair whose sending is governed by a congestion controller.

The flow keeps the classic TCP invariant: the amount of unacknowledged data in
flight never exceeds the controller's congestion window.  Acknowledgements and
loss notifications come back one propagation RTT after the corresponding
packets left (or were dropped at) the bottleneck queue, so the controller sees
realistic feedback delay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque

from repro.cc.base import CongestionController, TickFeedback

__all__ = ["Flow", "TickRecord"]


@dataclass
class _AckEvent:
    time: float
    packets: float
    rtt: float
    queuing_delay: float


@dataclass
class _LossEvent:
    time: float
    packets: float


@dataclass(frozen=True)
class TickRecord:
    """Everything the flow observed during one simulator tick."""

    time: float
    sent: float
    acked: float
    lost: float
    rtt: float
    queuing_delay: float
    cwnd: float
    inflight: float


class Flow:
    """One congestion-controlled flow traversing the bottleneck link."""

    def __init__(
        self,
        flow_id: int,
        controller: CongestionController,
        start_time: float = 0.0,
        stop_time: float | None = None,
    ) -> None:
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        if stop_time is not None and stop_time <= start_time:
            raise ValueError("stop_time must exceed start_time")
        self.flow_id = flow_id
        self.controller = controller
        self.start_time = float(start_time)
        self.stop_time = stop_time
        self.inflight = 0.0
        self.min_rtt = float("inf")
        self.srtt = 0.0
        self.delivery_rate = 0.0
        self._ack_events: Deque[_AckEvent] = deque()
        self._loss_events: Deque[_LossEvent] = deque()
        self._pacing_credit = 0.0
        # Per-tick accumulators, reset by finish_tick().
        self._tick_sent = 0.0
        self._tick_acked = 0.0
        self._tick_lost = 0.0
        self._tick_rtt = 0.0
        self._tick_delay = 0.0
        self._tick_ack_weight = 0.0
        # Lifetime counters.
        self.total_sent = 0.0
        self.total_acked = 0.0
        self.total_lost = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def is_active(self, now: float) -> bool:
        if now + 1e-12 < self.start_time:
            return False
        if self.stop_time is not None and now >= self.stop_time:
            return False
        return True

    def reset(self) -> None:
        self.controller.reset()
        self.inflight = 0.0
        self.min_rtt = float("inf")
        self.srtt = 0.0
        self.delivery_rate = 0.0
        self._ack_events.clear()
        self._loss_events.clear()
        self._pacing_credit = 0.0
        self.total_sent = 0.0
        self.total_acked = 0.0
        self.total_lost = 0.0
        self._reset_tick()

    def _reset_tick(self) -> None:
        self._tick_sent = 0.0
        self._tick_acked = 0.0
        self._tick_lost = 0.0
        self._tick_rtt = 0.0
        self._tick_delay = 0.0
        self._tick_ack_weight = 0.0

    # ------------------------------------------------------------------ #
    # Sending side
    # ------------------------------------------------------------------ #
    def send_allowance(self, now: float, dt: float, prop_rtt: float) -> float:
        """Packets the flow may emit this tick (window- and pacing-limited)."""
        if not self.is_active(now):
            return 0.0
        window_room = max(0.0, self.controller.cwnd - self.inflight)
        rate = self.controller.pacing_rate()
        if rate is None:
            # Window-limited senders still pace a window per RTT to avoid
            # emitting the whole window in a single tick.
            rtt_estimate = self.srtt if self.srtt > 0 else (self.min_rtt if self.min_rtt < float("inf") else prop_rtt)
            rate = self.controller.cwnd / max(rtt_estimate, 1e-3)
        self._pacing_credit = min(self._pacing_credit + rate * dt, max(rate * dt * 4, 1.0))
        allowance = min(window_room, self._pacing_credit)
        return max(0.0, allowance)

    def record_sent(self, accepted: float, tail_dropped: float, random_lost: float, now: float, prop_rtt: float) -> None:
        """Account for packets handed to the link this tick."""
        sent = accepted + tail_dropped + random_lost
        if sent <= 0:
            return
        self._pacing_credit = max(0.0, self._pacing_credit - sent)
        self.inflight += sent
        self._tick_sent += sent
        self.total_sent += sent
        lost = tail_dropped + random_lost
        if lost > 0:
            # The sender learns about the drop roughly one RTT later (dup-ack /
            # explicit notification); until then the packets count as in flight.
            rtt_estimate = self.srtt if self.srtt > 0 else prop_rtt
            self._loss_events.append(_LossEvent(now + rtt_estimate, lost))

    def record_transit_drop(self, packets: float, now: float, prop_rtt: float) -> None:
        """Packets of this flow were dropped at a downstream hop of its path.

        The packets were already counted as sent (and in flight) when they
        entered the first hop; like a send-time drop, the sender only learns
        about the loss roughly one RTT later.
        """
        if packets <= 0:
            return
        rtt_estimate = self.srtt if self.srtt > 0 else prop_rtt
        self._loss_events.append(_LossEvent(now + rtt_estimate, packets))

    def record_delivery(self, packets: float, queuing_delay: float, now: float, prop_rtt: float) -> None:
        """A chunk of this flow left the bottleneck; the ack arrives one RTT later."""
        if packets <= 0:
            return
        rtt_sample = queuing_delay + prop_rtt
        self._ack_events.append(_AckEvent(now + prop_rtt, packets, rtt_sample, queuing_delay))

    # ------------------------------------------------------------------ #
    # Receiving side (processed each tick)
    # ------------------------------------------------------------------ #
    def process_events(self, now: float, dt: float) -> None:
        """Consume ack/loss events due by ``now`` and update RTT estimators."""
        while self._ack_events and self._ack_events[0].time <= now + 1e-12:
            event = self._ack_events.popleft()
            self.inflight = max(0.0, self.inflight - event.packets)
            self.total_acked += event.packets
            self._tick_acked += event.packets
            self._tick_rtt += event.rtt * event.packets
            self._tick_delay += event.queuing_delay * event.packets
            self._tick_ack_weight += event.packets
            self.min_rtt = min(self.min_rtt, event.rtt)
            if self.srtt == 0.0:
                self.srtt = event.rtt
            else:
                self.srtt = 0.875 * self.srtt + 0.125 * event.rtt
        while self._loss_events and self._loss_events[0].time <= now + 1e-12:
            event = self._loss_events.popleft()
            self.inflight = max(0.0, self.inflight - event.packets)
            self.total_lost += event.packets
            self._tick_lost += event.packets
        # Exponentially smoothed delivery (ack) rate in packets/second.
        instant_rate = self._tick_acked / dt if dt > 0 else 0.0
        alpha = 0.3
        self.delivery_rate = (1 - alpha) * self.delivery_rate + alpha * instant_rate

    def finish_tick(self, now: float, dt: float) -> TickRecord:
        """Build feedback, update the controller, and return the tick record."""
        if self._tick_ack_weight > 0:
            rtt = self._tick_rtt / self._tick_ack_weight
            delay = self._tick_delay / self._tick_ack_weight
        else:
            rtt = 0.0
            delay = 0.0
        feedback = TickFeedback(
            now=now,
            dt=dt,
            acked=self._tick_acked,
            lost=self._tick_lost,
            rtt=rtt,
            min_rtt=self.min_rtt if self.min_rtt < float("inf") else 0.0,
            queuing_delay=delay,
            inflight=self.inflight,
            delivery_rate=self.delivery_rate,
        )
        if self.is_active(now):
            self.controller.on_tick(feedback)
        record = TickRecord(
            time=now,
            sent=self._tick_sent,
            acked=self._tick_acked,
            lost=self._tick_lost,
            rtt=rtt,
            queuing_delay=delay,
            cwnd=self.controller.cwnd,
            inflight=self.inflight,
        )
        self._reset_tick()
        return record
