"""BBR congestion control (simplified model-based rate controller).

BBR estimates the bottleneck bandwidth (windowed max of the delivery rate) and
the propagation RTT (windowed min of the RTT), then paces at
``pacing_gain * btl_bw`` and caps the window at ``cwnd_gain * BDP``.  The
implementation covers the STARTUP and PROBE_BW phases plus a periodic
PROBE_RTT, which is what the paper's evaluation exercises (long bulk flows).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.cc.base import MIN_CWND, CongestionController, TickFeedback

__all__ = ["BBRController"]

_PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


class BBRController(CongestionController):
    """Bottleneck Bandwidth and RTT congestion control."""

    name = "bbr"

    STARTUP_GAIN = 2.885
    CWND_GAIN = 2.0
    BW_WINDOW_RTTS = 10
    PROBE_RTT_INTERVAL = 10.0
    PROBE_RTT_DURATION = 0.2

    def __init__(self, initial_cwnd: float = 10.0) -> None:
        super().__init__(initial_cwnd)
        self._initial_cwnd = max(MIN_CWND, initial_cwnd)
        self._mode = "startup"
        self._bw_samples: Deque[Tuple[float, float]] = deque()  # (time, pps)
        self._btl_bw = 0.0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._cycle_index = 0
        self._cycle_start = 0.0
        self._min_rtt = float("inf")
        self._min_rtt_stamp = 0.0
        self._probe_rtt_done_time = 0.0
        self._pacing_gain = self.STARTUP_GAIN

    def reset(self) -> None:
        super().reset()
        self._cwnd = self._initial_cwnd
        self._mode = "startup"
        self._bw_samples.clear()
        self._btl_bw = 0.0
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._cycle_index = 0
        self._cycle_start = 0.0
        self._min_rtt = float("inf")
        self._min_rtt_stamp = 0.0
        self._probe_rtt_done_time = 0.0
        self._pacing_gain = self.STARTUP_GAIN

    # ------------------------------------------------------------------ #
    def _update_model(self, feedback: TickFeedback) -> None:
        now = feedback.now
        rtt = feedback.rtt
        if rtt > 0 and (rtt <= self._min_rtt or now - self._min_rtt_stamp > self.PROBE_RTT_INTERVAL):
            self._min_rtt = rtt
            self._min_rtt_stamp = now
        if feedback.delivery_rate > 0:
            self._bw_samples.append((now, feedback.delivery_rate))
        rtt_est = self._min_rtt if self._min_rtt < float("inf") else max(rtt, 0.01)
        window = self.BW_WINDOW_RTTS * max(rtt_est, 0.01)
        while self._bw_samples and self._bw_samples[0][0] < now - window:
            self._bw_samples.popleft()
        self._btl_bw = max((sample for _, sample in self._bw_samples), default=self._btl_bw)

    def _check_full_pipe(self) -> None:
        if self._mode != "startup":
            return
        if self._btl_bw >= self._full_bw * 1.25:
            self._full_bw = self._btl_bw
            self._full_bw_count = 0
        else:
            self._full_bw_count += 1
            if self._full_bw_count >= 3:
                self._mode = "probe_bw"
                self._pacing_gain = _PROBE_BW_GAINS[0]
                self._cycle_index = 0

    def _advance_cycle(self, now: float, rtt: float) -> None:
        if self._mode != "probe_bw":
            return
        if now - self._cycle_start >= max(rtt, 0.01):
            self._cycle_index = (self._cycle_index + 1) % len(_PROBE_BW_GAINS)
            self._pacing_gain = _PROBE_BW_GAINS[self._cycle_index]
            self._cycle_start = now

    def _maybe_probe_rtt(self, now: float) -> None:
        if self._mode == "probe_rtt":
            if now >= self._probe_rtt_done_time:
                self._mode = "probe_bw"
                self._pacing_gain = 1.0
            return
        if self._min_rtt < float("inf") and now - self._min_rtt_stamp > self.PROBE_RTT_INTERVAL:
            self._mode = "probe_rtt"
            self._probe_rtt_done_time = now + self.PROBE_RTT_DURATION
            self._min_rtt_stamp = now

    def on_tick(self, feedback: TickFeedback) -> None:
        self._update_model(feedback)
        self._check_full_pipe()
        rtt_est = self._min_rtt if self._min_rtt < float("inf") else max(feedback.rtt, 0.01)
        self._advance_cycle(feedback.now, rtt_est)
        self._maybe_probe_rtt(feedback.now)

        bdp = self._btl_bw * rtt_est
        if self._mode == "startup":
            gain = self.STARTUP_GAIN
            self._pacing_gain = self.STARTUP_GAIN
            if feedback.acked > 0:
                self._cwnd += feedback.acked  # exponential growth while probing
            if bdp > 0:
                self._cwnd = max(self._cwnd, gain * bdp)
        elif self._mode == "probe_rtt":
            self._cwnd = max(MIN_CWND, min(self._cwnd, 4.0))
        else:  # probe_bw
            if bdp > 0:
                self._cwnd = max(MIN_CWND, self.CWND_GAIN * bdp)
        self._cwnd = max(MIN_CWND, self._cwnd)

    def pacing_rate(self, feedback: TickFeedback | None = None) -> float | None:
        if self._btl_bw <= 0:
            return None
        return self._pacing_gain * self._btl_bw
