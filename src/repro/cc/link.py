"""Bottleneck link with a finite FIFO queue driven by a bandwidth trace.

The link is a fluid model: packet amounts are real numbers, the queue is a
FIFO of (flow, amount, enqueue-time) chunks, and every tick the link drains up
to ``capacity(t) * dt`` packets.  Packets that arrive when the buffer is full
are dropped (tail drop); an optional random loss rate models non-congestion
losses on wide-area paths — deterministically (an exact ``rate`` fraction of
every arrival, the historical fluid behaviour) or, with
``stochastic_loss=True``, by binomial thinning at whole-packet granularity
drawn from the link's seeded RNG, so repeated runs vary per seed but remain
bit-reproducible for a given seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

import numpy as np

from repro.traces.trace import BandwidthTrace

__all__ = ["BottleneckLink", "DeliveredChunk"]


@dataclass(frozen=True)
class DeliveredChunk:
    """A chunk of packets that left the bottleneck queue this tick."""

    flow_id: int
    packets: float
    queuing_delay: float


@dataclass
class _QueuedChunk:
    flow_id: int
    packets: float
    enqueue_time: float
    carried_delay: float = 0.0


class BottleneckLink:
    """A single shared bottleneck: trace-driven capacity, finite FIFO buffer."""

    def __init__(
        self,
        trace: BandwidthTrace,
        min_rtt: float,
        buffer_bdp: float = 1.0,
        buffer_packets: float | None = None,
        random_loss_rate: float = 0.0,
        stochastic_loss: bool = False,
        seed: int | None = None,
    ) -> None:
        if min_rtt <= 0:
            raise ValueError("min_rtt must be positive")
        if buffer_bdp <= 0 and buffer_packets is None:
            raise ValueError("buffer must be positive")
        if not 0.0 <= random_loss_rate < 1.0:
            raise ValueError("random_loss_rate must be in [0, 1)")
        self.trace = trace
        self.min_rtt = float(min_rtt)
        self.buffer_bdp = float(buffer_bdp)
        if buffer_packets is not None:
            self.buffer_packets = float(buffer_packets)
        else:
            self.buffer_packets = max(2.0, buffer_bdp * trace.bdp_packets(min_rtt))
        self.random_loss_rate = float(random_loss_rate)
        self.stochastic_loss = bool(stochastic_loss)
        #: The seed the loss RNG was created from (None = OS entropy); kept so
        #: scenario samplers can report per-hop seeds without re-deriving them.
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._queue: Deque[_QueuedChunk] = deque()
        self._occupancy = 0.0
        self._drain_credit = 0.0
        self.total_enqueued = 0.0
        self.total_dropped = 0.0
        self.total_delivered = 0.0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def queue_occupancy(self) -> float:
        """Packets currently sitting in the bottleneck buffer."""
        return self._occupancy

    def capacity_pps(self, now: float) -> float:
        """Instantaneous drain capacity in packets/second."""
        return self.trace.capacity_pps(now)

    def expected_queuing_delay(self, now: float) -> float:
        """Occupancy divided by current capacity (seconds); 0 when capacity is 0."""
        capacity = self.capacity_pps(now)
        if capacity <= 0:
            return 0.0 if self._occupancy == 0 else float("inf")
        return self._occupancy / capacity

    def reset(self) -> None:
        self._queue.clear()
        self._occupancy = 0.0
        self._drain_credit = 0.0
        self.total_enqueued = 0.0
        self.total_dropped = 0.0
        self.total_delivered = 0.0

    # ------------------------------------------------------------------ #
    # Dynamics
    # ------------------------------------------------------------------ #
    def _sample_random_loss(self, packets: float) -> float:
        """Amount of an arriving fluid chunk removed by the random-loss process.

        Deterministic mode (the default) thins every arrival by exactly
        ``random_loss_rate``.  Stochastic mode draws binomial losses over the
        chunk's whole packets (plus a Bernoulli trial for the fractional
        remainder) from the link's seeded RNG — same expectation, per-seed
        variability.
        """
        if not self.stochastic_loss:
            return packets * self.random_loss_rate
        whole = int(packets)
        lost = float(self._rng.binomial(whole, self.random_loss_rate)) if whole > 0 else 0.0
        fraction = packets - whole
        if fraction > 0 and self._rng.random() < self.random_loss_rate:
            lost += fraction
        return lost

    def enqueue(
        self, flow_id: int, packets: float, now: float, carried_delay: float = 0.0
    ) -> Tuple[float, float, float]:
        """Offer ``packets`` from ``flow_id`` to the queue.

        ``carried_delay`` is the queuing delay the packets already accumulated
        on upstream hops of a multi-hop path; it is added to this queue's own
        waiting time when the packets are eventually drained.  Single-link
        callers leave it at 0.0, which reproduces the legacy behaviour
        exactly.

        Returns ``(accepted, tail_dropped, random_lost)``: the amount admitted
        to the buffer, the amount dropped because the buffer was full, and the
        amount removed by the random-loss process before reaching the queue.
        """
        if packets < 0:
            raise ValueError("packets must be non-negative")
        if packets == 0:
            return 0.0, 0.0, 0.0
        random_lost = 0.0
        if self.random_loss_rate > 0:
            random_lost = self._sample_random_loss(packets)
            packets -= random_lost
        free = max(0.0, self.buffer_packets - self._occupancy)
        accepted = min(packets, free)
        dropped = packets - accepted
        if accepted > 0:
            self._queue.append(_QueuedChunk(flow_id, accepted, now, carried_delay))
            self._occupancy += accepted
        self.total_enqueued += accepted
        self.total_dropped += dropped + random_lost
        return accepted, dropped, random_lost

    def drain(self, now: float, dt: float) -> List[DeliveredChunk]:
        """Dequeue up to ``capacity * dt`` packets (FIFO) and return them."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        budget = self.capacity_pps(now) * dt + self._drain_credit
        delivered: List[DeliveredChunk] = []
        while budget > 1e-12 and self._queue:
            chunk = self._queue[0]
            take = min(chunk.packets, budget)
            queuing_delay = chunk.carried_delay + max(0.0, now - chunk.enqueue_time)
            delivered.append(DeliveredChunk(chunk.flow_id, take, queuing_delay))
            chunk.packets -= take
            self._occupancy = max(0.0, self._occupancy - take)
            budget -= take
            self.total_delivered += take
            if chunk.packets <= 1e-12:
                self._queue.popleft()
        # Unused capacity does not carry over when the queue is empty (a link
        # cannot save transmission opportunities for later).
        self._drain_credit = budget if self._queue else 0.0
        return delivered

    def per_flow_occupancy(self) -> Dict[int, float]:
        """Packets in the queue broken down by flow (for fairness diagnostics)."""
        occupancy: Dict[int, float] = {}
        for chunk in self._queue:
            occupancy[chunk.flow_id] = occupancy.get(chunk.flow_id, 0.0) + chunk.packets
        return occupancy
