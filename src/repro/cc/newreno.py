"""TCP NewReno congestion control (AIMD with slow start)."""

from __future__ import annotations

from repro.cc.base import MIN_CWND, CongestionController, TickFeedback

__all__ = ["NewRenoController"]


class NewRenoController(CongestionController):
    """Classic slow-start / congestion-avoidance / multiplicative-decrease TCP.

    The simulator delivers fluid ack and loss amounts per tick, so per-ack
    rules are applied proportionally: slow start grows the window by the
    number of packets acked, congestion avoidance by ``acked / cwnd``.
    A loss event halves the window at most once per RTT.
    """

    name = "newreno"

    def __init__(self, initial_cwnd: float = 10.0, ssthresh: float = 1e9) -> None:
        super().__init__(initial_cwnd)
        self._initial_cwnd = max(MIN_CWND, initial_cwnd)
        self._initial_ssthresh = ssthresh
        self.ssthresh = ssthresh
        self._last_reduction_time = -1e9

    def reset(self) -> None:
        super().reset()
        self._cwnd = self._initial_cwnd
        self.ssthresh = self._initial_ssthresh
        self._last_reduction_time = -1e9

    def on_tick(self, feedback: TickFeedback) -> None:
        rtt = feedback.rtt if feedback.rtt > 0 else max(feedback.min_rtt, 0.01)
        if feedback.lost > 0 and feedback.now - self._last_reduction_time > rtt:
            self.ssthresh = max(self._cwnd / 2.0, MIN_CWND)
            self._cwnd = self.ssthresh
            self._last_reduction_time = feedback.now
            return
        if feedback.acked <= 0:
            return
        if self._cwnd < self.ssthresh:
            # Slow start: one packet of growth per acked packet.
            self._cwnd = min(self.ssthresh, self._cwnd + feedback.acked)
        else:
            # Congestion avoidance: one packet per window per RTT.
            self._cwnd += feedback.acked / max(self._cwnd, 1.0)
        self._cwnd = max(MIN_CWND, self._cwnd)
