"""TCP CUBIC congestion control (Ha, Rhee, Xu 2008).

CUBIC is the fine-grained backbone of both Orca and Canopy (Eq. 1 of the paper
multiplies CUBIC's suggested window by the learned factor).  This
implementation follows the published algorithm:

* cubic window growth ``W(t) = C (t - K)^3 + W_max`` since the last loss epoch,
* multiplicative decrease by ``β = 0.7`` on loss, with fast convergence,
* TCP-friendly region (the AIMD estimate ``W_est``),
* standard slow start below ``ssthresh``.

Per-ack updates are applied proportionally to the fluid ack amounts delivered
by the simulator each tick.
"""

from __future__ import annotations

from repro.cc.base import MIN_CWND, CongestionController, TickFeedback

__all__ = ["CubicController"]


class CubicController(CongestionController):
    """TCP CUBIC with fast convergence and the TCP-friendly region."""

    name = "cubic"

    #: Cubic scaling constant (packets / s^3), the standard value.
    C = 0.4
    #: Multiplicative decrease factor (window retained after loss).
    BETA = 0.7

    def __init__(self, initial_cwnd: float = 10.0, ssthresh: float = 1e9, fast_convergence: bool = True) -> None:
        super().__init__(initial_cwnd)
        self._initial_cwnd = max(MIN_CWND, initial_cwnd)
        self._initial_ssthresh = ssthresh
        self.ssthresh = ssthresh
        self.fast_convergence = fast_convergence
        self._w_max = 0.0
        self._w_last_max = 0.0
        self._k = 0.0
        self._epoch_start: float | None = None
        self._w_est = 0.0
        self._acks_in_epoch = 0.0
        self._last_reduction_time = -1e9

    def reset(self) -> None:
        super().reset()
        self._cwnd = self._initial_cwnd
        self.ssthresh = self._initial_ssthresh
        self._w_max = 0.0
        self._w_last_max = 0.0
        self._k = 0.0
        self._epoch_start = None
        self._w_est = 0.0
        self._acks_in_epoch = 0.0
        self._last_reduction_time = -1e9

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _on_loss(self, now: float) -> None:
        self._epoch_start = None
        if self.fast_convergence and self._cwnd < self._w_last_max:
            # Release bandwidth faster when the loss happened below the previous peak.
            self._w_last_max = self._cwnd * (1.0 + self.BETA) / 2.0
        else:
            self._w_last_max = self._cwnd
        self._w_max = self._cwnd
        self._cwnd = max(MIN_CWND, self._cwnd * self.BETA)
        self.ssthresh = max(self._cwnd, MIN_CWND)
        self._last_reduction_time = now

    def _cubic_update(self, now: float, rtt: float, acked: float) -> None:
        if self._epoch_start is None:
            self._epoch_start = now
            if self._cwnd < self._w_max:
                self._k = ((self._w_max - self._cwnd) / self.C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self._w_max = self._cwnd
            self._w_est = self._cwnd
            self._acks_in_epoch = 0.0
        self._acks_in_epoch += acked

        t = now - self._epoch_start
        target = self.C * (t + rtt - self._k) ** 3 + self._w_max

        if target > self._cwnd:
            # Grow toward the cubic target over roughly one RTT's worth of acks.
            increment = (target - self._cwnd) / max(self._cwnd, 1.0) * acked
            self._cwnd += increment
        else:
            # Very slow growth in the concave plateau (the "TCP-friendly" floor
            # below still applies).
            self._cwnd += 0.01 * acked / max(self._cwnd, 1.0)

        # TCP-friendly region: emulate AIMD with the same loss rate.
        aimd_alpha = 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)
        self._w_est += aimd_alpha * acked / max(self._cwnd, 1.0)
        if self._w_est > self._cwnd:
            self._cwnd = self._w_est

    def on_tick(self, feedback: TickFeedback) -> None:
        rtt = feedback.rtt if feedback.rtt > 0 else max(feedback.min_rtt, 0.01)
        if feedback.lost > 0 and feedback.now - self._last_reduction_time > rtt:
            self._on_loss(feedback.now)
            return
        if feedback.acked <= 0:
            return
        if self._cwnd < self.ssthresh:
            self._cwnd = min(self.ssthresh, self._cwnd + feedback.acked)
        else:
            self._cubic_update(feedback.now, rtt, feedback.acked)
        self._cwnd = max(MIN_CWND, self._cwnd)

    def set_cwnd(self, value: float) -> None:
        """Window override from the coarse-grained (Orca/Canopy) agent.

        CUBIC's epoch state is re-anchored so that subsequent cubic growth
        resumes from the overridden window instead of snapping back.
        """
        super().set_cwnd(value)
        self._epoch_start = None
        self._w_max = max(self._w_max, self._cwnd)
