"""Congestion-control substrate: link/queue simulator and classic controllers.

The Canopy paper evaluates controllers over Mahimahi-emulated links.  This
package substitutes a time-stepped fluid-flow simulator:

* :class:`~repro.cc.link.BottleneckLink` — a FIFO bottleneck queue fed by a
  bandwidth trace, with a finite buffer (expressed in BDP multiples) and a
  fixed propagation delay.  It doubles as the per-hop queue engine of the
  multi-bottleneck topologies in :mod:`repro.topology`.
* :class:`~repro.cc.flow.Flow` — a sender whose in-flight data is limited by
  the congestion window chosen by its controller; acks and loss notifications
  return one path-RTT later.
* :class:`~repro.cc.netsim.NetworkSimulator` — steps a topology of hops (or a
  single wrapped link) and the flows in lockstep, aggregates
  per-monitor-interval statistics, and exposes the whole run as
  :class:`~repro.cc.netsim.FlowStats`.
* Classic controllers: :class:`~repro.cc.cubic.CubicController`,
  :class:`~repro.cc.newreno.NewRenoController`,
  :class:`~repro.cc.vegas.VegasController`, :class:`~repro.cc.bbr.BBRController`.
"""

from repro.cc.base import CongestionController, TickFeedback
from repro.cc.link import BottleneckLink
from repro.cc.flow import Flow
from repro.cc.netsim import FlowStats, MonitorReport, NetworkSimulator, SimulationResult
from repro.cc.cubic import CubicController
from repro.cc.newreno import NewRenoController
from repro.cc.vegas import VegasController
from repro.cc.bbr import BBRController
from repro.cc import metrics

__all__ = [
    "CongestionController",
    "TickFeedback",
    "BottleneckLink",
    "Flow",
    "NetworkSimulator",
    "FlowStats",
    "MonitorReport",
    "SimulationResult",
    "CubicController",
    "NewRenoController",
    "VegasController",
    "BBRController",
    "metrics",
]
