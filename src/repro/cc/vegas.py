"""TCP Vegas congestion control (delay-based AIAD)."""

from __future__ import annotations

from repro.cc.base import MIN_CWND, CongestionController, TickFeedback

__all__ = ["VegasController"]


class VegasController(CongestionController):
    """Delay-based controller targeting a small number of queued packets.

    Vegas compares the expected throughput ``cwnd / baseRTT`` with the actual
    throughput ``cwnd / RTT``; the difference times ``baseRTT`` estimates how
    many of the flow's packets sit in the bottleneck queue.  The window grows
    by one packet per RTT when fewer than ``alpha`` packets are queued and
    shrinks by one per RTT when more than ``beta`` are queued.
    """

    name = "vegas"

    def __init__(self, initial_cwnd: float = 10.0, alpha: float = 2.0, beta: float = 4.0, ssthresh: float = 1e9) -> None:
        if alpha <= 0 or beta <= alpha:
            raise ValueError("need 0 < alpha < beta")
        super().__init__(initial_cwnd)
        self._initial_cwnd = max(MIN_CWND, initial_cwnd)
        self.alpha = alpha
        self.beta = beta
        self.ssthresh = ssthresh
        self._initial_ssthresh = ssthresh
        self._base_rtt = float("inf")
        self._last_reduction_time = -1e9

    def reset(self) -> None:
        super().reset()
        self._cwnd = self._initial_cwnd
        self.ssthresh = self._initial_ssthresh
        self._base_rtt = float("inf")
        self._last_reduction_time = -1e9

    def on_tick(self, feedback: TickFeedback) -> None:
        rtt = feedback.rtt
        if rtt > 0:
            self._base_rtt = min(self._base_rtt, rtt)
        base_rtt = self._base_rtt if self._base_rtt < float("inf") else max(feedback.min_rtt, 0.01)

        if feedback.lost > 0 and feedback.now - self._last_reduction_time > max(rtt, base_rtt):
            self.ssthresh = max(self._cwnd / 2.0, MIN_CWND)
            self._cwnd = max(self._cwnd * 0.75, MIN_CWND)
            self._last_reduction_time = feedback.now
            return
        if feedback.acked <= 0 or rtt <= 0:
            return

        expected = self._cwnd / base_rtt
        actual = self._cwnd / rtt
        queued = (expected - actual) * base_rtt
        if self._cwnd < self.ssthresh:
            # Vegas exits slow start as soon as the queue estimate shows
            # congestion building (rather than waiting for a loss).
            if queued > self.alpha:
                self.ssthresh = self._cwnd
            else:
                self._cwnd = min(self.ssthresh, self._cwnd + feedback.acked / 2.0)
        else:
            per_rtt_fraction = feedback.acked / max(self._cwnd, 1.0)
            if queued < self.alpha:
                self._cwnd += per_rtt_fraction
            elif queued > self.beta:
                self._cwnd -= per_rtt_fraction
        self._cwnd = max(MIN_CWND, self._cwnd)
