"""Performance metrics over simulation results.

The paper's evaluation reports three empirical metrics per scheme and trace
(Section 6.3): average bandwidth utilization, average queuing delay, and the
95th-percentile queuing delay, plus Jain's fairness index and throughput
ratios for the multi-flow experiments (Sections 6.6–6.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.cc.netsim import FlowStats, SimulationResult
from repro.traces.trace import pps_to_mbps

__all__ = [
    "PerformanceSummary",
    "summarize_flow",
    "summarize_result",
    "jain_fairness_index",
    "throughput_ratio",
    "utilization",
    "delay_percentile",
]


@dataclass(frozen=True)
class PerformanceSummary:
    """Per-flow empirical performance over one run."""

    throughput_mbps: float
    utilization: float
    avg_queuing_delay_ms: float
    p95_queuing_delay_ms: float
    avg_rtt_ms: float
    loss_rate: float
    total_acked: float
    total_lost: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "throughput_mbps": self.throughput_mbps,
            "utilization": self.utilization,
            "avg_queuing_delay_ms": self.avg_queuing_delay_ms,
            "p95_queuing_delay_ms": self.p95_queuing_delay_ms,
            "avg_rtt_ms": self.avg_rtt_ms,
            "loss_rate": self.loss_rate,
            "total_acked": self.total_acked,
            "total_lost": self.total_lost,
        }


def _weighted_percentile(values: np.ndarray, weights: np.ndarray, percentile: float) -> float:
    """Weighted percentile; weights are packet counts per sample."""
    if values.size == 0 or weights.sum() <= 0:
        return 0.0
    order = np.argsort(values)
    values = values[order]
    weights = weights[order]
    cum = np.cumsum(weights)
    cutoff = percentile / 100.0 * cum[-1]
    index = int(np.searchsorted(cum, cutoff))
    index = min(index, values.size - 1)
    return float(values[index])


def delay_percentile(stats: FlowStats, percentile: float) -> float:
    """Packet-weighted queuing-delay percentile in milliseconds."""
    mask = stats.acked > 0
    return _weighted_percentile(stats.queuing_delay[mask], stats.acked[mask], percentile) * 1000.0


def utilization(stats: FlowStats, capacity_mbps: np.ndarray, dt: float, skip_seconds: float = 1.0) -> float:
    """Delivered throughput divided by available capacity.

    The first ``skip_seconds`` are excluded so slow-start ramp-up does not
    dominate short runs (the paper's runs are long enough that this does not
    matter; ours are shorter).
    """
    skip = int(skip_seconds / dt)
    acked = stats.acked[skip:]
    capacity = capacity_mbps[skip:skip + acked.size]
    delivered_mbps = pps_to_mbps(acked.sum() / max(acked.size * dt, 1e-9))
    capacity_mean = capacity.mean() if capacity.size else 0.0
    if capacity_mean <= 0:
        return 0.0
    return float(min(delivered_mbps / capacity_mean, 1.5))


def summarize_flow(stats: FlowStats, capacity_mbps: np.ndarray, dt: float, skip_seconds: float = 1.0) -> PerformanceSummary:
    """Compute the paper's empirical metrics for one flow."""
    skip = int(skip_seconds / dt)
    acked = stats.acked[skip:]
    lost = stats.lost[skip:]
    delays = stats.queuing_delay[skip:]
    rtts = stats.rtt[skip:]

    total_acked = float(acked.sum())
    total_lost = float(lost.sum())
    duration = max(acked.size * dt, 1e-9)
    throughput_mbps = pps_to_mbps(total_acked / duration)

    ack_mask = acked > 0
    if ack_mask.any():
        avg_delay = float(np.average(delays[ack_mask], weights=acked[ack_mask])) * 1000.0
        avg_rtt = float(np.average(rtts[ack_mask], weights=acked[ack_mask])) * 1000.0
        p95_delay = _weighted_percentile(delays[ack_mask], acked[ack_mask], 95.0) * 1000.0
    else:
        avg_delay = 0.0
        avg_rtt = 0.0
        p95_delay = 0.0

    return PerformanceSummary(
        throughput_mbps=throughput_mbps,
        utilization=utilization(stats, capacity_mbps, dt, skip_seconds),
        avg_queuing_delay_ms=avg_delay,
        p95_queuing_delay_ms=p95_delay,
        avg_rtt_ms=avg_rtt,
        loss_rate=total_lost / (total_acked + total_lost) if (total_acked + total_lost) > 0 else 0.0,
        total_acked=total_acked,
        total_lost=total_lost,
    )


def summarize_result(result: SimulationResult, flow_id: int = 0, skip_seconds: float = 1.0) -> PerformanceSummary:
    """Convenience wrapper for summarizing one flow of a full run.

    Flows with a partial lifetime (churned arrivals/departures) are scored
    over their active ``[start, stop)`` window only — the silence before a
    flow arrives or after it leaves is not averaged into its utilization or
    delay.  ``skip_seconds`` is applied relative to the flow's start, so a
    late joiner still gets its slow-start ramp excluded.  Full-lifetime flows
    take the exact legacy path (byte-identical summaries).
    """
    stats = result.stats_for(flow_id)
    capacity = result.capacity_mbps
    start, stop = result.lifetime_for(flow_id)
    if start > 0.0 or stop is not None:
        times = stats.times
        lo = int(np.searchsorted(times, start, side="right"))
        hi = int(np.searchsorted(times, stop, side="right")) if stop is not None else times.size
        stats = FlowStats(flow_id, stats.records[lo:hi])
        capacity = capacity[lo:hi]
    return summarize_flow(stats, capacity, result.dt, skip_seconds)


def jain_fairness_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is maximally unfair."""
    values = np.asarray(list(throughputs), dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one throughput value")
    denominator = values.size * np.sum(values ** 2)
    if denominator <= 0.0:
        # All throughputs are (numerically) zero: treat as perfectly fair.
        return 1.0
    return float(values.sum() ** 2 / denominator)


def throughput_ratio(scheme_throughput: float, competitor_throughputs: Sequence[float]) -> float:
    """Ratio of the scheme's throughput to the mean competitor throughput (Fig. 14)."""
    competitors = np.asarray(list(competitor_throughputs), dtype=np.float64)
    if competitors.size == 0:
        raise ValueError("need at least one competitor")
    mean = competitors.mean()
    if mean <= 0:
        return float("inf") if scheme_throughput > 0 else 1.0
    return float(scheme_throughput / mean)
