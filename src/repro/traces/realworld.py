"""Wide-area link profiles standing in for the global Azure/CloudLab testbed.

Section 6.4 deploys a sender on CloudLab (Wisconsin) and receivers in nine
Azure regions, with ping latencies from 20 ms to 237 ms.  We reproduce the
experiment over emulated links: each :class:`WANProfile` names a region,
carries a base RTT, a mean capacity, a jitter level and a random loss rate,
and can materialize itself into a bandwidth trace plus link parameters for the
simulator.

Capacities and jitter are representative of wide-area cloud paths; what the
experiment needs is *heterogeneity across paths*, which the profile set
provides, not the specific numbers of the original testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.traces.trace import BandwidthTrace

__all__ = ["WANProfile", "intracontinental_profiles", "intercontinental_profiles"]


@dataclass(frozen=True)
class WANProfile:
    """An emulated wide-area path between the sender and one receiver region."""

    region: str
    category: str              # "intra" or "inter" continental
    rtt_ms: float              # base (propagation) round-trip time
    mean_mbps: float           # mean bottleneck capacity
    jitter: float              # relative capacity variability (0..1)
    loss_rate: float           # random (non-congestion) loss probability
    buffer_bdp: float = 1.0    # bottleneck buffer in BDP multiples
    seed: int = 0

    def make_trace(self, duration: float = 30.0, sample_ms: float = 200.0) -> BandwidthTrace:
        """Materialize the capacity schedule for this path."""
        rng = np.random.default_rng(self.seed or abs(hash(self.region)) % (2 ** 31))
        n = int(np.ceil(duration * 1000.0 / sample_ms))
        phi = 0.85
        noise_scale = self.jitter * np.sqrt(1 - phi ** 2)
        log_mean = np.log(self.mean_mbps)
        log_cap = np.empty(n)
        log_cap[0] = log_mean
        for i in range(1, n):
            log_cap[i] = log_mean + phi * (log_cap[i - 1] - log_mean) + rng.normal(0.0, noise_scale)
        capacity = np.clip(np.exp(log_cap), 1.0, 500.0)
        return BandwidthTrace.from_samples(capacity, sample_ms / 1000.0, f"wan-{self.region}")

    @property
    def min_rtt_s(self) -> float:
        return self.rtt_ms / 1000.0


def intracontinental_profiles() -> List[WANProfile]:
    """Receiver regions on the same continent as the sender (US/Canada)."""
    return [
        WANProfile("east-us", "intra", rtt_ms=22.0, mean_mbps=90.0, jitter=0.10, loss_rate=0.0002, seed=11),
        WANProfile("west-us-2", "intra", rtt_ms=48.0, mean_mbps=75.0, jitter=0.12, loss_rate=0.0003, seed=13),
        WANProfile("canada-central", "intra", rtt_ms=30.0, mean_mbps=85.0, jitter=0.10, loss_rate=0.0002, seed=17),
        WANProfile("south-central-us", "intra", rtt_ms=35.0, mean_mbps=80.0, jitter=0.11, loss_rate=0.0002, seed=19),
    ]


def intercontinental_profiles() -> List[WANProfile]:
    """Receiver regions on other continents."""
    return [
        WANProfile("sweden-central", "inter", rtt_ms=110.0, mean_mbps=60.0, jitter=0.15, loss_rate=0.0008, seed=23),
        WANProfile("australia-east", "inter", rtt_ms=205.0, mean_mbps=45.0, jitter=0.18, loss_rate=0.0012, seed=29),
        WANProfile("central-india", "inter", rtt_ms=237.0, mean_mbps=40.0, jitter=0.20, loss_rate=0.0015, seed=31),
        WANProfile("brazil-south", "inter", rtt_ms=150.0, mean_mbps=55.0, jitter=0.16, loss_rate=0.0010, seed=37),
        WANProfile("south-africa-north", "inter", rtt_ms=230.0, mean_mbps=42.0, jitter=0.20, loss_rate=0.0015, seed=41),
    ]
