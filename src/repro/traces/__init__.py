"""Bandwidth traces: synthetic, cellular-like, and wide-area link profiles.

The paper evaluates on 18 hand-constructed synthetic traces with fine-grained
bandwidth changes, 3 commercial LTE traces, and a global cloud testbed.  This
package generates equivalent workloads:

* :mod:`repro.traces.trace` — the :class:`BandwidthTrace` container plus a
  Mahimahi-format reader/writer.
* :mod:`repro.traces.synthetic` — 18 named synthetic traces (steps, pulses,
  sawtooths, ramps, square waves, ...).
* :mod:`repro.traces.cellular` — stochastic LTE-like traces standing in for
  the AT&T / Verizon / T-Mobile traces from Sprout.
* :mod:`repro.traces.realworld` — heterogeneous wide-area link profiles
  standing in for the Azure/CloudLab deployment of Section 6.4.
"""

from repro.traces.trace import BandwidthTrace, read_mahimahi_trace, write_mahimahi_trace
from repro.traces.synthetic import SYNTHETIC_TRACE_NAMES, make_synthetic_trace, synthetic_trace_suite
from repro.traces.cellular import CELLULAR_TRACE_NAMES, make_cellular_trace, cellular_trace_suite
from repro.traces.realworld import WANProfile, intercontinental_profiles, intracontinental_profiles

__all__ = [
    "BandwidthTrace",
    "read_mahimahi_trace",
    "write_mahimahi_trace",
    "SYNTHETIC_TRACE_NAMES",
    "make_synthetic_trace",
    "synthetic_trace_suite",
    "CELLULAR_TRACE_NAMES",
    "make_cellular_trace",
    "cellular_trace_suite",
    "WANProfile",
    "intracontinental_profiles",
    "intercontinental_profiles",
]
