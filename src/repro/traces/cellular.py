"""Cellular-like bandwidth traces.

The paper uses three commercial LTE traces (AT&T, Verizon, T-Mobile) recorded
by Sprout (Winstein et al., NSDI'13).  Those traces are not redistributable
here, so we generate stochastic stand-ins that reproduce their load-bearing
characteristics for congestion control evaluation:

* strong short-timescale capacity variability (100 ms granularity),
* occasional near-outages (capacity dropping close to zero),
* bursts well above the mean,
* long-run mean capacities in the handful-to-tens of Mbps range.

The generator is an AR(1) process in log-capacity with outage and burst
mixtures; each named carrier uses fixed parameters and a fixed seed, so the
suite is deterministic across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.traces.trace import BandwidthTrace

__all__ = ["CELLULAR_TRACE_NAMES", "make_cellular_trace", "cellular_trace_suite"]


@dataclass(frozen=True)
class _CarrierProfile:
    mean_mbps: float
    volatility: float
    outage_prob: float
    burst_prob: float
    burst_scale: float
    seed: int


_PROFILES: Dict[str, _CarrierProfile] = {
    # Parameters loosely follow the published statistics of the Sprout traces:
    # highly variable capacity with means in the 5-25 Mbps range.
    "cellular-att": _CarrierProfile(mean_mbps=9.0, volatility=0.35, outage_prob=0.02,
                                    burst_prob=0.05, burst_scale=2.5, seed=101),
    "cellular-verizon": _CarrierProfile(mean_mbps=16.0, volatility=0.30, outage_prob=0.015,
                                        burst_prob=0.04, burst_scale=2.0, seed=202),
    "cellular-tmobile": _CarrierProfile(mean_mbps=22.0, volatility=0.40, outage_prob=0.03,
                                        burst_prob=0.06, burst_scale=2.2, seed=303),
}

#: Names of the three cellular-like traces standing in for the LTE traces.
CELLULAR_TRACE_NAMES = tuple(_PROFILES.keys())


def make_cellular_trace(name: str, duration: float = 30.0, sample_ms: float = 100.0) -> BandwidthTrace:
    """Generate one cellular-like trace by carrier name."""
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown cellular trace {name!r}; known: {sorted(_PROFILES)}") from None
    rng = np.random.default_rng(profile.seed)
    n = int(np.ceil(duration * 1000.0 / sample_ms))
    log_mean = np.log(profile.mean_mbps)
    # AR(1) in log space keeps capacities positive and gives temporal correlation.
    phi = 0.9
    noise_scale = profile.volatility * np.sqrt(1 - phi ** 2)
    log_cap = np.empty(n)
    log_cap[0] = log_mean
    for i in range(1, n):
        log_cap[i] = log_mean + phi * (log_cap[i - 1] - log_mean) + rng.normal(0.0, noise_scale)
    capacity = np.exp(log_cap)

    outages = rng.random(n) < profile.outage_prob
    bursts = rng.random(n) < profile.burst_prob
    capacity = np.where(outages, capacity * 0.05, capacity)
    capacity = np.where(bursts, capacity * profile.burst_scale, capacity)
    capacity = np.clip(capacity, 0.1, 200.0)
    return BandwidthTrace.from_samples(capacity, sample_ms / 1000.0, name)


def cellular_trace_suite(duration: float = 30.0) -> List[BandwidthTrace]:
    """All three cellular-like traces."""
    return [make_cellular_trace(name, duration=duration) for name in CELLULAR_TRACE_NAMES]
