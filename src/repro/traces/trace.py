"""Bandwidth trace container and Mahimahi-format interoperability.

A :class:`BandwidthTrace` is a piecewise-constant capacity schedule: a list of
(segment duration, capacity in Mbps) pairs.  Lookup is by simulation time and
wraps around (loops) when the simulation outlives the trace, matching how
Mahimahi replays its packet-delivery trace files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.cc.base import MSS_BYTES

__all__ = ["BandwidthTrace", "read_mahimahi_trace", "write_mahimahi_trace", "mbps_to_pps", "pps_to_mbps"]


def mbps_to_pps(mbps: float) -> float:
    """Convert a capacity in Mbps to MSS-sized packets per second."""
    return mbps * 1e6 / (MSS_BYTES * 8)


def pps_to_mbps(pps: float) -> float:
    """Convert packets per second back to Mbps."""
    return pps * MSS_BYTES * 8 / 1e6


@dataclass
class BandwidthTrace:
    """Piecewise-constant bandwidth schedule.

    Attributes:
        name: Human-readable identifier (used in reports).
        segments: Sequence of ``(duration_seconds, capacity_mbps)`` pairs.
        loop: Whether lookups past the end wrap around to the beginning.
    """

    name: str
    segments: Sequence[Tuple[float, float]]
    loop: bool = True
    _cum: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("trace must have at least one segment")
        for duration, mbps in self.segments:
            if duration <= 0:
                raise ValueError("segment durations must be positive")
            if mbps < 0:
                raise ValueError("capacities must be non-negative")
        durations = np.array([seg[0] for seg in self.segments], dtype=np.float64)
        self._cum = np.concatenate([[0.0], np.cumsum(durations)])

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, mbps: float, duration: float = 60.0, name: str | None = None) -> "BandwidthTrace":
        return cls(name or f"constant-{mbps:g}mbps", [(duration, mbps)])

    @classmethod
    def from_samples(cls, samples_mbps: Iterable[float], sample_duration: float, name: str) -> "BandwidthTrace":
        """Build a trace from equally-spaced capacity samples."""
        segments = [(sample_duration, float(mbps)) for mbps in samples_mbps]
        return cls(name, segments)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def duration(self) -> float:
        """Total trace length in seconds."""
        return float(self._cum[-1])

    @property
    def mean_mbps(self) -> float:
        total = sum(duration * mbps for duration, mbps in self.segments)
        return total / self.duration

    @property
    def min_mbps(self) -> float:
        return min(mbps for _, mbps in self.segments)

    @property
    def max_mbps(self) -> float:
        return max(mbps for _, mbps in self.segments)

    def capacity_mbps(self, time: float) -> float:
        """Capacity (Mbps) at simulation time ``time``."""
        if time < 0:
            raise ValueError("time must be non-negative")
        if self.loop and self.duration > 0:
            time = time % self.duration
        elif time >= self.duration:
            return float(self.segments[-1][1])
        index = int(np.searchsorted(self._cum, time, side="right")) - 1
        index = min(max(index, 0), len(self.segments) - 1)
        return float(self.segments[index][1])

    def capacity_pps(self, time: float) -> float:
        """Capacity at ``time`` in packets per second."""
        return mbps_to_pps(self.capacity_mbps(time))

    def sample(self, dt: float, duration: float | None = None) -> np.ndarray:
        """Capacity samples (Mbps) every ``dt`` seconds for ``duration`` seconds."""
        duration = duration if duration is not None else self.duration
        times = np.arange(0.0, duration, dt)
        return np.array([self.capacity_mbps(t) for t in times])

    def scaled(self, factor: float, name: str | None = None) -> "BandwidthTrace":
        """A copy of the trace with every capacity multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        segments = [(duration, mbps * factor) for duration, mbps in self.segments]
        return BandwidthTrace(name or f"{self.name}-x{factor:g}", segments, loop=self.loop)

    def bdp_packets(self, min_rtt: float) -> float:
        """Bandwidth-delay product at the mean capacity, in packets."""
        if min_rtt <= 0:
            raise ValueError("min_rtt must be positive")
        return mbps_to_pps(self.mean_mbps) * min_rtt


# ---------------------------------------------------------------------- #
# Mahimahi trace-format interoperability
# ---------------------------------------------------------------------- #
def read_mahimahi_trace(path: str | Path, name: str | None = None, bucket_ms: float = 100.0) -> BandwidthTrace:
    """Read a Mahimahi packet-delivery trace file.

    Mahimahi traces list one integer millisecond timestamp per line, each
    representing one MSS packet-delivery opportunity.  We bucket them into
    ``bucket_ms`` windows and convert counts to Mbps.
    """
    path = Path(path)
    timestamps: List[int] = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            timestamps.append(int(float(line)))
    if not timestamps:
        raise ValueError(f"trace file {path} is empty")
    horizon_ms = max(timestamps) + 1
    n_buckets = int(np.ceil(horizon_ms / bucket_ms))
    counts = np.zeros(n_buckets)
    for ts in timestamps:
        counts[int(ts // bucket_ms)] += 1
    bucket_s = bucket_ms / 1000.0
    mbps = counts * MSS_BYTES * 8 / bucket_s / 1e6
    return BandwidthTrace.from_samples(mbps, bucket_s, name or path.stem)


def write_mahimahi_trace(trace: BandwidthTrace, path: str | Path, duration: float | None = None) -> None:
    """Write a trace as a Mahimahi packet-delivery schedule (1 ms resolution)."""
    path = Path(path)
    duration = duration if duration is not None else trace.duration
    lines: List[str] = []
    credit = 0.0
    for ms in range(int(duration * 1000)):
        time_s = ms / 1000.0
        credit += trace.capacity_pps(time_s) / 1000.0
        while credit >= 1.0:
            lines.append(str(ms))
            credit -= 1.0
    path.write_text("\n".join(lines) + "\n")
