"""Synthetic bandwidth traces with controlled, fine-grained variation.

Section 6.1 of the paper uses 18 hand-constructed synthetic traces "similar
to, but richer than, the traces used in SAGE", with frequent but controlled
bandwidth changes.  We generate an equivalent suite of 18 named traces from a
small set of parameterized shapes:

* ``step-*`` — abrupt up/down capacity steps,
* ``square-*`` — periodic square waves,
* ``sawtooth-*`` — linear ramps with resets,
* ``pulse-*`` — short capacity spikes or dips on a flat baseline,
* ``ramp-*`` — slow monotone ramps,
* ``staircase-*`` — multi-level staircases,
* ``flux-*`` — pseudo-random walks with bounded increments (seeded, so the
  suite is fully deterministic).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.traces.trace import BandwidthTrace

__all__ = ["SYNTHETIC_TRACE_NAMES", "make_synthetic_trace", "synthetic_trace_suite"]


def _step_trace(low: float, high: float, period: float, duration: float, name: str) -> BandwidthTrace:
    segments = []
    elapsed = 0.0
    level_high = False
    while elapsed < duration:
        seg = min(period, duration - elapsed)
        segments.append((seg, high if level_high else low))
        level_high = not level_high
        elapsed += seg
    return BandwidthTrace(name, segments)


def _sawtooth_trace(low: float, high: float, period: float, duration: float, name: str, steps: int = 8) -> BandwidthTrace:
    segments = []
    elapsed = 0.0
    while elapsed < duration:
        for i in range(steps):
            if elapsed >= duration:
                break
            seg = min(period / steps, duration - elapsed)
            capacity = low + (high - low) * i / (steps - 1)
            segments.append((seg, capacity))
            elapsed += seg
    return BandwidthTrace(name, segments)


def _pulse_trace(base: float, pulse: float, pulse_width: float, gap: float, duration: float, name: str) -> BandwidthTrace:
    segments = []
    elapsed = 0.0
    while elapsed < duration:
        seg = min(gap, duration - elapsed)
        segments.append((seg, base))
        elapsed += seg
        if elapsed >= duration:
            break
        seg = min(pulse_width, duration - elapsed)
        segments.append((seg, pulse))
        elapsed += seg
    return BandwidthTrace(name, segments)


def _ramp_trace(start: float, end: float, duration: float, name: str, steps: int = 24) -> BandwidthTrace:
    segments = []
    for i in range(steps):
        capacity = start + (end - start) * i / (steps - 1)
        segments.append((duration / steps, capacity))
    return BandwidthTrace(name, segments)


def _staircase_trace(levels: List[float], step_duration: float, name: str) -> BandwidthTrace:
    segments = [(step_duration, level) for level in levels]
    return BandwidthTrace(name, segments)


def _flux_trace(low: float, high: float, duration: float, name: str, seed: int, dwell: float = 0.5) -> BandwidthTrace:
    rng = np.random.default_rng(seed)
    segments = []
    elapsed = 0.0
    capacity = (low + high) / 2.0
    while elapsed < duration:
        step = rng.uniform(-0.25, 0.25) * (high - low)
        capacity = float(np.clip(capacity + step, low, high))
        seg = min(dwell, duration - elapsed)
        segments.append((seg, capacity))
        elapsed += seg
    return BandwidthTrace(name, segments)


_DURATION = 30.0

_BUILDERS: Dict[str, Callable[[], BandwidthTrace]] = {
    "step-12-48": lambda: _step_trace(12, 48, 3.0, _DURATION, "step-12-48"),
    "step-24-96": lambda: _step_trace(24, 96, 4.0, _DURATION, "step-24-96"),
    "step-6-24-fast": lambda: _step_trace(6, 24, 1.0, _DURATION, "step-6-24-fast"),
    "square-12-36": lambda: _step_trace(12, 36, 2.0, _DURATION, "square-12-36"),
    "square-48-96": lambda: _step_trace(48, 96, 2.5, _DURATION, "square-48-96"),
    "sawtooth-12-60": lambda: _sawtooth_trace(12, 60, 6.0, _DURATION, "sawtooth-12-60"),
    "sawtooth-24-96": lambda: _sawtooth_trace(24, 96, 5.0, _DURATION, "sawtooth-24-96"),
    "pulse-drop-48-12": lambda: _pulse_trace(48, 12, 1.0, 4.0, _DURATION, "pulse-drop-48-12"),
    "pulse-spike-24-96": lambda: _pulse_trace(24, 96, 1.0, 4.0, _DURATION, "pulse-spike-24-96"),
    "pulse-drop-96-24": lambda: _pulse_trace(96, 24, 1.5, 5.0, _DURATION, "pulse-drop-96-24"),
    "ramp-up-6-96": lambda: _ramp_trace(6, 96, _DURATION, "ramp-up-6-96"),
    "ramp-down-96-6": lambda: _ramp_trace(96, 6, _DURATION, "ramp-down-96-6"),
    "staircase-up": lambda: _staircase_trace([12, 24, 36, 48, 72, 96], 5.0, "staircase-up"),
    "staircase-down": lambda: _staircase_trace([96, 72, 48, 36, 24, 12], 5.0, "staircase-down"),
    "flux-low": lambda: _flux_trace(6, 48, _DURATION, "flux-low", seed=11),
    "flux-mid": lambda: _flux_trace(24, 96, _DURATION, "flux-mid", seed=23),
    "flux-high": lambda: _flux_trace(48, 192, _DURATION, "flux-high", seed=37),
    "flux-wide": lambda: _flux_trace(6, 192, _DURATION, "flux-wide", seed=53),
}

#: Names of the 18 synthetic traces in the evaluation suite.
SYNTHETIC_TRACE_NAMES = tuple(_BUILDERS.keys())


def make_synthetic_trace(name: str) -> BandwidthTrace:
    """Build one synthetic trace by name (see :data:`SYNTHETIC_TRACE_NAMES`)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown synthetic trace {name!r}; known: {sorted(_BUILDERS)}") from None
    return builder()


def synthetic_trace_suite(subset: int | None = None) -> List[BandwidthTrace]:
    """The full 18-trace synthetic suite (or its first ``subset`` traces)."""
    names = SYNTHETIC_TRACE_NAMES if subset is None else SYNTHETIC_TRACE_NAMES[:subset]
    return [make_synthetic_trace(name) for name in names]
