"""The topology graph: :class:`Link` hops, flow :class:`Route`\\ s, and :class:`Topology`.

A topology is a DAG of link hops (each hop owns its own trace-driven
capacity, finite FIFO buffer, propagation-delay contribution, and random-loss
RNG), a route per flow mapping it onto a sequence of hops, and a set of
declarative cross-traffic sources.  The hop queue engine is the same
:class:`repro.cc.link.BottleneckLink` fluid model that powered the legacy
single-link simulator, so a one-hop topology reproduces the legacy dynamics
exactly (pinned by ``tests/test_topology_differential.py``).

Routes may fork and join: two flows can enter over different access links and
merge at a shared segment (incast), or share an uplink and diverge behind it
(trees).  The only structural requirement is that the union of all route
adjacencies is acyclic — :meth:`Topology.drain_order` computes a topological
order of the hops (preferring declaration order among ready hops, so linear
chains drain exactly as they always have) and the network simulator drains
hops in that order every tick.

Propagation follows the **delay-split convention**: a hop's ``delay`` is its
round-trip contribution to the path RTT.  When a chunk is forwarded out of a
non-terminal hop it spends that hop's *forward* share — ``delay / 2`` — in
the in-flight transit stage (:mod:`repro.topology.transit`) before entering
the next hop's FIFO, so a chunk can never traverse a multi-hop path inside
one tick.  The terminal hop's delivery schedules the ack after the
*remaining* return-path delay (the path RTT minus the forward shares already
incurred), so the ack always arrives one full path RTT plus accumulated
queuing after the send.  A one-hop route has no non-terminal hops, never
enters transit, and therefore charges its entire delay at ack time — exactly
the legacy single-link accounting, which is what keeps ``single_bottleneck``
and ``chain(1)`` bit-identical to the pre-topology simulator (pinned by
``tests/test_topology_differential.py``).

Flows without an explicit route fall back to ``route_cycle`` — a round-robin
catalog of entry routes (how the branching families hand each arriving flow
its own branch) — or, when no cycle is declared, to the full declaration-order
path (the right default for chains).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cc.link import BottleneckLink
from repro.topology.cross_traffic import CrossTrafficSource
from repro.traces.trace import BandwidthTrace

__all__ = ["Link", "Route", "Topology"]


@dataclass
class Link:
    """One hop of a topology: a named FIFO queue plus its RTT contribution.

    ``delay`` is this hop's contribution to the end-to-end path RTT in
    seconds; the RTT of a route is the sum of its hops' delays, so a
    single-hop topology with ``delay == min_rtt`` matches the legacy
    single-link propagation model.  Under the delay-split convention (module
    docstring) the hop's forward one-way share is ``delay / 2`` — charged in
    transit when a chunk is forwarded out of it towards the next hop — and
    the remaining shares are charged when the ack returns.
    """

    name: str
    queue: BottleneckLink
    delay: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if self.delay <= 0:
            raise ValueError("link delay must be positive")

    @classmethod
    def build(
        cls,
        name: str,
        trace: BandwidthTrace,
        delay: float,
        buffer_rtt: float,
        buffer_bdp: float = 1.0,
        buffer_packets: Optional[float] = None,
        random_loss_rate: float = 0.0,
        stochastic_loss: bool = False,
        seed: Optional[int] = None,
    ) -> "Link":
        """Construct a hop whose buffer is sized in BDP multiples of ``buffer_rtt``.

        ``buffer_rtt`` is usually the *path* RTT (not the hop delay) so that a
        one-hop topology sizes its buffer exactly like the legacy single link
        and multi-hop buffers stay comparable across families.
        """
        queue = BottleneckLink(
            trace,
            min_rtt=buffer_rtt,
            buffer_bdp=buffer_bdp,
            buffer_packets=buffer_packets,
            random_loss_rate=random_loss_rate,
            stochastic_loss=stochastic_loss,
            seed=seed,
        )
        return cls(name=name, queue=queue, delay=delay)


@dataclass(frozen=True)
class Route:
    """A flow's path: an ordered tuple of link names plus the summed RTT."""

    flow_id: int
    link_names: Tuple[str, ...]
    rtt: float

    def __post_init__(self) -> None:
        if not self.link_names:
            raise ValueError("route must traverse at least one link")


class Topology:
    """A DAG of link hops with per-flow routes and cross-traffic sources.

    Args:
        name: Family label used in reports (e.g. ``chain(3)``).
        links: Hops, conventionally declared upstream→downstream; names must
            be unique.  Declaration order breaks ties in the drain order, so
            for linear topologies it *is* the drain order.
        routes: Optional mapping of flow id to the link names it traverses, in
            order.  Flows without an explicit route draw from ``route_cycle``
            or, absent that, use the full path (all links in declaration
            order), which is the right default for chains.
        route_cycle: Optional catalog of entry routes assigned round-robin to
            flow ids without an explicit route (``route_cycle[flow_id % len]``)
            — how branching families (``fan_in``, ``tree``, ``shared_segment``)
            give every arriving flow its own branch.
        cross_traffic: Declarative background sources; their (negative) flow
            ids and paths are validated against the link set.
        bottleneck: Name of the hop whose trace defines the reference capacity
            (utilization denominators, capacity logs).  Defaults to the hop
            with the lowest mean capacity.

    The union of all route adjacencies (explicit routes, the route cycle,
    cross-traffic paths, and — when no route cycle is declared — the implicit
    full-path default) must be acyclic; a cycle raises ``ValueError``.
    """

    def __init__(
        self,
        name: str,
        links: Sequence[Link],
        routes: Optional[Dict[int, Sequence[str]]] = None,
        route_cycle: Optional[Sequence[Sequence[str]]] = None,
        cross_traffic: Sequence[CrossTrafficSource] = (),
        bottleneck: Optional[str] = None,
    ) -> None:
        if not links:
            raise ValueError("topology needs at least one link")
        names = [link.name for link in links]
        if len(set(names)) != len(names):
            raise ValueError("link names must be unique")
        self.name = name
        self.links: Dict[str, Link] = {link.name: link for link in links}
        self._order: List[str] = names

        self._routes: Dict[int, Tuple[str, ...]] = {}
        for flow_id, link_names in (routes or {}).items():
            self._routes[flow_id] = self._validated_path(tuple(link_names))

        self._route_cycle: Optional[List[Tuple[str, ...]]] = None
        if route_cycle is not None:
            if not route_cycle:
                raise ValueError("route_cycle must name at least one route")
            self._route_cycle = [self._validated_path(tuple(path)) for path in route_cycle]

        self.cross_traffic: List[CrossTrafficSource] = list(cross_traffic)
        seen_ids = set()
        for source in self.cross_traffic:
            if source.flow_id in seen_ids:
                raise ValueError(f"duplicate cross-traffic flow id {source.flow_id}")
            seen_ids.add(source.flow_id)
            self._validated_path(source.path)

        self._drain_order: List[str] = self._topological_order()

        if bottleneck is None:
            bottleneck = min(names, key=lambda n: self.links[n].queue.trace.mean_mbps)
        if bottleneck not in self.links:
            raise ValueError(f"unknown bottleneck link {bottleneck!r}")
        self.bottleneck_name = bottleneck

    # ------------------------------------------------------------------ #
    def _validated_path(self, path: Tuple[str, ...]) -> Tuple[str, ...]:
        if not path:
            raise ValueError("path must name at least one link")
        unknown = [n for n in path if n not in self.links]
        if unknown:
            raise ValueError(f"path references unknown links {unknown}")
        if len(set(path)) != len(path):
            raise ValueError(f"path {path} visits a link twice")
        return path

    def _route_adjacencies(self) -> List[Tuple[str, ...]]:
        """Every path whose hop-to-hop successor edges constrain the drain order."""
        paths: List[Tuple[str, ...]] = list(self._routes.values())
        if self._route_cycle is not None:
            paths.extend(self._route_cycle)
        else:
            # No route cycle: flows without an explicit route ride the full
            # declaration-order path, so its chain edges are constraints too
            # (this is what keeps legacy linear topologies drain-stable and
            # rejects routes that run against the chain).
            paths.append(tuple(self._order))
        paths.extend(source.path for source in self.cross_traffic)
        return paths

    def _topological_order(self) -> List[str]:
        """Kahn's algorithm over the route adjacencies, preferring declaration
        order among ready hops — identical to the declaration order whenever it
        is itself consistent (every pre-DAG family).

        The ready set is a min-heap of precomputed declaration indices, so
        each pop is O(log h) instead of the old ``min(ready,
        key=self._order.index)``, which re-scanned the declaration list for
        every candidate on every pop (quadratic in hop count, cubic with the
        inner ``list.index``).  The produced order is byte-identical: both
        extract the smallest declaration index first (pinned by
        ``tests/test_topology.py::TestTopologicalOrder``).
        """
        index_of = {name: index for index, name in enumerate(self._order)}
        successors: Dict[str, set] = {name: set() for name in self._order}
        indegree: Dict[str, int] = {name: 0 for name in self._order}
        for path in self._route_adjacencies():
            for upstream, downstream in zip(path, path[1:]):
                if downstream not in successors[upstream]:
                    successors[upstream].add(downstream)
                    indegree[downstream] += 1
        order: List[str] = []
        ready = [index_of[name] for name in self._order if indegree[name] == 0]
        heapq.heapify(ready)
        while ready:
            # Smallest declaration index first: deterministic, legacy-stable.
            name = self._order[heapq.heappop(ready)]
            order.append(name)
            for downstream in successors[name]:
                indegree[downstream] -= 1
                if indegree[downstream] == 0:
                    heapq.heappush(ready, index_of[downstream])
        if len(order) != len(self._order):
            cyclic = sorted(name for name, degree in indegree.items() if degree > 0)
            raise ValueError(f"routes form a cycle through links {cyclic}; "
                             "the union of route adjacencies must be a DAG")
        return order

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def ordered_links(self) -> List[Link]:
        """Hops in topological (drain) order — declaration order for chains."""
        return [self.links[name] for name in self._drain_order]

    @property
    def drain_order(self) -> List[str]:
        """Hop names in the order the simulator drains them each tick."""
        return list(self._drain_order)

    @property
    def link_names(self) -> List[str]:
        return list(self._order)

    def describe(self) -> Dict[str, object]:
        """The topology's identity as plain JSON-able fields.

        This is the payload of the one-time ``topology`` telemetry event a
        simulator emits at attach time: the name, the hops in drain order,
        and the designated bottleneck — what a trace renderer needs to label
        per-hop lanes without reaching back into live objects.
        """
        return {"name": self.name, "hops": list(self._drain_order),
                "bottleneck": self.bottleneck_name}

    @property
    def bottleneck(self) -> Link:
        """The hop whose trace defines the reference capacity."""
        return self.links[self.bottleneck_name]

    @property
    def n_hops(self) -> int:
        return len(self._order)

    def route_names(self, flow_id: int) -> Tuple[str, ...]:
        """The link names flow ``flow_id`` traverses.

        Explicit routes win; otherwise the route cycle hands the flow a branch
        round-robin (``flow_id % len(route_cycle)`` — Python's modulo keeps
        negative cross-traffic ids in range); with neither, the full
        declaration-order path (the chain default).
        """
        explicit = self._routes.get(flow_id)
        if explicit is not None:
            return explicit
        if self._route_cycle is not None:
            return self._route_cycle[flow_id % len(self._route_cycle)]
        return tuple(self._order)

    def route_for(self, flow_id: int) -> Route:
        names = self.route_names(flow_id)
        return Route(flow_id=flow_id, link_names=names,
                     rtt=sum(self.links[n].delay for n in names))

    def route_links(self, flow_id: int) -> List[Link]:
        return [self.links[n] for n in self.route_names(flow_id)]

    def path_rtt(self, flow_id: int) -> float:
        """Summed propagation delay over the flow's route (seconds)."""
        return sum(link.delay for link in self.route_links(flow_id))

    def reset(self) -> None:
        for link in self.links.values():
            link.queue.reset()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single(cls, link: BottleneckLink, name: str = "single_bottleneck") -> "Topology":
        """Wrap one legacy :class:`BottleneckLink` as a one-hop topology.

        The hop's delay is the link's ``min_rtt``, so route RTTs — and hence
        ack timing — are identical to the legacy single-link simulator.
        """
        hop = Link(name="bottleneck", queue=link, delay=link.min_rtt)
        return cls(name=name, links=[hop], bottleneck="bottleneck")
