"""The topology graph: :class:`Link` hops, flow :class:`Route`\\ s, and :class:`Topology`.

A topology is an ordered set of link hops (each hop owns its own trace-driven
capacity, finite FIFO buffer, propagation-delay contribution, and random-loss
RNG), a route per flow mapping it onto a contiguous sequence of hops, and a
set of declarative cross-traffic sources.  The hop queue engine is the same
:class:`repro.cc.link.BottleneckLink` fluid model that powered the legacy
single-link simulator, so a one-hop topology reproduces the legacy dynamics
exactly (pinned by ``tests/test_topology_differential.py``).

Hops are kept in upstream→downstream order; the network simulator drains them
in that order every tick, so packets can traverse several empty queues within
one tick (the fluid-model equivalent of store-and-forward being much faster
than a 10 ms tick), while all propagation delay is accounted end-to-end when
the ack returns after the summed path delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cc.link import BottleneckLink
from repro.topology.cross_traffic import CrossTrafficSource
from repro.traces.trace import BandwidthTrace

__all__ = ["Link", "Route", "Topology"]


@dataclass
class Link:
    """One hop of a topology: a named FIFO queue plus its RTT contribution.

    ``delay`` is this hop's contribution to the end-to-end path RTT in
    seconds; the RTT of a route is the sum of its hops' delays, so a
    single-hop topology with ``delay == min_rtt`` matches the legacy
    single-link propagation model.
    """

    name: str
    queue: BottleneckLink
    delay: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if self.delay <= 0:
            raise ValueError("link delay must be positive")

    @classmethod
    def build(
        cls,
        name: str,
        trace: BandwidthTrace,
        delay: float,
        buffer_rtt: float,
        buffer_bdp: float = 1.0,
        buffer_packets: Optional[float] = None,
        random_loss_rate: float = 0.0,
        stochastic_loss: bool = False,
        seed: Optional[int] = None,
    ) -> "Link":
        """Construct a hop whose buffer is sized in BDP multiples of ``buffer_rtt``.

        ``buffer_rtt`` is usually the *path* RTT (not the hop delay) so that a
        one-hop topology sizes its buffer exactly like the legacy single link
        and multi-hop buffers stay comparable across families.
        """
        queue = BottleneckLink(
            trace,
            min_rtt=buffer_rtt,
            buffer_bdp=buffer_bdp,
            buffer_packets=buffer_packets,
            random_loss_rate=random_loss_rate,
            stochastic_loss=stochastic_loss,
            seed=seed,
        )
        return cls(name=name, queue=queue, delay=delay)


@dataclass(frozen=True)
class Route:
    """A flow's path: an ordered tuple of link names plus the summed RTT."""

    flow_id: int
    link_names: Tuple[str, ...]
    rtt: float

    def __post_init__(self) -> None:
        if not self.link_names:
            raise ValueError("route must traverse at least one link")


class Topology:
    """A graph of link hops with per-flow routes and cross-traffic sources.

    Args:
        name: Family label used in reports (e.g. ``chain(3)``).
        links: Hops in upstream→downstream order; names must be unique.
        routes: Optional mapping of flow id to the link names it traverses, in
            order.  Flows without an explicit route use the full path (all
            links in order), which is the right default for chains.
        cross_traffic: Declarative background sources; their (negative) flow
            ids and paths are validated against the link set.
        bottleneck: Name of the hop whose trace defines the reference capacity
            (utilization denominators, capacity logs).  Defaults to the hop
            with the lowest mean capacity.
    """

    def __init__(
        self,
        name: str,
        links: Sequence[Link],
        routes: Optional[Dict[int, Sequence[str]]] = None,
        cross_traffic: Sequence[CrossTrafficSource] = (),
        bottleneck: Optional[str] = None,
    ) -> None:
        if not links:
            raise ValueError("topology needs at least one link")
        names = [link.name for link in links]
        if len(set(names)) != len(names):
            raise ValueError("link names must be unique")
        self.name = name
        self.links: Dict[str, Link] = {link.name: link for link in links}
        self._order: List[str] = names

        self._routes: Dict[int, Tuple[str, ...]] = {}
        for flow_id, link_names in (routes or {}).items():
            self._routes[flow_id] = self._validated_path(tuple(link_names))

        self.cross_traffic: List[CrossTrafficSource] = list(cross_traffic)
        seen_ids = set()
        for source in self.cross_traffic:
            if source.flow_id in seen_ids:
                raise ValueError(f"duplicate cross-traffic flow id {source.flow_id}")
            seen_ids.add(source.flow_id)
            self._validated_path(source.path)

        if bottleneck is None:
            bottleneck = min(names, key=lambda n: self.links[n].queue.trace.mean_mbps)
        if bottleneck not in self.links:
            raise ValueError(f"unknown bottleneck link {bottleneck!r}")
        self.bottleneck_name = bottleneck

    # ------------------------------------------------------------------ #
    def _validated_path(self, path: Tuple[str, ...]) -> Tuple[str, ...]:
        if not path:
            raise ValueError("path must name at least one link")
        unknown = [n for n in path if n not in self.links]
        if unknown:
            raise ValueError(f"path references unknown links {unknown}")
        positions = [self._order.index(n) for n in path]
        if positions != sorted(positions) or len(set(positions)) != len(positions):
            raise ValueError(f"path {path} must follow the upstream→downstream link order")
        return path

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def ordered_links(self) -> List[Link]:
        """Hops in upstream→downstream (drain) order."""
        return [self.links[name] for name in self._order]

    @property
    def link_names(self) -> List[str]:
        return list(self._order)

    @property
    def bottleneck(self) -> Link:
        """The hop whose trace defines the reference capacity."""
        return self.links[self.bottleneck_name]

    @property
    def n_hops(self) -> int:
        return len(self._order)

    def route_names(self, flow_id: int) -> Tuple[str, ...]:
        """The link names flow ``flow_id`` traverses (full path by default)."""
        return self._routes.get(flow_id, tuple(self._order))

    def route_for(self, flow_id: int) -> Route:
        names = self.route_names(flow_id)
        return Route(flow_id=flow_id, link_names=names,
                     rtt=sum(self.links[n].delay for n in names))

    def route_links(self, flow_id: int) -> List[Link]:
        return [self.links[n] for n in self.route_names(flow_id)]

    def path_rtt(self, flow_id: int) -> float:
        """Summed propagation delay over the flow's route (seconds)."""
        return sum(link.delay for link in self.route_links(flow_id))

    def reset(self) -> None:
        for link in self.links.values():
            link.queue.reset()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single(cls, link: BottleneckLink, name: str = "single_bottleneck") -> "Topology":
        """Wrap one legacy :class:`BottleneckLink` as a one-hop topology.

        The hop's delay is the link's ``min_rtt``, so route RTTs — and hence
        ack timing — are identical to the legacy single-link simulator.
        """
        hop = Link(name="bottleneck", queue=link, delay=link.min_rtt)
        return cls(name=name, links=[hop], bottleneck="bottleneck")
