"""In-flight transit between hops: the per-link one-way propagation stage.

A chunk leaving hop *i* of a multi-hop route does not appear in hop *i+1*'s
FIFO at the same timestamp — it spends hop *i*'s forward propagation delay
"on the wire" first.  :class:`TransitQueue` models that stage: the network
simulator puts every forwarded chunk into transit with an eligibility time
(``departure + forward delay share``), and flushes the chunks whose time has
come into the downstream FIFO at the start of each tick's drain pass.

The delay-split convention (documented in :mod:`repro.topology.graph`): a
hop's ``delay`` is its round-trip contribution to the path RTT, so its
*forward* share — the transit time charged when a chunk is forwarded out of
it — is ``delay / 2``.  The terminal hop never forwards, so a one-hop route
never enters transit and keeps the legacy all-at-ack-time accounting
bit-for-bit (pinned by ``tests/test_topology_differential.py``).

Ordering is deterministic: chunks are released in ``(eligible_time, sequence
number)`` order, where the sequence number increments in send order — itself
deterministic because hops drain in topological order tick by tick.  Chunks
of one flow therefore stay FIFO across the transit stage (same source hop ⇒
same forward share ⇒ monotone eligibility times), and interleavings at join
hops (``fan_in``) are reproducible run to run.

In-transit packets are a first-class conservation bucket:
:meth:`TransitQueue.occupancy`, :meth:`TransitQueue.per_link_occupancy` and
:meth:`TransitQueue.per_flow_occupancy` let the simulator (and the invariant
suites) account for every packet that has left one queue but not yet reached
the next: ``sent == acked + lost + queued + in-transit + notifications
in flight`` at every tick.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import EventTrace

__all__ = ["TransitChunk", "TransitQueue"]

_EPS = 1e-12


@dataclass(frozen=True)
class TransitChunk:
    """A chunk of packets propagating between two hops."""

    flow_id: int
    packets: float
    queuing_delay: float   # queuing accumulated on upstream hops (carried over)
    eligible_time: float   # when it reaches the downstream hop's FIFO


class TransitQueue:
    """Per-destination-hop min-heaps of in-flight chunks.

    One instance serves a whole topology: chunks are keyed by the name of the
    hop they are travelling *towards*, so fork/join DAGs work unchanged — a
    join hop simply receives chunks from several upstream heaps' worth of
    senders, merged in deterministic ``(eligible_time, seq)`` order.

    When an :class:`~repro.telemetry.events.EventTrace` is attached the queue
    tracks per-destination in-flight occupancy and emits a
    ``transit_high_water`` event whenever a destination's occupancy clears its
    last emitted mark by 5% (the multiplicative cap keeps the event count
    logarithmic in the peak while staying fully deterministic).
    """

    def __init__(self, telemetry: Optional[EventTrace] = None) -> None:
        self._pending: Dict[str, List[Tuple[float, int, TransitChunk]]] = {}
        self._seq = 0
        self._occupancy = 0.0
        self._telemetry = telemetry
        # High-water tracking is telemetry-only state: per-dest occupancy and
        # the last emitted mark per destination.
        self._dest_occupancy: Dict[str, float] = {}
        self._high_water: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def send(self, dest: str, flow_id: int, packets: float, queuing_delay: float,
             eligible_time: float) -> None:
        """Put a forwarded chunk on the wire towards hop ``dest``."""
        if packets <= 0:
            return
        chunk = TransitChunk(flow_id, packets, queuing_delay, eligible_time)
        heapq.heappush(self._pending.setdefault(dest, []),
                       (eligible_time, self._seq, chunk))
        self._seq += 1
        self._occupancy += packets
        tel = self._telemetry
        if tel is not None:
            occupancy = self._dest_occupancy.get(dest, 0.0) + packets
            self._dest_occupancy[dest] = occupancy
            last_mark = self._high_water.get(dest, 0.0)
            if occupancy > last_mark * 1.05:
                self._high_water[dest] = occupancy
                tel.emit("transit_high_water", hop=dest, packets=occupancy)

    def arrivals(self, dest: str, now: float) -> List[TransitChunk]:
        """Pop every chunk destined to ``dest`` whose transit time has elapsed."""
        heap = self._pending.get(dest)
        if not heap:
            return []
        due: List[TransitChunk] = []
        while heap and heap[0][0] <= now + _EPS:
            chunk = heapq.heappop(heap)[2]
            due.append(chunk)
            self._occupancy -= chunk.packets
        if due and self._telemetry is not None:
            popped = sum(chunk.packets for chunk in due)
            self._dest_occupancy[dest] = max(
                0.0, self._dest_occupancy.get(dest, 0.0) - popped)
        return due

    # ------------------------------------------------------------------ #
    # Conservation accounting
    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> float:
        """Total packets currently in transit between hops."""
        return max(0.0, self._occupancy)

    def per_link_occupancy(self) -> Dict[str, float]:
        """In-transit packets keyed by the hop they are travelling towards."""
        return {dest: sum(entry[2].packets for entry in heap)
                for dest, heap in self._pending.items() if heap}

    def per_flow_occupancy(self) -> Dict[int, float]:
        """In-transit packets broken down by flow (conservation diagnostics)."""
        occupancy: Dict[int, float] = {}
        for heap in self._pending.values():
            for _, _, chunk in heap:
                occupancy[chunk.flow_id] = occupancy.get(chunk.flow_id, 0.0) + chunk.packets
        return occupancy

    def reset(self) -> None:
        self._pending.clear()
        self._occupancy = 0.0
        self._dest_occupancy.clear()
        self._high_water.clear()
