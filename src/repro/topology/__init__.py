"""Multi-bottleneck network topologies: link graphs, routes, and cross traffic.

This package generalizes the single shared :class:`~repro.cc.link.BottleneckLink`
into a first-class, sweepable topology abstraction:

* :class:`~repro.topology.graph.Link` — one hop: a trace-driven FIFO queue
  plus its propagation-delay contribution to the path RTT.
* :class:`~repro.topology.graph.Topology` — an ordered hop graph with
  per-flow :class:`~repro.topology.graph.Route`\\ s and declarative
  cross-traffic sources.
* :mod:`~repro.topology.families` — the sweepable catalog
  (``single_bottleneck``, ``chain(n)``, ``parking_lot(n)``, ``dumbbell``)
  parsed from plain-string specs.
* :mod:`~repro.topology.cross_traffic` — constant-bit-rate and on/off
  background sources.
* :mod:`~repro.topology.transit` — the in-flight propagation stage between
  hops (each non-terminal hop's forward ``delay / 2`` share is spent on the
  wire before the chunk reaches the next FIFO).

:class:`repro.cc.netsim.NetworkSimulator` drives any topology; a one-hop
``single_bottleneck`` reproduces the legacy single-link trajectory exactly.
"""

# Load the congestion-control substrate first: repro.traces and repro.cc
# import each other, and entering the cycle from the traces side (which the
# submodule imports below would otherwise do) fails on a cold interpreter.
# Importing repro.cc first resolves the cycle (trace.py only needs the
# already-complete repro.cc.base).
import repro.cc  # noqa: F401  (import-order guard, see above)

from repro.topology.cross_traffic import ConstantBitRate, CrossTrafficSource, OnOff, TrafficGenerator
from repro.topology.families import (
    DEFAULT_TOPOLOGY,
    TOPOLOGY_FAMILIES,
    build_topology,
    parse_topology,
    topology_family_specs,
)
from repro.topology.graph import Link, Route, Topology
from repro.topology.transit import TransitChunk, TransitQueue

__all__ = [
    "Link",
    "Route",
    "Topology",
    "TransitChunk",
    "TransitQueue",
    "ConstantBitRate",
    "OnOff",
    "TrafficGenerator",
    "CrossTrafficSource",
    "TOPOLOGY_FAMILIES",
    "DEFAULT_TOPOLOGY",
    "build_topology",
    "parse_topology",
    "topology_family_specs",
]
