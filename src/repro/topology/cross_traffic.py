"""Declarative cross-traffic generators for multi-bottleneck topologies.

Cross traffic is unresponsive background load injected at a link of the
topology: it competes with the congestion-controlled flows for buffer space
and drain capacity but does not react to loss or delay.  Two classic shapes
are provided:

* :class:`ConstantBitRate` — a fixed offered rate (the "parking lot" standard).
* :class:`OnOff` — a square-wave burst source alternating between a fixed
  on-rate and silence, with a configurable phase so several sources can be
  decorrelated deterministically.

A :class:`CrossTrafficSource` binds one generator to a path through the
topology and a (negative) flow id, so cross-traffic chunks travel hop-by-hop
through the same FIFO queues as real flows and can be told apart in
per-flow occupancy diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Tuple

from repro.traces.trace import mbps_to_pps

__all__ = ["TrafficGenerator", "ConstantBitRate", "OnOff", "CrossTrafficSource"]


class TrafficGenerator(Protocol):
    """Anything that can state its offered rate at a point in time."""

    def rate_pps(self, now: float) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ConstantBitRate:
    """A constant offered load of ``rate_mbps``."""

    rate_mbps: float

    def __post_init__(self) -> None:
        if self.rate_mbps < 0:
            raise ValueError("rate_mbps must be non-negative")

    def rate_pps(self, now: float) -> float:
        return mbps_to_pps(self.rate_mbps)


@dataclass(frozen=True)
class OnOff:
    """A square-wave source: ``rate_mbps`` for ``on_seconds``, silent for ``off_seconds``.

    ``phase`` shifts the waveform in time, so multiple sources built from
    per-source derived seeds burst at different (but reproducible) instants.
    """

    rate_mbps: float
    on_seconds: float
    off_seconds: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_mbps < 0:
            raise ValueError("rate_mbps must be non-negative")
        if self.on_seconds <= 0 or self.off_seconds < 0:
            raise ValueError("need on_seconds > 0 and off_seconds >= 0")

    @property
    def period(self) -> float:
        return self.on_seconds + self.off_seconds

    def rate_pps(self, now: float) -> float:
        position = (now + self.phase) % self.period
        return mbps_to_pps(self.rate_mbps) if position < self.on_seconds else 0.0


@dataclass(frozen=True)
class CrossTrafficSource:
    """One unresponsive background flow routed over ``path``.

    ``flow_id`` must be negative so cross traffic can never collide with the
    congestion-controlled flows (which use ids >= 0).
    """

    name: str
    flow_id: int
    path: Tuple[str, ...]
    generator: TrafficGenerator

    def __post_init__(self) -> None:
        if self.flow_id >= 0:
            raise ValueError("cross-traffic flow ids must be negative")
        if not self.path:
            raise ValueError("cross-traffic path must name at least one link")
