"""The topology-family catalog: sweepable, declarative network scenarios.

A family spec is a compact string — ``single_bottleneck``, ``chain(3)``,
``parking_lot(4)``, ``dumbbell`` — that :func:`build_topology` expands into a
concrete :class:`~repro.topology.graph.Topology` around a bandwidth trace and
the usual evaluation knobs (path RTT, buffer depth in BDP multiples, random
loss).  Specs are plain strings so they travel freely through
:class:`~repro.harness.parallel.ExperimentTask` grids, CLI flags, and bench
JSON without any pickling concerns.

Families
--------

``single_bottleneck``
    One trace-driven hop.  Byte-for-byte equivalent to the legacy single-link
    simulator (the differential suite pins this).

``chain(n)``
    ``n`` hops in series.  The *last* hop is the trace-driven bottleneck;
    upstream hops run 25% faster, so bursts traverse several per-hop buffers
    before hitting the bottleneck queue.  The path RTT is split evenly across
    hops.

``parking_lot(n)``
    ``n`` trace-driven segments in series; the flow under test crosses all of
    them while one constant-bit-rate cross flow enters and leaves at each
    segment (the classic parking-lot contention scenario).

``dumbbell``
    Fast access links on both sides of one trace-driven bottleneck carrying
    an on/off burst source whose phase is drawn from a seed-derived RNG.

``fan_in(n)``
    The incast shape: ``n`` access leaves joining at one trace-driven root.
    Each flow enters over its own leaf (round-robin over the ``route_cycle``),
    so ``n`` concurrent flows collide at the shared root queue — the classic
    incast storm when a responsive workload brings several of them up at once.

``tree(n)``
    The inverse fork: one trace-driven uplink, then ``n`` faster downstream
    branches; flows share the uplink and diverge behind it.

``shared_segment``
    Two disjoint access/exit branch pairs around one trace-driven shared
    middle segment: flows fork in, share the segment, and fork back out.

Adding a family: write a ``_build_<family>`` helper, register it in
``_BUILDERS``, and give it a default hop count in ``_DEFAULT_HOPS`` (see the
architecture notes in ROADMAP.md).  Branching families declare a
``route_cycle`` so flows without explicit routes each get their own branch.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.seeding import derive_seed
from repro.topology.cross_traffic import ConstantBitRate, CrossTrafficSource, OnOff
from repro.topology.graph import Link, Topology
from repro.traces.trace import BandwidthTrace

__all__ = [
    "TOPOLOGY_FAMILIES",
    "DEFAULT_TOPOLOGY",
    "parse_topology",
    "canonical_topology",
    "build_topology",
    "topology_family_specs",
    "topology_link_names",
    "topology_hop_seeds",
]

#: Family names accepted by :func:`parse_topology`.
TOPOLOGY_FAMILIES = ("single_bottleneck", "chain", "parking_lot", "dumbbell",
                     "fan_in", "tree", "shared_segment")

#: The spec every evaluation uses unless told otherwise (legacy behaviour).
DEFAULT_TOPOLOGY = "single_bottleneck"

#: Capacity headroom of non-bottleneck hops relative to the bottleneck trace.
ACCESS_HEADROOM = 1.25
DUMBBELL_ACCESS_SCALE = 2.0

#: Fraction of the bottleneck's mean capacity offered by each cross source.
DEFAULT_CROSS_LOAD = 0.25

_SPEC_RE = re.compile(r"^\s*([a-z_]+)\s*(?:\(\s*(\d+)\s*\))?\s*$")

_DEFAULT_HOPS = {"single_bottleneck": 1, "chain": 2, "parking_lot": 2, "dumbbell": 3,
                 "fan_in": 3, "tree": 2, "shared_segment": 5}
_FIXED_HOPS = {"single_bottleneck": 1, "dumbbell": 3, "shared_segment": 5}

#: Branching families need at least two branches to branch.
_MIN_BRANCHES = {"fan_in": 2, "tree": 2}


def parse_topology(spec: str) -> Tuple[str, int]:
    """Parse ``"family"`` or ``"family(n)"`` into ``(family, n_hops)``.

    Raises ``ValueError`` for unknown families, malformed specs, hop counts
    below 1, or a hop count on a family with a fixed shape.
    """
    match = _SPEC_RE.match(spec or "")
    if match is None:
        raise ValueError(f"malformed topology spec {spec!r}; expected 'family' or 'family(n)'")
    family, count = match.group(1), match.group(2)
    if family not in TOPOLOGY_FAMILIES:
        raise ValueError(f"unknown topology family {family!r}; known: {TOPOLOGY_FAMILIES}")
    if count is None:
        return family, _DEFAULT_HOPS[family]
    n = int(count)
    if family in _FIXED_HOPS and n != _FIXED_HOPS[family]:
        raise ValueError(f"{family} has a fixed shape; drop the ({n}) suffix")
    if n < 1:
        raise ValueError("hop count must be >= 1")
    if n < _MIN_BRANCHES.get(family, 1):
        raise ValueError(f"{family} needs at least {_MIN_BRANCHES[family]} branches")
    return family, n


def topology_family_specs() -> List[str]:
    """Representative specs for listings and sweeps (one per family)."""
    return ["single_bottleneck", "chain(3)", "parking_lot(3)", "dumbbell",
            "fan_in(3)", "tree(2)", "shared_segment"]


def _canonical_spec(family: str, n: int) -> str:
    """The spec string the builders embed in hop-seed derivations."""
    return family if family in _FIXED_HOPS else f"{family}({n})"


def canonical_topology(spec: str) -> str:
    """The canonical form of a family spec (whitespace dropped, default hop
    counts made explicit): ``" chain( 3 ) "`` → ``"chain(3)"``, ``"chain"`` →
    ``"chain(2)"``.  Two specs that build the same topology canonicalize to
    the same string, so scenario keys never split identical cells."""
    return _canonical_spec(*parse_topology(spec))


def topology_link_names(spec: str) -> List[str]:
    """Hop names of a family spec, in upstream→downstream order."""
    family, n = parse_topology(spec)
    if family == "single_bottleneck":
        return ["bottleneck"]
    if family == "chain":
        return [f"hop{index}" for index in range(1, n + 1)]
    if family == "parking_lot":
        return [f"seg{index}" for index in range(1, n + 1)]
    if family == "fan_in":
        return [f"leaf{index}" for index in range(1, n + 1)] + ["bottleneck"]
    if family == "tree":
        return ["bottleneck"] + [f"branch{index}" for index in range(1, n + 1)]
    if family == "shared_segment":
        return ["access-a", "access-b", "shared", "exit-a", "exit-b"]
    return ["access-src", "bottleneck", "access-dst"]


def topology_hop_seeds(spec: str, trace_name: str, seed: int) -> Dict[str, int]:
    """The per-hop loss-RNG seeds a spec expands to (provenance for run records).

    Matches the builders' own derivation exactly, so a
    :class:`~repro.harness.store.RunRecord` can stamp the hop seeds without
    constructing the topology (no trace object needed).
    """
    family, n = parse_topology(spec)
    canonical = _canonical_spec(family, n)
    return {name: _hop_seed(seed, canonical, trace_name, name)
            for name in topology_link_names(spec)}


# ---------------------------------------------------------------------- #
# Builders
# ---------------------------------------------------------------------- #
def _hop_seed(seed: int, spec: str, trace_name: str, link_name: str) -> int:
    """Per-hop RNG seed derived from the cell coordinates (sharding-stable)."""
    return derive_seed(seed, "topology", spec, trace_name, link_name)


def _build_single_bottleneck(trace, min_rtt, buffer_bdp, random_loss_rate, seed, n, cross_load,
                             stochastic_loss):
    link = Link.build("bottleneck", trace, delay=min_rtt, buffer_rtt=min_rtt,
                      buffer_bdp=buffer_bdp, random_loss_rate=random_loss_rate,
                      stochastic_loss=stochastic_loss,
                      seed=_hop_seed(seed, "single_bottleneck", trace.name, "bottleneck"))
    return Topology("single_bottleneck", [link], bottleneck="bottleneck")


def _build_chain(trace, min_rtt, buffer_bdp, random_loss_rate, seed, n, cross_load,
                 stochastic_loss):
    spec = f"chain({n})"
    hop_delay = min_rtt / n
    links = []
    for index in range(1, n + 1):
        name = f"hop{index}"
        if index == n:  # the trace-driven bottleneck sits at the end of the path
            hop_trace, loss = trace, random_loss_rate
        else:
            hop_trace = trace.scaled(ACCESS_HEADROOM, name=f"{trace.name}-{name}")
            loss = 0.0
        links.append(Link.build(name, hop_trace, delay=hop_delay, buffer_rtt=min_rtt,
                                buffer_bdp=buffer_bdp, random_loss_rate=loss,
                                stochastic_loss=stochastic_loss,
                                seed=_hop_seed(seed, spec, trace.name, name)))
    return Topology(spec, links, bottleneck=f"hop{n}")


def _build_parking_lot(trace, min_rtt, buffer_bdp, random_loss_rate, seed, n, cross_load,
                       stochastic_loss):
    spec = f"parking_lot({n})"
    hop_delay = min_rtt / n
    links = []
    cross = []
    for index in range(1, n + 1):
        name = f"seg{index}"
        loss = random_loss_rate if index == n else 0.0
        links.append(Link.build(name, trace, delay=hop_delay, buffer_rtt=min_rtt,
                                buffer_bdp=buffer_bdp, random_loss_rate=loss,
                                stochastic_loss=stochastic_loss,
                                seed=_hop_seed(seed, spec, trace.name, name)))
        cross.append(CrossTrafficSource(
            name=f"cbr-{name}", flow_id=-index, path=(name,),
            generator=ConstantBitRate(cross_load * trace.mean_mbps)))
    return Topology(spec, links, cross_traffic=cross, bottleneck=f"seg{n}")


def _build_dumbbell(trace, min_rtt, buffer_bdp, random_loss_rate, seed, n, cross_load,
                    stochastic_loss):
    spec = "dumbbell"
    access_delay, core_delay = 0.25 * min_rtt, 0.5 * min_rtt
    src = Link.build("access-src", trace.scaled(DUMBBELL_ACCESS_SCALE, name=f"{trace.name}-src"),
                     delay=access_delay, buffer_rtt=min_rtt, buffer_bdp=buffer_bdp,
                     seed=_hop_seed(seed, spec, trace.name, "access-src"))
    core = Link.build("bottleneck", trace, delay=core_delay, buffer_rtt=min_rtt,
                      buffer_bdp=buffer_bdp, random_loss_rate=random_loss_rate,
                      stochastic_loss=stochastic_loss,
                      seed=_hop_seed(seed, spec, trace.name, "bottleneck"))
    dst = Link.build("access-dst", trace.scaled(DUMBBELL_ACCESS_SCALE, name=f"{trace.name}-dst"),
                     delay=access_delay, buffer_rtt=min_rtt, buffer_bdp=buffer_bdp,
                     seed=_hop_seed(seed, spec, trace.name, "access-dst"))
    # The burst phase comes from a seed-derived RNG so different cells see
    # decorrelated (but individually reproducible) bursts.  The on-rate is
    # scaled by the trace's *minimum* capacity so an unresponsive burst can
    # pressure — but never single-handedly saturate — the bottleneck during
    # capacity valleys of variable traces.
    on_seconds, off_seconds = 1.0, 1.0
    rng = np.random.default_rng(_hop_seed(seed, spec, trace.name, "cross"))
    burst = OnOff(cross_load * trace.min_mbps * 2.0,
                  on_seconds=on_seconds, off_seconds=off_seconds,
                  phase=float(rng.uniform(0.0, on_seconds + off_seconds)))
    cross = [CrossTrafficSource(name="onoff-core", flow_id=-1, path=("bottleneck",),
                                generator=burst)]
    return Topology(spec, [src, core, dst], cross_traffic=cross, bottleneck="bottleneck")


def _build_fan_in(trace, min_rtt, buffer_bdp, random_loss_rate, seed, n, cross_load,
                  stochastic_loss):
    spec = f"fan_in({n})"
    leaf_delay = root_delay = 0.5 * min_rtt
    links = []
    cycle = []
    for index in range(1, n + 1):
        name = f"leaf{index}"
        leaf_trace = trace.scaled(ACCESS_HEADROOM, name=f"{trace.name}-{name}")
        links.append(Link.build(name, leaf_trace, delay=leaf_delay, buffer_rtt=min_rtt,
                                buffer_bdp=buffer_bdp, stochastic_loss=stochastic_loss,
                                seed=_hop_seed(seed, spec, trace.name, name)))
        cycle.append((name, "bottleneck"))
    links.append(Link.build("bottleneck", trace, delay=root_delay, buffer_rtt=min_rtt,
                            buffer_bdp=buffer_bdp, random_loss_rate=random_loss_rate,
                            stochastic_loss=stochastic_loss,
                            seed=_hop_seed(seed, spec, trace.name, "bottleneck")))
    return Topology(spec, links, route_cycle=cycle, bottleneck="bottleneck")


def _build_tree(trace, min_rtt, buffer_bdp, random_loss_rate, seed, n, cross_load,
                stochastic_loss):
    spec = f"tree({n})"
    root_delay = branch_delay = 0.5 * min_rtt
    links = [Link.build("bottleneck", trace, delay=root_delay, buffer_rtt=min_rtt,
                        buffer_bdp=buffer_bdp, random_loss_rate=random_loss_rate,
                        stochastic_loss=stochastic_loss,
                        seed=_hop_seed(seed, spec, trace.name, "bottleneck"))]
    cycle = []
    for index in range(1, n + 1):
        name = f"branch{index}"
        branch_trace = trace.scaled(ACCESS_HEADROOM, name=f"{trace.name}-{name}")
        links.append(Link.build(name, branch_trace, delay=branch_delay, buffer_rtt=min_rtt,
                                buffer_bdp=buffer_bdp, stochastic_loss=stochastic_loss,
                                seed=_hop_seed(seed, spec, trace.name, name)))
        cycle.append(("bottleneck", name))
    return Topology(spec, links, route_cycle=cycle, bottleneck="bottleneck")


def _build_shared_segment(trace, min_rtt, buffer_bdp, random_loss_rate, seed, n, cross_load,
                          stochastic_loss):
    spec = "shared_segment"
    access_delay, shared_delay = 0.25 * min_rtt, 0.5 * min_rtt

    def edge(name):
        return Link.build(name, trace.scaled(ACCESS_HEADROOM, name=f"{trace.name}-{name}"),
                          delay=access_delay, buffer_rtt=min_rtt, buffer_bdp=buffer_bdp,
                          stochastic_loss=stochastic_loss,
                          seed=_hop_seed(seed, spec, trace.name, name))

    shared = Link.build("shared", trace, delay=shared_delay, buffer_rtt=min_rtt,
                        buffer_bdp=buffer_bdp, random_loss_rate=random_loss_rate,
                        stochastic_loss=stochastic_loss,
                        seed=_hop_seed(seed, spec, trace.name, "shared"))
    links = [edge("access-a"), edge("access-b"), shared, edge("exit-a"), edge("exit-b")]
    cycle = [("access-a", "shared", "exit-a"), ("access-b", "shared", "exit-b")]
    return Topology(spec, links, route_cycle=cycle, bottleneck="shared")


_BUILDERS: Dict[str, Callable[..., Topology]] = {
    "single_bottleneck": _build_single_bottleneck,
    "chain": _build_chain,
    "parking_lot": _build_parking_lot,
    "dumbbell": _build_dumbbell,
    "fan_in": _build_fan_in,
    "tree": _build_tree,
    "shared_segment": _build_shared_segment,
}


def build_topology(
    spec: str,
    trace: BandwidthTrace,
    min_rtt: float,
    buffer_bdp: float = 1.0,
    random_loss_rate: float = 0.0,
    stochastic_loss: bool = False,
    seed: int = 7,
    cross_load: float = DEFAULT_CROSS_LOAD,
) -> Topology:
    """Expand a family spec into a concrete topology around ``trace``.

    ``min_rtt`` is the end-to-end path RTT (split across hops), ``buffer_bdp``
    sizes every hop's buffer in multiples of the path BDP, and
    ``random_loss_rate`` applies at the bottleneck hop — as deterministic
    fluid thinning by default, or as seeded binomial sampling with
    ``stochastic_loss=True``.  Per-hop RNG seeds are derived from ``seed`` and
    the (spec, trace, link) coordinates via :func:`repro.seeding.derive_seed`,
    so grids sharded over a process pool reproduce bit-identically regardless
    of worker assignment.
    """
    if min_rtt <= 0:
        raise ValueError("min_rtt must be positive")
    if cross_load < 0:
        raise ValueError("cross_load must be non-negative")
    family, n = parse_topology(spec)
    return _BUILDERS[family](trace, min_rtt, buffer_bdp, random_loss_rate, seed, n, cross_load,
                             stochastic_loss)
