"""Reduce an event trace to canonical metrics rows.

:func:`summarize_events` turns the raw event stream of one cell into the
scalar columns stored in its :class:`~repro.harness.store.RunRecord` — and,
because :mod:`repro.harness.benchjson` flattens every scalar row metric, into
``BENCH_ci.json`` trajectory rows for free.  All summary keys carry the
``tele_`` prefix so traced rows stay disjoint from the physics metrics.

What is summarized (the ISSUE-7 canon):

* **Fallback episodes** — contiguous runs of vetoed decisions, delimited by
  ``fallback_enter`` / ``fallback_exit`` events: episode count, the longest
  storm's duration, and the total decision count with its minimum QC margin.
* **Per-hop queue delay** — p50/p99 of the expected queuing delay
  (``occupancy / capacity``) sampled by the stride'd ``conservation``
  snapshots, one pair of columns per hop.
* **Drop attribution** — lost packets per hop (queue + transit drops
  combined), plus the totals.
* **Churn overlap** — the time-weighted histogram of how many flows were
  simultaneously active (from ``flow_arrival`` / ``flow_departure``), with
  max/mean scalars; the full histogram stays in the row as a non-scalar
  entry (excluded from BENCH rows by construction).
* **Transit high-water** — the peak in-flight occupancy over the run.

Deterministic by construction: pure arithmetic over a deterministic event
stream, so serial == sharded == resumed summaries byte-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["summarize_events", "fallback_episodes"]


def fallback_episodes(events: Sequence[Dict], end_time: Optional[float] = None
                      ) -> List[Dict]:
    """The fallback storms of a trace: ``[{"start", "stop", "duration_s"}]``.

    An episode opens at ``fallback_enter`` and closes at the matching
    ``fallback_exit``; an episode still open when the trace ends closes at
    ``end_time`` (default: the last event's timestamp).
    """
    episodes: List[Dict] = []
    open_start: Optional[float] = None
    last_t = 0.0
    for event in events:
        last_t = max(last_t, float(event["t"]))
        if event["kind"] == "fallback_enter" and open_start is None:
            open_start = float(event["t"])
        elif event["kind"] == "fallback_exit" and open_start is not None:
            episodes.append({"start": open_start, "stop": float(event["t"]),
                             "duration_s": float(event["t"]) - open_start})
            open_start = None
    if open_start is not None:
        stop = end_time if end_time is not None else last_t
        episodes.append({"start": open_start, "stop": stop,
                         "duration_s": max(0.0, stop - open_start)})
    return episodes


def _overlap_histogram(events: Sequence[Dict], end_time: float) -> Dict[int, float]:
    """Seconds spent at each simultaneous-flow count (churn overlap)."""
    transitions = [(float(e["t"]), 1 if e["kind"] == "flow_arrival" else -1)
                   for e in events
                   if e["kind"] in ("flow_arrival", "flow_departure")]
    histogram: Dict[int, float] = {}
    active = 0
    cursor = 0.0
    for t, delta in transitions:  # already in emission (= time) order
        if t > cursor:
            histogram[active] = histogram.get(active, 0.0) + (t - cursor)
            cursor = t
        active += delta
    if end_time > cursor:
        histogram[active] = histogram.get(active, 0.0) + (end_time - cursor)
    return histogram


def summarize_events(events: Sequence[Dict], duration: Optional[float] = None
                     ) -> Dict[str, object]:
    """Reduce one cell's event stream to its canonical ``tele_*`` row entries."""
    end_time = float(duration) if duration is not None else (
        max((float(e["t"]) for e in events), default=0.0))
    row: Dict[str, object] = {"tele_n_events": len(events)}

    # Fallback storms -------------------------------------------------- #
    episodes = fallback_episodes(events, end_time=end_time)
    decisions = [e for e in events if e["kind"] == "qc_decision"]
    row["tele_fallback_episodes"] = len(episodes)
    row["tele_fallback_longest_s"] = (
        max(ep["duration_s"] for ep in episodes) if episodes else 0.0)
    if decisions:
        row["tele_qc_decisions"] = len(decisions)
        row["tele_qc_margin_min"] = min(float(e["margin"]) for e in decisions)

    # Per-hop queue delay from conservation snapshots ------------------- #
    snapshots = [e for e in events if e["kind"] == "conservation"]
    delays: Dict[str, List[float]] = {}
    for snap in snapshots:
        caps = snap.get("caps", {})
        for hop, occupancy in snap.get("hops", {}).items():
            capacity = float(caps.get(hop, 0.0))
            delays.setdefault(hop, []).append(
                float(occupancy) / capacity if capacity > 0 else 0.0)
    for hop in sorted(delays):
        samples = np.asarray(delays[hop], dtype=np.float64)
        row[f"tele_queue_p50_ms_{hop}"] = float(np.percentile(samples, 50)) * 1e3
        row[f"tele_queue_p99_ms_{hop}"] = float(np.percentile(samples, 99)) * 1e3

    # Drop attribution by hop ------------------------------------------ #
    drops: Dict[str, float] = {}
    drop_events = 0
    for event in events:
        if event["kind"] in ("queue_drop", "transit_drop"):
            drop_events += 1
            drops[event["hop"]] = drops.get(event["hop"], 0.0) + float(event["packets"])
    row["tele_drop_events"] = drop_events
    row["tele_dropped_packets"] = float(sum(drops.values()))
    for hop in sorted(drops):
        row[f"tele_drops_{hop}"] = drops[hop]

    # Churn overlap ---------------------------------------------------- #
    histogram = _overlap_histogram(events, end_time)
    if histogram:
        total = sum(histogram.values())
        row["tele_churn_max_overlap"] = max(histogram)
        row["tele_churn_mean_overlap"] = (
            sum(level * seconds for level, seconds in histogram.items()) / total
            if total > 0 else 0.0)
        # The full histogram is a dict — a non-scalar row entry, kept in the
        # RunRecord but (by construction) excluded from BENCH_ci.json rows.
        row["tele_churn_overlap_hist"] = {str(level): histogram[level]
                                          for level in sorted(histogram)}

    # Transit high-water ----------------------------------------------- #
    marks = [float(e["packets"]) for e in events if e["kind"] == "transit_high_water"]
    if marks:
        row["tele_transit_high_water"] = max(marks)
    return row
