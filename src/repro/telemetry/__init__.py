"""Structured simulation telemetry: events, logging, summaries, profiling.

The observability spine of the reproduction (ISSUE 7), in four layers:

* :mod:`repro.telemetry.events` — the :class:`EventTrace` recorder: schema'd,
  sim-time-stamped, append-only event records emitted from the hot seams
  (simulator conservation/drops, QC monitor decisions and fallback storms,
  workload arrivals/departures, transit high-water marks).  No wall clock,
  so serial == sharded == resumed traces are byte-identical.
* :mod:`repro.telemetry.summary` — reduces a trace to canonical ``tele_*``
  metric rows (fallback episodes, per-hop queue-delay percentiles, drop
  attribution, churn overlap) stored in each RunRecord and folded into
  ``BENCH_ci.json``.
* :mod:`repro.telemetry.profiler` — wall-clock per-phase tick timing
  (:class:`TickProfiler`), reported separately from sim events so the
  determinism guarantees are untouched.
* :mod:`repro.telemetry.log` — the structured ``repro`` logger and the one
  sanctioned :func:`~repro.telemetry.log.console` emitter behind the CLI
  (ruff bans bare ``print`` everywhere else in ``src/repro/``).

Enablement rides on ``EvaluationSettings.telemetry`` (``off`` | ``on`` |
``on(stride)``); disabled telemetry is the default and keeps every hot path
and every existing store key bit-identical.
"""

from repro.telemetry.events import (
    DEFAULT_STRIDE,
    DEFAULT_TELEMETRY,
    EVENT_KINDS,
    EVENT_SCHEMA,
    EventTrace,
    TelemetryConfig,
    canonical_telemetry,
    parse_telemetry,
    validate_events,
)
from repro.telemetry.profiler import (
    TICK_PHASES,
    TickProfiler,
    activate_profiler,
    active_profiler,
    deactivate_profiler,
)
from repro.telemetry.render import EVENT_GROUPS, render_summary, render_timeline
from repro.telemetry.summary import fallback_episodes, summarize_events

__all__ = [
    "DEFAULT_STRIDE",
    "DEFAULT_TELEMETRY",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "EVENT_GROUPS",
    "EventTrace",
    "TelemetryConfig",
    "TICK_PHASES",
    "TickProfiler",
    "activate_profiler",
    "active_profiler",
    "deactivate_profiler",
    "canonical_telemetry",
    "parse_telemetry",
    "validate_events",
    "fallback_episodes",
    "summarize_events",
    "render_summary",
    "render_timeline",
]
