"""The :class:`EventTrace` recorder: schema'd, sim-time-stamped event records.

Telemetry events are plain dicts — ``{"t": <sim seconds>, "kind": <name>,
...fields}`` — appended in emission order.  Two properties make them safe to
store next to metrics rows and to compare across execution modes:

* **No wall clock.**  Every timestamp is simulation time, advanced by the
  :class:`~repro.cc.netsim.NetworkSimulator` via :meth:`EventTrace.advance`,
  and emission order is fixed by the simulator's deterministic tick loop — so
  serial, sharded, and interrupted-then-resumed runs of the same cell produce
  *byte-identical* traces (pinned by ``tests/test_telemetry.py``).  Wall-clock
  timing lives in :class:`repro.telemetry.profiler.TickProfiler`, reported
  separately so determinism is untouched.
* **Schema'd.**  Every event validates against :data:`EVENT_SCHEMA` plus the
  per-kind required fields of :data:`EVENT_KINDS`; CI round-trips traced run
  stores through :func:`validate_events`.

Enablement is a settings string (``EvaluationSettings.telemetry``), following
the topology/workload spec-grammar convention:

* ``off`` — no trace is built; the simulator hot path sees ``None`` and pays
  only a handful of ``is not None`` checks per tick (zero-overhead-when-
  disabled, pinned by the chain(3) tick-rate bench).
* ``on`` — record events, conservation snapshots every
  :data:`DEFAULT_STRIDE` ticks.
* ``on(N)`` — conservation snapshots every ``N`` ticks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = [
    "DEFAULT_STRIDE",
    "DEFAULT_TELEMETRY",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "TelemetryConfig",
    "EventTrace",
    "parse_telemetry",
    "canonical_telemetry",
    "validate_events",
]

#: Conservation snapshots default to one every this many ticks.
DEFAULT_STRIDE = 25

#: The settings value meaning "no telemetry" (the only value whose cells keep
#: their pre-telemetry store keys — see ``ExperimentTask.cell_key``).
DEFAULT_TELEMETRY = "off"

#: Event kind → the fields every event of that kind must carry (beyond the
#: universal ``t``/``kind``).  The vocabulary every emitter draws from; an
#: unknown kind raises at emit time, not at mining time.
EVENT_KINDS: Dict[str, tuple] = {
    # One per simulator, at attach time: the hop graph a renderer needs.
    "topology": ("name", "hops", "bottleneck"),
    # NetworkSimulator, every `stride` ticks: per-hop queue occupancy and
    # capacity (pps), in-transit total, lifetime sent/acked/lost sums.
    "conservation": ("hops", "caps", "transit", "sent", "acked", "lost"),
    # NetworkSimulator: packets lost entering a hop's FIFO (tail drop or
    # random loss), attributed to the hop and the offering flow.
    "queue_drop": ("hop", "flow", "packets"),
    # NetworkSimulator: packets lost entering a *downstream* hop out of the
    # transit stage (the loss notification travels back from `hop`).
    "transit_drop": ("hop", "flow", "packets"),
    # NetworkSimulator: a flow's lifetime window opened / closed this tick.
    "flow_arrival": ("flow",),
    "flow_departure": ("flow",),
    # QCRuntimeMonitor, per decision: QC value and its margin to threshold.
    "qc_decision": ("qc", "margin", "allowed"),
    # QCRuntimeMonitor: the allow→veto / veto→allow transitions bounding a
    # fallback episode (a "fallback storm" when sustained).
    "fallback_enter": ("qc",),
    "fallback_exit": ("qc",),
    # TransitQueue: a new in-flight occupancy high-water mark towards a hop.
    "transit_high_water": ("hop", "packets"),
}

#: Field-level schema (validated with repro.harness.store.validate_schema).
#: Every field any kind can carry is typed here; per-kind required fields come
#: from EVENT_KINDS.
EVENT_SCHEMA = {
    "type": "object",
    "required": ["t", "kind"],
    "properties": {
        "t": {"type": "number"},
        "kind": {"type": "string", "minLength": 1},
        "name": {"type": "string"},
        "hops": {"type": ["object", "array"]},
        "caps": {"type": "object", "values": {"type": "number"}},
        "bottleneck": {"type": "string"},
        "hop": {"type": "string", "minLength": 1},
        "flow": {"type": "integer"},
        "packets": {"type": "number"},
        "transit": {"type": "number"},
        "sent": {"type": "number"},
        "acked": {"type": "number"},
        "lost": {"type": "number"},
        "pending": {"type": "number"},
        "qc": {"type": "number"},
        "margin": {"type": "number"},
        "allowed": {"type": "boolean"},
    },
}


@dataclass(frozen=True)
class TelemetryConfig:
    """Parsed telemetry settings (the ``on`` / ``on(N)`` grammar)."""

    stride: int = DEFAULT_STRIDE

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError("telemetry stride must be >= 1")

    def spec(self) -> str:
        """The canonical spec string this config round-trips to."""
        return "on" if self.stride == DEFAULT_STRIDE else f"on({self.stride})"


def parse_telemetry(spec: str) -> Optional[TelemetryConfig]:
    """Parse a telemetry spec; ``None`` means disabled.

    Grammar: ``off`` | ``on`` | ``on(N)`` with N the conservation-snapshot
    stride in ticks.  Raises ``ValueError`` on anything else — settings
    validation fails fast, like topology/workload specs.
    """
    text = str(spec).strip().lower()
    if text == DEFAULT_TELEMETRY:
        return None
    if text == "on":
        return TelemetryConfig()
    if text.startswith("on(") and text.endswith(")"):
        body = text[3:-1].strip()
        try:
            return TelemetryConfig(stride=int(body))
        except ValueError as exc:
            raise ValueError(f"malformed telemetry stride {body!r} in {spec!r}") from exc
    raise ValueError(f"malformed telemetry spec {spec!r}; "
                     f"expected 'off', 'on', or 'on(stride)'")


def canonical_telemetry(spec: str) -> str:
    """One spelling per telemetry spec (``ON( 25 )`` → ``on``)."""
    config = parse_telemetry(spec)
    return DEFAULT_TELEMETRY if config is None else config.spec()


def validate_events(events: Sequence[Dict]) -> None:
    """Check a sequence of event dicts; raise ``ValueError`` on drift.

    Validates the field schema, the kind vocabulary, the per-kind required
    fields, and that sim timestamps never run backwards (append-only order).
    """
    # Imported here, not at module top: the harness imports telemetry from its
    # hot seams, so a module-level harness import would cycle.
    from repro.harness.store import validate_schema

    last_t = float("-inf")
    for index, event in enumerate(events):
        path = f"$.events[{index}]"
        validate_schema(event, EVENT_SCHEMA, path)
        kind = event["kind"]
        if kind not in EVENT_KINDS:
            raise ValueError(f"{path}: unknown event kind {kind!r}; "
                             f"known: {sorted(EVENT_KINDS)}")
        missing = [name for name in EVENT_KINDS[kind] if name not in event]
        if missing:
            raise ValueError(f"{path}: {kind} event missing field(s) {missing}")
        if event["t"] + 1e-9 < last_t:
            raise ValueError(f"{path}: timestamp {event['t']} runs backwards "
                             f"(previous {last_t})")
        last_t = max(last_t, float(event["t"]))


class EventTrace:
    """Append-only recorder of structured simulation events.

    One instance is shared by every emitter of a run — the simulator advances
    :attr:`now` each tick, so emitters without their own clock (the QC
    monitor, the transit queue) stamp events with the current tick time.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.events: List[Dict] = []
        #: Current simulation time; emitters stamp events with this unless
        #: they pass an explicit ``t``.
        self.now = 0.0

    @classmethod
    def from_spec(cls, spec: str) -> Optional["EventTrace"]:
        """A trace for the spec, or ``None`` when telemetry is ``off``."""
        config = parse_telemetry(spec)
        return None if config is None else cls(config)

    # ------------------------------------------------------------------ #
    @property
    def stride(self) -> int:
        return self.config.stride

    def advance(self, now: float) -> None:
        """Move the trace clock to ``now`` (called by the simulator per tick)."""
        self.now = now

    def emit(self, kind: str, t: Optional[float] = None, **fields) -> None:
        """Append one event, stamped with the current (or given) sim time."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; known: {sorted(EVENT_KINDS)}")
        event: Dict = {"t": float(self.now if t is None else t), "kind": kind}
        event.update(fields)
        self.events.append(event)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self.events)

    def select(self, kinds: Sequence[str]) -> List[Dict]:
        """Events whose kind is in ``kinds``, in emission order."""
        wanted = set(kinds)
        return [event for event in self.events if event["kind"] in wanted]

    def validate(self) -> None:
        validate_events(self.events)

    def to_json(self) -> List[Dict]:
        """The events as a JSON-ready list (stored in the metrics row)."""
        return list(self.events)
