"""Structured logging for ``repro``: one sanctioned emitter, leveled and lean.

Two output channels, deliberately distinct:

* :func:`console` — the *deliverable* of a CLI command (result tables, store
  paths, validation verdicts).  Always printed to stdout; CI greps it.  This
  module is the only file in ``src/repro/`` allowed to call ``print`` (ruff's
  ``T201`` ban, see ``ruff.toml``) — everything user-facing funnels through
  here.
* :func:`warn` / :func:`info` / :func:`debug` — structured diagnostics on the
  ``repro`` logger hierarchy.  Messages are privacy-lean ``event key=value``
  lines (no free-form payloads), so fleet-scale log mining stays tractable.
  The CLI's ``--quiet`` / ``--verbose`` flags set the level via
  :func:`configure`; library users attach their own handlers as usual.

Replaces the ad-hoc ``print`` / ``warnings.warn`` emissions that used to live
in the hot paths (e.g. the Poisson arrival-cap truncation warning in
:mod:`repro.workload.arrivals`).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure", "console",
           "warn", "info", "debug", "format_event"]

ROOT_LOGGER_NAME = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro`` logger, or a child of it (``get_logger("workload")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def format_event(event: str, **fields) -> str:
    """Render one structured log line: ``event key=value key=value ...``.

    Values are formatted compactly (floats via ``%g``); field order follows
    the call site, so related emissions stay visually aligned.
    """
    parts = [event]
    for key, value in fields.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _log(level: int, event: str, logger: Optional[str], fields: dict) -> None:
    get_logger(logger or "").log(level, format_event(event, **fields))


def warn(event: str, logger: Optional[str] = None, **fields) -> None:
    """A structured WARNING — surfaced by default (and under ``--quiet``
    only if it escalates to ERROR; truncations and fallbacks belong here)."""
    _log(logging.WARNING, event, logger, fields)


def info(event: str, logger: Optional[str] = None, **fields) -> None:
    """A structured INFO line — surfaced under ``--verbose``."""
    _log(logging.INFO, event, logger, fields)


def debug(event: str, logger: Optional[str] = None, **fields) -> None:
    """A structured DEBUG line — surfaced under ``-vv`` / double verbose."""
    _log(logging.DEBUG, event, logger, fields)


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install a stderr handler on the ``repro`` logger at the given level.

    ``verbosity``: ``-1`` (``--quiet``) → ERROR, ``0`` → WARNING (default),
    ``1`` (``--verbose``) → INFO, ``>= 2`` → DEBUG.  Re-configuring replaces
    the previously installed handler (idempotent across CLI invocations in
    one process, e.g. the test suite).
    """
    level = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}.get(
        max(-1, min(verbosity, 2)), logging.DEBUG)
    logger = get_logger()
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_installed", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    handler._repro_installed = True
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger


def console(message: str = "") -> None:
    """Print one line of CLI deliverable output to stdout.

    Unconditional by design: command output (tables, paths, verdicts) is the
    command's contract — ``--quiet`` silences diagnostics, not results.
    """
    print(message)  # noqa: T201 — the one sanctioned print in src/repro/
