"""Plain-text rendering of event traces: per-cell timelines and summaries.

The display layer behind ``python -m repro trace <store>``: a fixed-width
timeline lane per event group (fallback storms, drops, flow churn, transit
marks) over the run's time axis, plus the ``tele_*`` summary metrics of the
cell.  Pure string building — no I/O — so the CLI and tests share it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.summary import fallback_episodes

__all__ = ["EVENT_GROUPS", "resolve_groups", "render_timeline", "render_summary"]

#: Friendly ``--events`` group name → the event kinds it selects.
EVENT_GROUPS: Dict[str, tuple] = {
    "fallback": ("qc_decision", "fallback_enter", "fallback_exit"),
    "drop": ("queue_drop", "transit_drop"),
    "flow": ("flow_arrival", "flow_departure"),
    "conservation": ("conservation",),
    "transit": ("transit_high_water",),
}

#: Density ramp for bucketed event counts (index ~ log2 of the count).
_RAMP = " .:-=+*#%@"


def resolve_groups(names: Sequence[str]) -> List[str]:
    """Validate ``--events`` group names (raises listing the valid ones)."""
    unknown = sorted(set(names) - set(EVENT_GROUPS))
    if unknown:
        raise ValueError(f"unknown event group(s) {unknown}; "
                         f"known: {sorted(EVENT_GROUPS)}")
    return [name for name in EVENT_GROUPS if name in set(names)]


def _density_lane(times: Sequence[float], t_end: float, width: int) -> str:
    counts = [0] * width
    for t in times:
        index = min(int(t / t_end * width), width - 1) if t_end > 0 else 0
        counts[index] += 1
    lane = []
    for count in counts:
        level = 0
        while count >> level and level < len(_RAMP) - 1:
            level += 1
        lane.append(_RAMP[level])
    return "".join(lane)


def _fallback_lane(events: Sequence[Dict], t_end: float, width: int) -> str:
    """``#`` while a fallback storm is open, ``.`` where decisions ran clean."""
    lane = [" "] * width

    def bucket(t: float) -> int:
        return min(int(t / t_end * width), width - 1) if t_end > 0 else 0

    for event in events:
        if event["kind"] == "qc_decision":
            index = bucket(float(event["t"]))
            if lane[index] == " ":
                lane[index] = "."
    for episode in fallback_episodes(list(events), end_time=t_end):
        for index in range(bucket(episode["start"]), bucket(episode["stop"]) + 1):
            lane[index] = "#"
    return "".join(lane)


def render_timeline(events: Sequence[Dict], duration: Optional[float] = None,
                    width: int = 64, groups: Optional[Sequence[str]] = None) -> str:
    """Render one cell's events as fixed-width lanes over the time axis.

    ``groups`` restricts the lanes (``--events fallback,drop``); by default
    every group with at least one event gets a lane.  The fallback lane marks
    open storms with ``#`` and clean decisions with ``.``; other lanes use a
    density ramp over per-bucket event counts.
    """
    selected = resolve_groups(groups) if groups is not None else list(EVENT_GROUPS)
    t_end = float(duration) if duration is not None else (
        max((float(e["t"]) for e in events), default=0.0))
    if t_end <= 0:
        t_end = 1.0
    label_width = max(len(name) for name in EVENT_GROUPS)
    lines = []
    for name in selected:
        of_group = [e for e in events if e["kind"] in EVENT_GROUPS[name]]
        if not of_group and groups is None:
            continue
        if name == "fallback":
            lane = _fallback_lane(of_group, t_end, width)
        else:
            lane = _density_lane([float(e["t"]) for e in of_group], t_end, width)
        lines.append(f"{name.rjust(label_width)} |{lane}| {len(of_group)} events")
    axis = f"{'t'.rjust(label_width)} |{'-' * width}| 0 .. {t_end:g}s"
    lines.append(axis)
    return "\n".join(lines)


def render_summary(row: Dict) -> str:
    """The ``tele_*`` summary entries of a row, one aligned line each."""
    entries = {key: value for key, value in sorted(row.items())
               if key.startswith("tele_")}
    if not entries:
        return "(no telemetry summary in row)"
    key_width = max(len(key) for key in entries)
    lines = []
    for key, value in entries.items():
        rendered = f"{value:g}" if isinstance(value, float) else f"{value}"
        lines.append(f"{key.ljust(key_width)}  {rendered}")
    return "\n".join(lines)
