"""Wall-clock per-phase tick timing, reported separately from sim events.

:class:`TickProfiler` answers "where does a tick's wall-clock go?" — cross
traffic injection, sender enqueue, transit arrivals, hop draining, ack/event
processing — without touching the deterministic event trace: profiler numbers
are wall-clock (``time.perf_counter``), so they never enter rows that must be
byte-identical across serial/sharded/resumed runs.  The consumer is the
benchmark layer (``benchmarks/bench_topology_sweep.py`` reports the traced
vs. untraced tick rate and its phase split).

Usage (what :meth:`NetworkSimulator.tick <repro.cc.netsim.NetworkSimulator.tick>`
does when a profiler is attached)::

    profiler.begin()          # tick starts
    ...inject phase...
    profiler.mark("inject")   # charge elapsed-since-last-mark to "inject"
    ...enqueue phase...
    profiler.mark("enqueue")
    ...
    profiler.add("transit", seconds)   # explicit charge inside a loop
    profiler.finish()         # tick done

The phase vocabulary is fixed (:data:`TICK_PHASES`) so reports line up across
runs and machines.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

__all__ = [
    "TICK_PHASES",
    "TickProfiler",
    "activate_profiler",
    "active_profiler",
    "deactivate_profiler",
]

#: The per-tick phases of the simulator hot path, in execution order.
TICK_PHASES = ("inject", "enqueue", "transit", "drain", "acks")


class TickProfiler:
    """Accumulates wall-clock seconds per simulator tick phase."""

    def __init__(self) -> None:
        self.phase_seconds: Dict[str, float] = {phase: 0.0 for phase in TICK_PHASES}
        self.ticks = 0
        self.total_seconds = 0.0
        self._tick_start = 0.0
        self._last_mark = 0.0

    # ------------------------------------------------------------------ #
    def begin(self) -> None:
        """Start timing one tick."""
        self._tick_start = self._last_mark = perf_counter()

    def mark(self, phase: str) -> None:
        """Charge the wall-clock since the previous mark to ``phase``."""
        now = perf_counter()
        self.phase_seconds[phase] += now - self._last_mark
        self._last_mark = now

    def add(self, phase: str, seconds: float) -> None:
        """Explicitly charge ``seconds`` to ``phase`` (inner-loop timing).

        The charged span is *excluded* from the next :meth:`mark`'s window by
        shifting the mark origin, so a span timed inside a phase is not
        double-counted by the surrounding mark.
        """
        self.phase_seconds[phase] += seconds
        self._last_mark += seconds

    def finish(self) -> None:
        """End one tick (counts it and its total wall-clock)."""
        self.ticks += 1
        self.total_seconds += perf_counter() - self._tick_start

    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, float]:
        """Per-phase seconds/fractions plus tick throughput, one flat dict."""
        report: Dict[str, float] = {
            "ticks": float(self.ticks),
            "total_seconds": self.total_seconds,
            "ticks_per_sec": (self.ticks / self.total_seconds
                              if self.total_seconds > 0 else 0.0),
        }
        charged = sum(self.phase_seconds.values())
        for phase in TICK_PHASES:
            seconds = self.phase_seconds[phase]
            report[f"{phase}_s"] = seconds
            report[f"{phase}_frac"] = seconds / charged if charged > 0 else 0.0
        return report


# ---------------------------------------------------------------------- #
# The process-wide active profiler
# ---------------------------------------------------------------------- #
# The evaluation layer sits many call frames above simulator construction, so
# threading a profiler argument through every path would touch each driver.
# Instead the harness activates one profiler per process (serve workers and
# --profile pool workers do this right after fork) and
# :func:`~repro.harness.evaluate.run_scheme_on_trace` attaches whatever is
# active to each simulator it builds.  Profiler numbers stay wall-clock-only
# observability: activating one never changes rows or cell keys.
_ACTIVE_PROFILER: Optional[TickProfiler] = None


def activate_profiler(profiler: TickProfiler) -> TickProfiler:
    """Make ``profiler`` the process-wide profiler new simulators attach to."""
    global _ACTIVE_PROFILER
    _ACTIVE_PROFILER = profiler
    return profiler


def deactivate_profiler() -> None:
    """Clear the process-wide profiler (new simulators run unprofiled)."""
    global _ACTIVE_PROFILER
    _ACTIVE_PROFILER = None


def active_profiler() -> Optional[TickProfiler]:
    """The process-wide profiler, or ``None`` when profiling is off."""
    return _ACTIVE_PROFILER
