"""Fleet-scale experiment serving: lease-based scheduling over the run store.

The package grows :class:`~repro.harness.store.RunStore` + the experiment
registry from a single-machine process pool into a small serving system:

* :mod:`repro.serve.lease` — cell leases with heartbeat-renewed TTLs, the
  in-flight dedupe table, and the append-only ``leases.jsonl`` journal;
* :mod:`repro.serve.worker` — the disposable worker process (compute a
  leased cell, heartbeat while doing so, hand the row back; never writes);
* :mod:`repro.serve.daemon` — the scheduler that owns the store, leases
  cells, reclaims them from dead/wedged workers, respawns the fleet, and
  streams completed records to disk;
* :mod:`repro.serve.status` — `python -m repro status <store>`, replayed
  from the journal while the daemon runs.

Entry points: ``python -m repro serve <experiment> --store DIR --workers N``
and :func:`repro.serve.daemon.serve_experiment`.
"""

from repro.serve.daemon import serve_experiment
from repro.serve.lease import LEASES_FILENAME, Lease, LeaseJournal, LeaseTable
from repro.serve.status import format_status, read_status

__all__ = [
    "LEASES_FILENAME",
    "Lease",
    "LeaseJournal",
    "LeaseTable",
    "format_status",
    "read_status",
    "serve_experiment",
]
