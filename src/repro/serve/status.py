"""Live serve status, replayed from the on-disk lease journal.

``python -m repro status <store>`` works *while the daemon runs* and needs no
channel to it: the daemon appends every lease transition to ``leases.jsonl``
(see :mod:`repro.serve.lease`), so any process can replay the journal into a
point-in-time view — leased / completed / failed cells, worker liveness
(heartbeat recency), reclaim count, and throughput.  A torn trailing line
(the daemon is mid-append right now) is simply ignored.

The journal may span several daemon sessions against the same store (serve,
crash, serve again): replay resets at each ``serve_start``, so the status
always describes the most recent session.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional

from repro.serve.lease import LEASES_FILENAME, LeaseJournal

__all__ = ["read_status", "format_status"]


def read_status(store_path: str | Path, now: Optional[float] = None) -> Dict:
    """Replay a store's lease journal into a status dict.

    Raises ``FileNotFoundError`` when the store has no journal (nothing was
    ever served into it).
    """
    store_path = Path(store_path)
    journal = LeaseJournal(store_path)
    if not journal.path.exists():
        raise FileNotFoundError(
            f"{store_path / LEASES_FILENAME}: no lease journal — "
            f"nothing has been served into this store")
    now = time.time() if now is None else now

    status: Dict = {}
    workers: Dict[str, Dict] = {}
    leased: Dict[str, str] = {}
    completed = 0
    failed = 0
    reclaims = 0
    stale = 0
    started_t: Optional[float] = None
    last_t: Optional[float] = None
    done_event: Optional[Dict] = None

    for event in journal.read():
        kind = event.get("event")
        t = event.get("t")
        if kind == "serve_start":
            # A fresh daemon session: status describes the latest one.
            workers, leased = {}, {}
            completed = failed = reclaims = stale = 0
            started_t, done_event = t, None
            status = {"experiment": event.get("experiment"),
                      "cells": event.get("cells"),
                      "cached": event.get("cached"),
                      "pending": event.get("pending"),
                      "fleet_size": event.get("workers"),
                      "ttl_s": event.get("ttl_s"),
                      "pid": event.get("pid")}
            continue
        last_t = t if t is not None else last_t
        worker = event.get("worker")
        if worker:
            state = workers.setdefault(worker, {"alive": True, "pid": None,
                                                "last_seen": t, "leased": None})
            state["last_seen"] = t
        if kind == "worker_spawn":
            workers[worker]["pid"] = event.get("pid")
        elif kind == "worker_dead":
            workers[worker]["alive"] = False
            workers[worker]["leased"] = None
        elif kind == "lease":
            leased[event["key"]] = worker
            workers[worker]["leased"] = event["key"]
        elif kind == "complete":
            leased.pop(event["key"], None)
            completed += 1
            if worker in workers:
                workers[worker]["leased"] = None
        elif kind == "failed":
            leased.pop(event["key"], None)
            failed += 1
            if worker in workers:
                workers[worker]["leased"] = None
        elif kind == "reclaim":
            leased.pop(event["key"], None)
            reclaims += 1
            if worker in workers:
                workers[worker]["leased"] = None
        elif kind == "stale_result":
            stale += 1
        elif kind == "serve_done":
            done_event = event

    total = status.get("cells") or 0
    cached = status.get("cached") or 0
    outstanding = max(total - cached - completed - failed - len(leased), 0)
    elapsed = (last_t - started_t) if (started_t is not None and
                                       last_t is not None) else 0.0
    if done_event is not None and done_event.get("wall_clock_s") is not None:
        elapsed = done_event["wall_clock_s"]
    status.update({
        "running": done_event is None,
        "completed": completed,
        "failed": failed,
        "leased": dict(leased),
        "outstanding": outstanding,
        "reclaims": reclaims,
        "stale_results": stale,
        "elapsed_s": elapsed,
        # Guarded both ways: zero completed cells (or a sub-resolution
        # elapsed, which the journal's 3-decimal stamps can round to 0) must
        # not render a misleading rate — format_status shows "n/a" instead.
        "cells_per_sec": (completed / elapsed) if completed and elapsed
        and elapsed > 0 else 0.0,
        "workers": {name: dict(state, age_s=(now - state["last_seen"])
                               if state["last_seen"] is not None else None)
                    for name, state in workers.items()},
        "metrics_frames": _count_metric_frames(store_path),
    })
    return status


def _count_metric_frames(store_path: Path) -> int:
    """Frames in the store's metrics stream (0 when metrics were off).

    Reads through the shared torn-tail-tolerant parser, so a status poll
    mid-append never trips over a half-written frame — the same tolerance
    ``leases.jsonl`` and ``records.jsonl`` get.
    """
    # Local import: status stays usable without the obs plane on the path.
    from repro.obs.metrics import MetricsJournal

    frames = MetricsJournal(store_path).read()
    return sum(int(frame.get("frames", 1)) if frame.get("kind") == "rollup" else 1
               for frame in frames)


def _trim(key: str, width: int = 64) -> str:
    return key if len(key) <= width else key[: width - 1] + "…"


def format_status(status: Dict) -> str:
    """Render a status dict as the multi-line `repro status` report."""
    lines = [
        f"experiment: {status.get('experiment')} "
        f"({'running' if status.get('running') else 'done'})",
        f"cells: {status.get('cells')} total = {status.get('cached')} cached"
        f" + {status.get('completed')} completed + {len(status.get('leased', {}))}"
        f" leased + {status.get('failed')} failed + {status.get('outstanding')}"
        f" outstanding",
        f"reclaims: {status.get('reclaims')}"
        + (f" (stale results dropped: {status['stale_results']})"
           if status.get("stale_results") else ""),
        (f"throughput: {status.get('cells_per_sec', 0.0):.2f} cells/s over "
         f"{status.get('elapsed_s', 0.0):.1f}s"
         if status.get("completed") and (status.get("elapsed_s") or 0.0) > 0
         else "throughput: n/a (no completed cells yet)"),
    ]
    if status.get("metrics_frames"):
        lines.append(f"metrics: {status['metrics_frames']} frames in metrics.jsonl")
    workers = status.get("workers", {})
    if workers:
        lines.append("workers:")
        for name in sorted(workers):
            state = workers[name]
            liveness = "alive" if state.get("alive") else "dead"
            age = state.get("age_s")
            seen = f", last seen {age:.1f}s ago" if age is not None else ""
            held = state.get("leased")
            cell = f", leased: {_trim(held)}" if held else ""
            lines.append(f"  {name}: {liveness} pid={state.get('pid')}{seen}{cell}")
    for key, worker in sorted(status.get("leased", {}).items()):
        lines.append(f"in flight: {_trim(key)} @ {worker}")
    return "\n".join(lines)
