"""The serve worker process: compute leased cells, heartbeat, hand rows back.

A worker is deliberately dumb: it owns no shared state and writes no files.
It pulls ``(index, key, task)`` messages off its private task queue, computes
the row with the experiment's runner (the same module-level function the
process pool uses, so rows are byte-identical by construction), and sends the
row back to the daemon over the shared message queue.  The daemon is the only
process that touches ``records.jsonl`` and ``leases.jsonl`` — the
single-writer invariant the run store already relies on.

Liveness is proven by a daemon-thread that pings ``("heartbeat", name, key)``
every ``heartbeat_s`` seconds *while a cell is computing* — that is the whole
point of heartbeats: a worker grinding through a long cell renews its lease,
a SIGKILLed or wedged worker stops renewing and its lease is reclaimed.

With ``metrics_interval`` set the worker also streams observability: it
activates a process-wide :class:`~repro.telemetry.profiler.TickProfiler`
(every simulator the runner builds attaches to it) and a second daemon-thread
pushes cumulative :mod:`~repro.obs.metrics` frames on that interval — plus
one frame after every completed cell, so even sub-interval grids stream.
Frames ride the same message queue and the daemon journals them; nothing a
worker measures ever touches a row.

``chaos_kill_after=n`` makes the worker SIGKILL itself upon receiving its
``n``-th cell — after the lease is granted, before the row exists.  That is
the deterministic stand-in for "kill -9 a worker mid-cell" used by the CI
serve-smoke job and the recovery tests.

Message protocol (worker → daemon), all tuples ``(kind, worker, key, payload)``:

``("ready", name, None, None)``
    sent once at startup; the daemon starts leasing cells to the worker.
``("heartbeat", name, key_or_None, None)``
    periodic liveness ping carrying the currently-leased key, if any.
``("result", name, key, row)``
    one computed row; also marks the worker idle for the next lease.
``("error", name, key, message)``
    the runner raised; the cell is marked failed (a deterministic error
    would fail identically under a serial run, so it is not re-leased).
``("metrics", name, key_or_None, frame)``
    one cumulative metric frame; the daemon appends it to ``metrics.jsonl``.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Callable, Optional

__all__ = ["worker_main"]


def worker_main(name: str, runner: Callable, task_queue, message_queue,
                heartbeat_s: float = 1.0,
                chaos_kill_after: Optional[int] = None,
                metrics_interval: Optional[float] = None) -> None:
    """Run one worker until the daemon sends the ``None`` sentinel."""
    current = {"key": None}
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                message_queue.put(("heartbeat", name, current["key"], None))
            except (OSError, ValueError):  # daemon gone / queue closed
                return

    heartbeat = threading.Thread(target=_beat, name=f"{name}-heartbeat", daemon=True)
    heartbeat.start()

    sampler = None
    if metrics_interval is not None and metrics_interval > 0:
        # Local import: the worker stays importable without the obs plane.
        from repro.obs.metrics import MetricsSampler
        from repro.telemetry.profiler import TickProfiler, activate_profiler

        sampler = MetricsSampler(name, profiler=activate_profiler(TickProfiler()))

        def _push_frame() -> None:
            try:
                message_queue.put(("metrics", name, current["key"],
                                   sampler.sample(current_key=current["key"])))
            except (OSError, ValueError):  # daemon gone / queue closed
                pass

        def _sample_beat() -> None:
            while not stop.wait(metrics_interval):
                _push_frame()

        threading.Thread(target=_sample_beat, name=f"{name}-metrics",
                         daemon=True).start()

    message_queue.put(("ready", name, None, None))

    received = 0
    while True:
        item = task_queue.get()
        if item is None:
            break
        _index, key, task = item
        received += 1
        if chaos_kill_after is not None and received >= chaos_kill_after:
            # Die mid-cell: the lease is held, the row does not exist yet.
            # SIGKILL (not an exception) so no cleanup runs — exactly what a
            # kill -9 / OOM-kill looks like to the daemon.
            os.kill(os.getpid(), signal.SIGKILL)
        current["key"] = key
        try:
            row = runner(task)
        except Exception as exc:  # noqa: BLE001 - forwarded to the daemon verbatim
            message_queue.put(("error", name, key, f"{type(exc).__name__}: {exc}"))
        else:
            if sampler is not None:
                sampler.note_cell_done(row)
            message_queue.put(("result", name, key, row))
            if sampler is not None:
                _push_frame()  # a frame per cell: short grids still stream
        current["key"] = None
    stop.set()
    if sampler is not None:
        _push_frame()  # final totals before exit
