"""The lease-based experiment scheduler daemon.

``python -m repro serve <experiment> --store DIR --workers N`` expands a
registry experiment (the same :meth:`~repro.harness.registry.ExperimentRegistry.plan`
the in-process runner uses) into a work queue of cells layered on a
:class:`~repro.harness.store.RunStore`, leases cells to worker processes with
heartbeat-renewed TTLs (:mod:`repro.serve.lease`), and streams each completed
:class:`~repro.harness.store.RunRecord` into the store as it lands.

Fault model — workers are disposable, the daemon is the kernel:

* a worker that dies mid-cell (kill -9, OOM) stops heartbeating; its process
  is detected dead, its leases are **reclaimed**, the cells go back to the
  front of the queue, and a replacement worker is spawned to keep the fleet
  at ``N``;
* a worker that is alive but wedged misses its TTL; the daemon SIGKILLs it
  (a half-dead worker must not race the re-lease) and the same reclaim path
  runs;
* a cell that gets reclaimed ``max_leases`` times is marked failed rather
  than looping forever;
* a cell whose runner *raises* is a deterministic failure (it would fail
  identically under a serial run) — recorded, surfaced in ``repro status``,
  never re-leased.

Determinism contract: the daemon computes rows with the experiment's own
module-level runner, canonicalizes them through JSON exactly like
:meth:`ExperimentRegistry.run`, stores them under the same cell keys, and
aggregates through the same :meth:`ExperimentRegistry.finalize` — so
serial == pooled == served == resumed, byte-identical rows
(``benchjson --store-diff`` over a served and a serial store reports zero
differing cells, which CI enforces).

Only the daemon writes ``records.jsonl`` and ``leases.jsonl``; workers hand
rows back over a queue (the store's single-writer invariant).  The daemon
also points ``REPRO_MODEL_ZOO`` at ``<store>/zoo`` (unless already set)
before any training, so the whole fleet — including workers respawned after
a crash, and any later serial comparison run pointed at the same zoo —
shares one trained model per cache key.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from repro.harness.models import ZOO_ENV
from repro.harness.registry import REGISTRY, pretrain_models
from repro.harness.store import RunRecord, RunStore, canonical_json
from repro.serve.lease import LeaseJournal, LeaseTable
from repro.serve.worker import worker_main
from repro.telemetry import log

__all__ = ["serve_experiment"]

#: How many times a cell may be leased before it is declared failed.
DEFAULT_MAX_LEASES = 3


class _Fleet:
    """The daemon's view of its worker processes."""

    def __init__(self, ctx, messages, runner, heartbeat_s: float,
                 journal: LeaseJournal,
                 metrics_interval: Optional[float] = None):
        self._ctx = ctx
        self._messages = messages
        self._runner = runner
        self._heartbeat_s = heartbeat_s
        self._journal = journal
        self._metrics_interval = metrics_interval
        self._next_id = 0
        self.workers: Dict[str, Dict] = {}

    def spawn(self, chaos_kill_after: Optional[int] = None) -> str:
        name = f"w{self._next_id}"
        self._next_id += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(name, self._runner, task_queue, self._messages,
                  self._heartbeat_s, chaos_kill_after, self._metrics_interval),
            name=f"repro-serve-{name}",
            daemon=True,
        )
        process.start()
        self.workers[name] = {"process": process, "queue": task_queue,
                              "idle": False}
        self._journal.append("worker_spawn", worker=name, pid=process.pid,
                             chaos=chaos_kill_after)
        return name

    def dead(self) -> List[str]:
        return [name for name, state in self.workers.items()
                if not state["process"].is_alive()]

    def kill(self, name: str) -> None:
        state = self.workers.get(name)
        if state is not None and state["process"].is_alive():
            state["process"].kill()

    def remove(self, name: str) -> None:
        state = self.workers.pop(name, None)
        if state is not None:
            self._journal.append("worker_dead", worker=name,
                                 pid=state["process"].pid)

    def shutdown(self) -> None:
        for state in self.workers.values():
            try:
                state["queue"].put(None)
            except (OSError, ValueError):
                pass
        for state in self.workers.values():
            state["process"].join(timeout=2.0)
            if state["process"].is_alive():
                state["process"].kill()
                state["process"].join(timeout=2.0)


#: Default worker metric-frame sampling interval (seconds); 0/None disables.
DEFAULT_METRICS_INTERVAL = 1.0


def serve_experiment(name: str, overrides: Optional[Dict] = None,
                     store: RunStore | str | Path = None, workers: int = 2,
                     ttl_s: float = 10.0, heartbeat_s: Optional[float] = None,
                     resume: bool = True, chaos_kill: Optional[int] = None,
                     max_leases: int = DEFAULT_MAX_LEASES,
                     poll_s: float = 0.05,
                     timeout_s: Optional[float] = 900.0,
                     metrics_interval: Optional[float] = DEFAULT_METRICS_INTERVAL,
                     http_port: Optional[int] = None) -> Dict:
    """Serve one experiment grid across a crash-surviving worker fleet.

    Returns the same aggregated result dict as
    :meth:`ExperimentRegistry.run`, extended with serve accounting:
    ``served_cells``, ``reclaims``, ``workers`` and ``cells_per_sec``.

    Args:
        name: Registered experiment name.
        overrides: Axis overrides (same shapes as ``REGISTRY.run``).
        store: Run-store directory (or an open :class:`RunStore`).  Required —
            the store is the work queue's durable side.
        workers: Fleet size.  ``0`` computes cells inline in the daemon
            process (lease bookkeeping still runs; useful where fork is
            unavailable).
        ttl_s: Lease TTL; a lease not renewed for this long is reclaimed.
        heartbeat_s: Worker heartbeat period (default ``ttl_s / 4``).
        resume: Serve only cells missing from the store (default True — the
            daemon's whole point is durable incremental progress).
        chaos_kill: Fault injection — the *first* worker SIGKILLs itself upon
            receiving its ``chaos_kill``-th cell, mid-cell.  CI uses this to
            prove the reclaim path; replacement workers are spawned clean.
        max_leases: Reclaim budget per cell before it is marked failed.
        poll_s: Daemon message-loop poll interval.
        timeout_s: Overall wall-clock guard; the daemon kills the fleet and
            raises if the sweep has not completed in time (None disables).
        metrics_interval: Worker metric-frame sampling period (seconds); the
            daemon appends frames to ``metrics.jsonl`` next to the lease
            journal.  ``0``/``None`` turns the metrics stream off.  Frames
            are wall-clock observability only — rows stay byte-identical to
            a serial run either way.
        http_port: Start the observability HTTP surface (``/status``,
            ``/metrics``, ``/cells/<key>``) on this port for the duration of
            the serve (``0`` picks a free port; ``None`` disables).
    """
    if store is None:
        raise ValueError("serve_experiment requires a store directory")
    store = store if isinstance(store, RunStore) else RunStore(store)
    # One shared model zoo per store unless the caller pinned one: the parent
    # trains (publishing checkpoints), every worker — even one spawned after
    # a crash, in any process — loads instead of retraining.
    os.environ.setdefault(ZOO_ENV, str(store.path / "zoo"))

    plan = REGISTRY.plan(name, overrides)
    keys = plan.keys
    cached: Dict[str, Dict] = {}
    if resume:
        records = store.load()
        cached = {key: records[key].row for key in keys if key in records}
    pending = deque((index, task) for index, task in enumerate(plan.tasks)
                    if keys[index] not in cached)
    rows: List[Optional[Dict]] = [cached.get(key) for key in keys]
    by_key = {keys[index]: (index, task) for index, task in enumerate(plan.tasks)}

    journal = LeaseJournal(store.path)
    journal.append("serve_start", experiment=name, cells=len(plan.tasks),
                   cached=len(cached), pending=len(pending), workers=workers,
                   ttl_s=ttl_s, pid=os.getpid())
    log.info("serve_start", logger="serve", experiment=name,
             cells=len(plan.tasks), cached=len(cached), pending=len(pending),
             workers=workers)

    # Observability rides next to the lease loop, never inside the row path:
    # the metrics journal is append-only wall-clock data, and the HTTP surface
    # replays on-disk journals per request (no channel into this process).
    metrics_journal = None
    if metrics_interval is not None and metrics_interval > 0:
        from repro.obs.metrics import MetricsJournal

        metrics_journal = MetricsJournal(store.path)
    obs_server = None
    if http_port is not None:
        from repro.obs.http import ObsServer

        obs_server = ObsServer(store.path, port=http_port).start()

    if pending:
        if plan.experiment.setup is not None:
            plan.experiment.setup(plan.axes)
        pretrain_models([task for _, task in pending])

    heartbeat_s = heartbeat_s if heartbeat_s is not None else max(ttl_s / 4.0, 0.05)
    table = LeaseTable(journal, ttl_s=ttl_s)
    reclaims = 0
    start = time.perf_counter()

    def _finish_row(worker_name: str, key: str, row: Dict) -> None:
        index, task = by_key[key]
        row = canonical_json(row)
        rows[index] = row
        store.put(RunRecord.for_task(task, row, experiment=name,
                                     producer=f"serve:{worker_name}"))
        log.debug("cell_done", logger="serve", experiment=name, key=key,
                  worker=worker_name)

    def _requeue(key: str) -> None:
        nonlocal reclaims
        reclaims += 1
        if table.grants(key) >= max_leases:
            table.fail_unleased(
                key, f"lease limit reached ({max_leases} grants); cell keeps "
                     f"killing or outliving its workers")
            return
        pending.appendleft(by_key[key])

    n_to_serve = len(pending)
    try:
        if workers <= 0 or n_to_serve == 0:
            _serve_inline(plan, table, pending, keys, _finish_row,
                          metrics_journal=metrics_journal)
        else:
            _serve_fleet(plan, table, journal, pending, keys, by_key,
                         _finish_row, _requeue, workers=workers,
                         heartbeat_s=heartbeat_s, chaos_kill=chaos_kill,
                         poll_s=poll_s, timeout_s=timeout_s,
                         n_to_serve=n_to_serve,
                         metrics_journal=metrics_journal,
                         metrics_interval=metrics_interval)

        wall_clock_s = time.perf_counter() - start
        failed = table.failed
        served = len(table.completed)
        cells_per_sec = served / wall_clock_s if wall_clock_s > 0 else 0.0
        journal.append("serve_done", experiment=name, completed=served,
                       failed=len(failed), reclaims=reclaims,
                       wall_clock_s=round(wall_clock_s, 3))
        log.info("serve_done", logger="serve", experiment=name, completed=served,
                 failed=len(failed), reclaims=reclaims, wall_clock_s=wall_clock_s)
        if failed:
            details = "; ".join(f"{key}: {error}" for key, error in failed.items())
            raise RuntimeError(
                f"serve {name!r}: {len(failed)} cell(s) failed — {details}")
    finally:
        if obs_server is not None:
            obs_server.close()

    result = REGISTRY.finalize(plan, rows, wall_clock_s, n_jobs=max(workers, 1),
                               n_cached=len(cached))
    result["served_cells"] = served
    result["reclaims"] = reclaims
    result["workers"] = workers
    result["cells_per_sec"] = cells_per_sec
    result["metrics_frames"] = (metrics_journal.appended
                                if metrics_journal is not None else 0)
    result["http_port"] = obs_server.port if obs_server is not None else None
    return result


def _serve_inline(plan, table: LeaseTable, pending, keys, finish_row,
                  metrics_journal=None) -> None:
    """Inline mode: same lease bookkeeping, no processes.

    Used where fork is unavailable and for fully-cached resumes (nothing to
    serve).  With metrics on, the daemon process itself profiles and streams
    frames as the single "inline" worker.
    """
    sampler = None
    if metrics_journal is not None:
        from repro.obs.metrics import MetricsSampler
        from repro.telemetry.profiler import (TickProfiler, activate_profiler,
                                              deactivate_profiler)

        sampler = MetricsSampler("inline", profiler=activate_profiler(TickProfiler()))
    try:
        while pending:
            index, task = pending.popleft()
            key = keys[index]
            if table.grant(key, "inline") is None:
                continue
            try:
                row = plan.experiment.runner(task)
            except Exception as exc:  # noqa: BLE001 - recorded, surfaced by caller
                table.fail(key, "inline", f"{type(exc).__name__}: {exc}")
                continue
            table.complete(key, "inline")
            finish_row("inline", key, row)
            if sampler is not None:
                sampler.note_cell_done(row)
                metrics_journal.append(sampler.sample(current_key=key))
    finally:
        if sampler is not None:
            deactivate_profiler()


def _serve_fleet(plan, table: LeaseTable, journal: LeaseJournal, pending,
                 keys, by_key, finish_row, requeue, *, workers: int,
                 heartbeat_s: float, chaos_kill: Optional[int],
                 poll_s: float, timeout_s: Optional[float],
                 n_to_serve: int, metrics_journal=None,
                 metrics_interval: Optional[float] = None) -> None:
    """The daemon main loop: lease, collect, sweep, reclaim, respawn."""
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()
    messages = ctx.Queue()
    fleet = _Fleet(ctx, messages, plan.experiment.runner, heartbeat_s, journal,
                   metrics_interval=metrics_interval
                   if metrics_journal is not None else None)

    deadline = (time.monotonic() + timeout_s) if timeout_s else None
    try:
        for worker_index in range(workers):
            # Chaos is armed on the first worker only; its replacement (and
            # the rest of the fleet) run clean.
            fleet.spawn(chaos_kill_after=chaos_kill if worker_index == 0 else None)

        while len(table.completed) + len(table.failed) < n_to_serve:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"serve {plan.experiment.name!r}: fleet did not finish "
                    f"within {timeout_s}s "
                    f"({len(table.completed)}/{n_to_serve} cells done)")
            try:
                kind, worker_name, key, payload = messages.get(timeout=poll_s)
            except queue_module.Empty:
                kind = None
            if kind is not None:
                state = fleet.workers.get(worker_name)
                if kind == "ready" and state is not None:
                    state["idle"] = True
                elif kind == "heartbeat":
                    journal.append("heartbeat", worker=worker_name, key=key)
                    if key is not None:
                        table.renew(key, worker_name)
                elif kind == "result":
                    if table.complete(key, worker_name):
                        finish_row(worker_name, key, payload)
                    if state is not None:
                        state["idle"] = True
                elif kind == "error":
                    table.fail(key, worker_name, payload)
                    if state is not None:
                        state["idle"] = True
                elif kind == "metrics":
                    # The daemon is the single writer of everything in the
                    # store directory, metrics.jsonl included.
                    if metrics_journal is not None and isinstance(payload, dict):
                        metrics_journal.append(payload)

            # Reclaim leases whose worker stopped renewing (wedged or half
            # dead): SIGKILL the holder first so it cannot race the re-lease,
            # then let the death sweep below requeue and respawn.
            for lease in table.expired():
                log.warn("lease_expired", logger="serve", key=lease.key,
                         worker=lease.worker)
                fleet.kill(lease.worker)
                reclaimed = table.reclaim(lease.key, reason="expired")
                if reclaimed is not None:
                    requeue(lease.key)

            # Death sweep: reclaim a dead worker's remaining leases, requeue
            # its cells, respawn a clean replacement to keep the fleet at N.
            for worker_name in fleet.dead():
                for lease in table.release_worker(worker_name, reason="died"):
                    requeue(lease.key)
                fleet.remove(worker_name)
                if len(table.completed) + len(table.failed) + len(table.active) \
                        < n_to_serve or pending:
                    fleet.spawn()

            # Lease next cells to idle workers (dedupe enforced by the table).
            for worker_name, state in fleet.workers.items():
                if not state["idle"] or not pending:
                    continue
                index, task = pending.popleft()
                key = keys[index]
                lease = table.grant(key, worker_name)
                if lease is None:
                    continue  # completed or re-leased elsewhere meanwhile
                try:
                    state["queue"].put((index, key, task))
                except (OSError, ValueError):
                    table.reclaim(key, reason="died")
                    requeue(key)
                    continue
                state["idle"] = False
    finally:
        fleet.shutdown()
