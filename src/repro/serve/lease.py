"""Cell leases and the on-disk lease journal.

The serve daemon owns a :class:`LeaseTable`: every pending cell is *leased* to
exactly one worker at a time, the lease carries a TTL that worker heartbeats
renew, and a lease whose TTL lapses (or whose worker process dies) is
*reclaimed* so the cell can be re-leased to a healthy worker.  The table is
the in-flight dedupe: a key with an active lease cannot be granted again, and
a result arriving for a lease the worker no longer holds (it was presumed dead
and its cell re-leased) is rejected as stale — the first accepted result wins.

Every transition is appended to ``leases.jsonl`` next to the store's
``records.jsonl`` (the :class:`LeaseJournal`).  The journal is the daemon's
*live status surface*: ``python -m repro status <store>`` replays it — while
the daemon is still running, from another process — to show leased, completed
and failed cells, worker liveness, and throughput.  Journal events carry wall
clock times for humans; they are operational telemetry only and never touch
the rows, so determinism (serial == served, byte-identical) is unaffected.

Journal format: one JSON object per line, ``{"event": <type>, "t": <unix
time>, ...}``.  Event types written by the daemon:

``serve_start``/``serve_done``
    daemon lifecycle (experiment, cell counts, worker count, pid).
``worker_spawn``/``worker_dead``
    fleet membership (worker name, pid).
``lease``/``renew``/``complete``/``failed``/``reclaim``/``stale_result``
    per-cell lease lifecycle (cell key, worker, and for reclaims a reason:
    ``died`` or ``expired``).
``heartbeat``
    worker liveness pings (worker name, currently-leased key if any).

A torn trailing line (the daemon was killed mid-append) is ignored on
replay, exactly like the run store's torn-tail handling.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.harness.jsonl import parse_jsonl_tolerant

__all__ = ["LEASES_FILENAME", "Lease", "LeaseJournal", "LeaseTable"]

LEASES_FILENAME = "leases.jsonl"


class LeaseJournal:
    """Append-only journal of lease events inside a run-store directory."""

    def __init__(self, store_path: str | Path,
                 clock: Callable[[], float] = time.time):
        path = Path(store_path)
        self.path = path / LEASES_FILENAME if path.is_dir() or not path.suffix else path
        self._clock = clock

    def append(self, event: str, **fields) -> Dict:
        """Append one event line (flushed and fsynced, like store puts)."""
        payload = {"event": event, "t": round(self._clock(), 3), **fields}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return payload

    def read(self) -> List[Dict]:
        """Every well-formed event, tolerating a torn trailing line.

        Tolerance is the shared :func:`~repro.harness.jsonl.parse_jsonl_tolerant`
        rule, the same one ``records.jsonl`` and ``metrics.jsonl`` readers use.
        """
        if not self.path.exists():
            return []
        payloads, _valid_bytes, _torn = parse_jsonl_tolerant(
            self.path.read_text(), source=str(self.path), label="journal line")
        return [payload for payload in payloads
                if isinstance(payload, dict) and "event" in payload]


@dataclass
class Lease:
    """One active cell lease: who holds it and when it lapses."""

    key: str
    worker: str
    ttl_s: float
    granted_t: float
    renewed_t: float

    def expires_t(self) -> float:
        return self.renewed_t + self.ttl_s

    def expired(self, now: float) -> bool:
        return now > self.expires_t()


class LeaseTable:
    """The daemon's authoritative lease state; every transition journals.

    Expiry is measured on an injectable monotonic clock (tests drive it by
    hand); the journal stamps wall time separately.  The table enforces the
    two lease invariants:

    * **in-flight dedupe** — :meth:`grant` refuses a key that is actively
      leased or already completed, so no two workers ever compute the same
      cell concurrently;
    * **first result wins** — :meth:`complete`/:meth:`fail` accept a result
      only from the worker currently holding the lease, so a worker that was
      presumed dead (its cell reclaimed and re-leased) cannot overwrite the
      re-lease's result with a stale one.
    """

    def __init__(self, journal: Optional[LeaseJournal] = None, ttl_s: float = 10.0,
                 clock: Callable[[], float] = time.monotonic):
        self.ttl_s = float(ttl_s)
        self._journal = journal
        self._clock = clock
        self._leases: Dict[str, Lease] = {}
        self._completed: Dict[str, str] = {}   # key -> worker that finished it
        self._failed: Dict[str, str] = {}      # key -> error string
        self._grants: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def _log(self, event: str, **fields) -> None:
        if self._journal is not None:
            self._journal.append(event, **fields)

    # ------------------------------------------------------------------ #
    def grant(self, key: str, worker: str) -> Optional[Lease]:
        """Lease ``key`` to ``worker``; None if the key is leased or done."""
        if key in self._leases or key in self._completed:
            return None
        now = self._clock()
        lease = Lease(key=key, worker=worker, ttl_s=self.ttl_s,
                      granted_t=now, renewed_t=now)
        self._leases[key] = lease
        self._grants[key] = self._grants.get(key, 0) + 1
        self._log("lease", key=key, worker=worker, ttl_s=self.ttl_s,
                  grant=self._grants[key])
        return lease

    def renew(self, key: str, worker: str) -> bool:
        """Heartbeat renewal: push the lease's expiry out by one TTL."""
        lease = self._leases.get(key)
        if lease is None or lease.worker != worker:
            return False
        lease.renewed_t = self._clock()
        return True

    def complete(self, key: str, worker: str) -> bool:
        """Accept a finished cell iff ``worker`` still holds its lease."""
        lease = self._leases.get(key)
        if lease is None or lease.worker != worker:
            self._log("stale_result", key=key, worker=worker)
            return False
        del self._leases[key]
        self._completed[key] = worker
        self._log("complete", key=key, worker=worker)
        return True

    def fail(self, key: str, worker: str, error: str) -> bool:
        """Record a cell whose computation raised (deterministic failure)."""
        lease = self._leases.get(key)
        if lease is None or lease.worker != worker:
            self._log("stale_result", key=key, worker=worker)
            return False
        del self._leases[key]
        self._failed[key] = error
        self._log("failed", key=key, worker=worker, error=error)
        return True

    def fail_unleased(self, key: str, error: str) -> None:
        """Mark a never-again-leasable cell failed (e.g. lease-limit hit)."""
        self._failed[key] = error
        self._log("failed", key=key, worker="", error=error)

    # ------------------------------------------------------------------ #
    def expired(self) -> List[Lease]:
        """Active leases whose TTL has lapsed (missed heartbeats)."""
        now = self._clock()
        return [lease for lease in self._leases.values() if lease.expired(now)]

    def reclaim(self, key: str, reason: str) -> Optional[Lease]:
        """Take back an active lease so the cell can be re-leased."""
        lease = self._leases.pop(key, None)
        if lease is not None:
            self._log("reclaim", key=key, worker=lease.worker, reason=reason)
        return lease

    def release_worker(self, worker: str, reason: str) -> List[Lease]:
        """Reclaim every lease a (dead) worker holds."""
        held = [lease for lease in self._leases.values() if lease.worker == worker]
        return [self.reclaim(lease.key, reason) for lease in held]

    # ------------------------------------------------------------------ #
    def held_by(self, worker: str) -> List[str]:
        return [lease.key for lease in self._leases.values() if lease.worker == worker]

    def grants(self, key: str) -> int:
        """How many times this cell has been leased (1 + reclaim count)."""
        return self._grants.get(key, 0)

    @property
    def active(self) -> Dict[str, Lease]:
        return dict(self._leases)

    @property
    def completed(self) -> Dict[str, str]:
        return dict(self._completed)

    @property
    def failed(self) -> Dict[str, str]:
        return dict(self._failed)
