"""Deterministic seed derivation shared by the harness and the topology layer.

Grid experiments shard (scheme × trace × seed) cells across worker processes,
and topologies instantiate one random-loss RNG per link hop.  Both need seeds
that depend only on *what* is being run — never on which worker runs it or in
what order — so that serial and parallel executions are bit-identical.

``derive_seed`` lives in its own leaf module (rather than in
:mod:`repro.harness.parallel`, which re-exports it for backward compatibility)
so that :mod:`repro.topology` can use it without importing the experiment
harness.
"""

from __future__ import annotations

import zlib

__all__ = ["derive_seed"]


def derive_seed(base_seed: int, *coordinates) -> int:
    """A stable, collision-resistant seed for one grid cell or link hop.

    Hashes the coordinates (any reprable values: trace name, scheme, link
    name, replicate index, ...) together with ``base_seed`` via CRC32, so the
    same cell always gets the same seed no matter which worker runs it or in
    what order the grid is traversed.
    """
    digest = zlib.crc32(repr((int(base_seed),) + coordinates).encode("utf-8"))
    return int(digest % (2 ** 31 - 1))
