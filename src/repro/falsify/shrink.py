"""Delta-debugging reduction of counterexamples to minimal replayable cells.

A raw counterexample found by the search is usually over-complicated — a
four-flow churn workload on a fan-in(4) over a cellular trace, when the
violation really only needs one background flow on a single bottleneck.
:func:`shrink_counterexample` greedily applies the classic delta-debugging
loop: propose an ordered list of *reductions* (most aggressive first — drop
the whole workload before trimming it, collapse the topology before shaving
one branch), keep the first one that still violates the objective, restart
the scan from the reduced cell, and stop when no reduction survives or the
attempt budget runs out.

Every attempt — accepted or not — is journaled as a ``phase="shrink"`` line
through the caller's emitter, so the shrink trace is part of the campaign
journal and byte-identically replayable.  Evaluation goes through the same
store-backed evaluator as the search, so shrink attempts are cached cells
like any other.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.falsify.objective import Objective
from repro.harness.parallel import ExperimentTask
from repro.harness.spec import resolve_trace
from repro.topology.families import parse_topology
from repro.workload.spec import WorkloadSpec, parse_workload
from repro.traces.synthetic import SYNTHETIC_TRACE_NAMES

__all__ = ["shrink_counterexample", "shrink_reductions"]

#: Shrinking never shortens a run below this (seconds) — enough sim time for
#: a violation to still be observable after the warmup skip.
_MIN_DURATION = 2.0


def _reduced_workloads(workload: WorkloadSpec) -> List[WorkloadSpec]:
    """Ordered workload reductions: drop everything first, then halve."""
    reductions: List[WorkloadSpec] = []
    if workload.kind != "static":
        reductions.append(WorkloadSpec(kind="static"))
    if workload.kind == "responsive" and workload.count > 1:
        reductions.append(replace(workload, count=workload.count // 2))
    if workload.kind == "poisson" and workload.rate > 0.05:
        reductions.append(replace(workload, rate=workload.rate / 2.0))
    if workload.kind == "step":
        if len(workload.windows) > 1:
            reductions.append(replace(workload, windows=workload.windows[:-1]))
        else:
            start, stop = workload.windows[0]
            if stop is not None and stop - start > 2.0:
                reductions.append(replace(
                    workload, windows=((start, start + (stop - start) / 2.0),)))
    return reductions


def shrink_reductions(task: ExperimentTask) -> List[Tuple[str, ExperimentTask]]:
    """The ordered reduction candidates for one cell (aggressive cuts first).

    Workload cuts, topology collapse/shaving, duration halving, then a move
    to the canonical first synthetic trace.  Every candidate is a valid cell
    (invalid topology shaves — fixed-shape families, branch minimums — are
    skipped), so the shrink loop never proposes something the harness would
    reject.
    """
    reductions: List[Tuple[str, ExperimentTask]] = []
    settings = task.settings

    def with_settings(**changes) -> ExperimentTask:
        return replace(task, settings=replace(settings, **changes))

    for workload in _reduced_workloads(parse_workload(settings.workload)):
        spec = workload.canonical()
        reductions.append((f"workload={spec}", with_settings(workload=spec)))
    family, n_hops = parse_topology(settings.topology)
    if family != "single_bottleneck":
        reductions.append(("topology=single_bottleneck",
                           with_settings(topology="single_bottleneck")))
        smaller = f"{family}({n_hops - 1})"
        try:
            parse_topology(smaller)
        except ValueError:
            pass
        else:
            reductions.append((f"topology={smaller}", with_settings(topology=smaller)))
    if settings.duration > _MIN_DURATION:
        shorter = max(_MIN_DURATION, settings.duration / 2.0)
        reductions.append((f"duration={shorter:g}", with_settings(duration=shorter)))
    baseline_trace = SYNTHETIC_TRACE_NAMES[0]
    if task.trace.name != baseline_trace:
        reductions.append((f"trace={baseline_trace}",
                           replace(task, trace=resolve_trace(baseline_trace))))
    return reductions


def shrink_counterexample(
    task: ExperimentTask,
    objective: Objective,
    evaluate: Callable[[ExperimentTask], Dict],
    emit: Optional[Callable[[Dict], None]] = None,
    budget: int = 48,
) -> Tuple[ExperimentTask, List[Dict]]:
    """Greedily reduce a violating cell while the objective stays violated.

    ``evaluate`` maps a task to its (canonical) row — the campaign passes its
    store-backed evaluator, so repeated attempts are cache hits.  Returns the
    minimal cell reached plus the full attempt trail (each entry carries the
    action, the from/to keys, the score, and whether it was accepted); the
    same entries go through ``emit`` as they happen for live journaling.
    """
    current = task
    trail: List[Dict] = []
    attempts = 0
    reduced = True
    while reduced and attempts < budget:
        reduced = False
        for action, smaller in shrink_reductions(current):
            if attempts >= budget:
                break
            attempts += 1
            row = evaluate(smaller)
            score = objective(row)
            accepted = objective.violated(row)
            step = {"phase": "shrink", "action": action, "from": current.cell_key(),
                    "to": smaller.cell_key(), "score": score, "accepted": accepted}
            if emit is not None:
                emit(step)
            trail.append(step)
            if accepted:
                current = smaller
                reduced = True
                break
    return current, trail
