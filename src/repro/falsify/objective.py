"""Falsification objectives: what counts as "broken", scored from result rows.

An :class:`Objective` maps one completed cell's row — the plain dict a
:class:`~repro.harness.store.RunRecord` carries, including the ``tele_*``
telemetry summary columns when the cell ran traced — to a scalar *violation
score*.  Higher is more broken; a cell is a counterexample when the score
exceeds the objective's threshold.  Scores are pure functions of the row, so
the search can re-score cached rows without re-running anything, and the
``--check`` regression gate can re-assert a promoted counterexample from a
fresh replay.

Built-in objectives
-------------------

``qc_violation``
    QC_sat shortfall of a certified cell: ``1 - qcsat``.  Finds scenarios
    where the certificate confidence itself collapses.

``qc_gap``
    The certified-vs-empirical safety gap: high certificate confidence
    *while* the run empirically drops packets.  A cell scores positive only
    when QC_sat exceeds what the observed loss rate warrants — the
    "certified safe but actually breaking" cells the paper's story depends
    on never existing.

``fallback_storm``
    Longest contiguous runtime-monitor fallback episode (seconds, from
    ``tele_fallback_longest_s``; falls back to ``fallback_fraction`` for
    untraced rows).  Finds scenarios that pin the monitor into its fallback
    controller.

``loss_burst``
    Plain empirical loss rate above a threshold.  Scheme-agnostic (works for
    classical schemes — the cheap objective CI smoke campaigns use).

``conservation``
    Worst packet-conservation imbalance over the run's telemetry snapshots:
    ``|acked + lost + queued + in-transit + pending - sent|``.  Positive
    scores mean the simulator itself leaked or minted packets — a harness
    bug, which is exactly why it is falsifiable.

``requires`` declares what a candidate cell must be shaped like for the
objective to be measurable (``certify`` — certified learned cell, ``monitor``
— runtime-monitored learned cell, ``telemetry`` — event trace enabled);
:func:`repro.falsify.scenario.prepare_template` reshapes the experiment's
template cell accordingly before the search starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional

__all__ = ["OBJECTIVES", "Objective", "objective_names", "resolve_objective"]


def _float(row: Dict, column: str, default: float = 0.0) -> float:
    value = row.get(column, default)
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


@dataclass(frozen=True)
class Objective:
    """One falsification objective: a violation score plus its threshold."""

    name: str
    description: str
    score: Callable[[Dict], float]
    threshold: float
    requires: FrozenSet[str] = field(default_factory=frozenset)

    def __call__(self, row: Dict) -> float:
        return float(self.score(row))

    def violated(self, row: Dict) -> bool:
        """Whether this row is a counterexample (score strictly above threshold)."""
        return self(row) > self.threshold


# ---------------------------------------------------------------------- #
# Score functions
# ---------------------------------------------------------------------- #
def _qc_violation(row: Dict) -> float:
    return 1.0 - _float(row, "qcsat", 1.0)


def _qc_gap(row: Dict) -> float:
    # loss_rate is mapped onto [0, 1] "empirical badness" (5% loss saturates);
    # the gap is how much certificate confidence exceeds what the empirical
    # run warrants.  qcsat=0.98 with 5% loss scores 0.98; qcsat=0.98 with no
    # loss scores ~0.
    badness = min(1.0, _float(row, "loss_rate") * 20.0)
    return _float(row, "qcsat", 0.0) - (1.0 - badness)


def _fallback_storm(row: Dict) -> float:
    if "tele_fallback_longest_s" in row:
        return _float(row, "tele_fallback_longest_s")
    return _float(row, "fallback_fraction")


def _loss_burst(row: Dict) -> float:
    return _float(row, "loss_rate")


def _conservation(row: Dict) -> float:
    worst = 0.0
    for event in row.get("telemetry_events") or []:
        if event.get("kind") != "conservation":
            continue
        queued = sum(float(occupancy) for occupancy in (event.get("hops") or {}).values())
        balance = (_float(event, "acked") + _float(event, "lost") + queued
                   + _float(event, "transit") + _float(event, "pending")
                   - _float(event, "sent"))
        worst = max(worst, abs(balance))
    return worst


#: The built-in objective registry (name → :class:`Objective`).
OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective(
            name="qc_violation",
            description="QC_sat shortfall of a certified cell (1 - qcsat)",
            score=_qc_violation,
            threshold=0.05,
            requires=frozenset({"certify"}),
        ),
        Objective(
            name="qc_gap",
            description="certified-vs-empirical gap: high QC_sat while the run drops packets",
            score=_qc_gap,
            threshold=0.0,
            requires=frozenset({"certify"}),
        ),
        Objective(
            name="fallback_storm",
            description="longest contiguous runtime-monitor fallback episode (seconds)",
            score=_fallback_storm,
            threshold=0.0,
            requires=frozenset({"monitor", "telemetry"}),
        ),
        Objective(
            name="loss_burst",
            description="empirical loss rate above threshold (scheme-agnostic)",
            score=_loss_burst,
            threshold=0.05,
            requires=frozenset(),
        ),
        Objective(
            name="conservation",
            description="worst packet-conservation imbalance across telemetry snapshots",
            score=_conservation,
            threshold=1e-6,
            requires=frozenset({"telemetry"}),
        ),
    )
}


def objective_names() -> List[str]:
    return sorted(OBJECTIVES)


def resolve_objective(name: str, threshold: Optional[float] = None) -> Objective:
    """Look up an objective by name, optionally overriding its threshold."""
    try:
        objective = OBJECTIVES[name]
    except KeyError:
        raise ValueError(f"unknown objective {name!r}; "
                         f"known: {', '.join(objective_names())}") from None
    if threshold is not None:
        objective = replace(objective, threshold=float(threshold))
    return objective
