"""The falsification candidate currency: tasks as JSON, plus seeded mutations.

A search candidate is a full :class:`~repro.harness.parallel.ExperimentTask`
— not just a :class:`~repro.harness.spec.ScenarioSpec` — because run-time
knobs outside the scenario identity (duration, buffer depth, monitor
threshold) are part of what makes a counterexample replayable.  This module
owns the three seams every other falsify module shares:

* :func:`task_to_json` / :func:`task_from_json` — the replay codec.  A
  promoted counterexample stores its task this way, and ``--check`` rebuilds
  the exact cell (same ``cell_key()``) from it months later.
* :func:`prepare_template` — reshapes a registered experiment's first cell
  into the campaign template an objective needs (certified, monitored,
  traced), with the tags cleared so mutated cells don't carry stale labels.
* :func:`mutate_task` — one seeded mutation step along the searchable axes
  (seed, workload, topology, trace).  Model identity is deliberately *not*
  an axis: every candidate shares the template's trained model, so a
  campaign trains once and spends its budget on scenarios.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Dict, List, Tuple

from repro.falsify.objective import Objective
from repro.harness.evaluate import EvaluationSettings
from repro.harness.parallel import ExperimentTask
from repro.harness.spec import resolve_trace, trace_names
from repro.topology.families import canonical_topology
from repro.workload.spec import mutate_workload

__all__ = [
    "MUTATION_AXES",
    "mutate_task",
    "prepare_template",
    "task_from_json",
    "task_to_json",
    "topology_pool",
]

#: Scenario axes one mutation step may move along.
MUTATION_AXES = ("seed", "workload", "topology", "trace")

#: Seeds mutations draw from (small ints keep canonical keys short).
_SEED_POOL = 1000

_TASK_FIELDS = ("scheme", "model_kind", "training_steps", "model_seed", "lam",
                "model_components", "model_topologies", "certify", "property_family",
                "n_components", "monitor_threshold", "monitor_family",
                "monitor_components")


# ---------------------------------------------------------------------- #
# Replay codec
# ---------------------------------------------------------------------- #
def task_to_json(task: ExperimentTask) -> Dict:
    """A JSON-safe dict rebuilding the exact cell (``task_from_json`` inverts it)."""
    payload: Dict = {name: getattr(task, name) for name in _TASK_FIELDS}
    if payload["model_topologies"] is not None:
        payload["model_topologies"] = list(payload["model_topologies"])
    payload["trace"] = task.trace.name
    payload["settings"] = asdict(task.settings)
    payload["tags"] = dict(task.tags)
    return payload


def task_from_json(payload: Dict) -> ExperimentTask:
    """Rebuild a task from its :func:`task_to_json` form (bundled traces only)."""
    values = dict(payload)
    unknown = sorted(set(values) - set(_TASK_FIELDS) - {"trace", "settings", "tags"})
    if unknown:
        raise ValueError(f"unknown task fields {unknown} in falsify payload")
    trace = resolve_trace(values.pop("trace"))
    settings = EvaluationSettings(**values.pop("settings"))
    if values.get("model_topologies") is not None:
        values["model_topologies"] = tuple(values["model_topologies"])
    return ExperimentTask(trace=trace, settings=settings, **values)


# ---------------------------------------------------------------------- #
# Template preparation
# ---------------------------------------------------------------------- #
def prepare_template(task: ExperimentTask, objective: Objective, *,
                     monitor_threshold: float = 0.8,
                     telemetry: str = "on(10)") -> ExperimentTask:
    """Reshape an experiment's cell into the campaign template an objective needs.

    ``certify`` objectives need a certified learned cell; ``monitor``
    objectives a runtime-monitored (uncertified) one; ``telemetry``
    objectives an event trace.  Tags are cleared — they would go stale the
    moment a mutation moves an axis the tag echoes.  Raises with a pointed
    message when the experiment's cell cannot be reshaped (a classical
    scheme cannot carry certificates or a monitor).
    """
    changes: Dict = {"tags": {}}
    needs_model = {"certify", "monitor"} & objective.requires
    if needs_model and task.model_kind is None:
        raise ValueError(
            f"objective {objective.name!r} needs a learned scheme "
            f"({'/'.join(sorted(needs_model))}), but the experiment's template cell "
            f"runs the classical scheme {task.scheme!r}; pick a learned scheme "
            f"(e.g. --set schemes=canopy-shallow) or a scheme-agnostic objective")
    if "certify" in objective.requires:
        changes.update(certify=True,
                       property_family=task.property_family or "shallow",
                       monitor_threshold=None, monitor_family=None)
    if "monitor" in objective.requires:
        threshold = (task.monitor_threshold if task.monitor_threshold is not None
                     else monitor_threshold)
        changes.update(certify=False, property_family=None,
                       monitor_threshold=threshold,
                       monitor_family=(task.monitor_family or task.property_family
                                       or "shallow"))
    if "telemetry" in objective.requires:
        changes["settings"] = replace(task.settings, telemetry=telemetry)
    return replace(task, **changes)


# ---------------------------------------------------------------------- #
# Mutations
# ---------------------------------------------------------------------- #
def topology_pool() -> List[str]:
    """Topology shapes a mutation may move to (sized variants included)."""
    return ["single_bottleneck", "chain(2)", "chain(3)", "chain(4)",
            "parking_lot(2)", "parking_lot(3)", "dumbbell",
            "fan_in(2)", "fan_in(3)", "fan_in(4)", "tree(2)", "tree(3)",
            "shared_segment"]


def _mutate_seed(task: ExperimentTask, rng) -> Tuple[ExperimentTask, str]:
    new_seed = int(rng.integers(0, _SEED_POOL))
    return (replace(task, settings=replace(task.settings, seed=new_seed)),
            f"seed={new_seed}")


def _mutate_workload(task: ExperimentTask, rng) -> Tuple[ExperimentTask, str]:
    new_workload = mutate_workload(task.settings.workload, rng)
    return (replace(task, settings=replace(task.settings, workload=new_workload)),
            f"workload={new_workload}")


def _mutate_topology(task: ExperimentTask, rng) -> Tuple[ExperimentTask, str]:
    current = canonical_topology(task.settings.topology)
    options = [spec for spec in topology_pool() if canonical_topology(spec) != current]
    new_topology = options[int(rng.integers(len(options)))]
    return (replace(task, settings=replace(task.settings, topology=new_topology)),
            f"topology={canonical_topology(new_topology)}")


def _mutate_trace(task: ExperimentTask, rng) -> Tuple[ExperimentTask, str]:
    options = [name for name in trace_names() if name != task.trace.name]
    new_trace = options[int(rng.integers(len(options)))]
    return replace(task, trace=resolve_trace(new_trace)), f"trace={new_trace}"


_MUTATORS = {"seed": _mutate_seed, "workload": _mutate_workload,
             "topology": _mutate_topology, "trace": _mutate_trace}


def mutate_task(task: ExperimentTask, rng,
                n_mutations: int = 1) -> Tuple[ExperimentTask, List[str]]:
    """Apply ``n_mutations`` seeded mutation steps; returns (task, actions).

    Each step picks one axis uniformly and moves it; the action strings
    (``"workload=poisson(0.5)"``) journal what changed, in order.
    """
    actions: List[str] = []
    for _ in range(max(1, int(n_mutations))):
        axis = MUTATION_AXES[int(rng.integers(len(MUTATION_AXES)))]
        task, action = _MUTATORS[axis](task, rng)
        actions.append(action)
    return task, actions
