"""Campaign reporting: violations found, shrink sizes, search efficiency.

``python -m repro falsify report <store>`` reads a campaign store — the
deterministic ``campaign.jsonl`` journal, the wall-clock
``campaign_summary.json``, and the promoted ``counterexamples/`` entries —
and renders one human summary (or, with ``--json``, the flat stats dict the
CI folds into ``BENCH_ci.json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.falsify.promote import load_counterexamples
from repro.falsify.search import JOURNAL_FILENAME, SUMMARY_FILENAME

__all__ = ["format_report", "read_campaign", "report_stats"]


def read_campaign(store_path: str | Path) -> Dict:
    """Parse one campaign store into its report dict; raises on non-campaigns."""
    store_path = Path(store_path)
    journal_path = store_path / JOURNAL_FILENAME
    if not journal_path.is_file():
        raise ValueError(f"{store_path}: not a falsify campaign store "
                         f"(no {JOURNAL_FILENAME})")
    header: Dict = {}
    candidates: List[Dict] = []
    shrink_steps: List[Dict] = []
    promotions: List[Dict] = []
    for line_number, line in enumerate(journal_path.read_text().split("\n"), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            entry = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{journal_path}:{line_number}: invalid journal "
                             f"line: {exc}") from exc
        phase = entry.get("phase")
        if phase == "campaign":
            header = entry
        elif phase == "candidate":
            candidates.append(entry)
        elif phase == "shrink":
            shrink_steps.append(entry)
        elif phase == "promote":
            promotions.append(entry)
        else:
            raise ValueError(f"{journal_path}:{line_number}: unknown journal "
                             f"phase {phase!r}")
    summary: Dict = {}
    summary_path = store_path / SUMMARY_FILENAME
    if summary_path.is_file():
        summary = json.loads(summary_path.read_text())
    counterexample_dir = Path(summary.get("counterexample_store",
                                          store_path / "counterexamples"))
    entries = load_counterexamples(counterexample_dir) \
        if counterexample_dir.exists() else []
    return {"store": str(store_path), "header": header, "candidates": candidates,
            "shrink_steps": shrink_steps, "promotions": promotions,
            "summary": summary, "counterexamples": entries,
            "counterexample_store": str(counterexample_dir)}


def report_stats(report: Dict) -> Dict:
    """Flat scalar stats of one campaign (the bench/BENCH_ci.json payload)."""
    candidates = report["candidates"]
    shrink_steps = report["shrink_steps"]
    violations = [candidate for candidate in candidates if candidate.get("violated")]
    summary = report["summary"]
    accepted = sum(1 for step in shrink_steps if step.get("accepted"))
    return {
        "experiment": report["header"].get("experiment", ""),
        "objective": report["header"].get("objective", ""),
        "strategy": report["header"].get("strategy", ""),
        "budget": report["header"].get("budget", 0),
        "candidates": len(candidates),
        "unique_cells": len({candidate["key"] for candidate in candidates}),
        "violations_found": len(violations),
        "best_score": max((candidate["score"] for candidate in candidates),
                          default=0.0),
        "counterexamples_promoted": len(report["counterexamples"]),
        "shrink_attempts": len(shrink_steps),
        "shrink_accepted": accepted,
        "computed_cells": summary.get("computed_cells", 0),
        "cached_cells": summary.get("cached_cells", 0),
        "wall_clock_s": summary.get("wall_clock_s", 0.0),
        "falsify_cells_per_sec": summary.get("falsify_cells_per_sec", 0.0),
    }


def format_report(report: Dict) -> str:
    """The human-readable campaign summary."""
    header = report["header"]
    stats = report_stats(report)
    lines = [
        f"falsify campaign: {stats['experiment']} "
        f"objective={stats['objective']} (threshold {header.get('threshold')}) "
        f"strategy={stats['strategy']} budget={stats['budget']} "
        f"seed={header.get('campaign_seed')}",
        f"candidates: {stats['candidates']} ({stats['unique_cells']} unique cells), "
        f"violations: {stats['violations_found']}, "
        f"best score {stats['best_score']:.4f}",
    ]
    if report["summary"]:
        lines.append(
            f"cells: {stats['computed_cells']} computed, "
            f"{stats['cached_cells']} cached, "
            f"{stats['falsify_cells_per_sec']:.2f} cells/s")
    if stats["shrink_attempts"]:
        lines.append(f"shrink: {stats['shrink_accepted']} of "
                     f"{stats['shrink_attempts']} attempted reductions accepted")
    if report["counterexamples"]:
        lines.append(f"counterexamples ({stats['counterexamples_promoted']} promoted "
                     f"to {report['counterexample_store']}):")
        for entry in report["counterexamples"]:
            lines.append(f"  {entry['id']} score={entry['score']:.4f} "
                         f"[{entry['objective']}] {entry['scenario']}")
    else:
        lines.append("counterexamples: none promoted")
    return "\n".join(lines)
