"""Falsification: adversarial search for scenarios where the guarantees break.

The harness can *run* any point of the scenario space (spec × topology ×
workload × trace × seed); this package *searches* that space for the points
where a certified model's story falls apart — certified-safe cells that drop
packets, runtime-monitor fallback storms, QC_sat collapses, conservation
drift — then reduces each find to a minimal replayable scenario and promotes
it into a regression store the CI replays forever after.

Lifecycle (one campaign)::

    objective   what "broken" means, scored from RunRecord rows   (objective)
    search      budgeted mutation search over scenario cells      (search)
    shrink      delta-debug the hits down to minimal cells        (shrink)
    promote     counterexamples/ regression store + --check gate  (promote)
    report      human/bench summary of a campaign store           (report)

Everything flows through the existing machinery: candidates are
:class:`~repro.harness.parallel.ExperimentTask` mutations of a registered
experiment's first cell (``REGISTRY.plan``), evaluated by
:func:`~repro.harness.parallel.run_task` under a
:class:`~repro.harness.parallel.ParallelRunner`, persisted as
:class:`~repro.harness.store.RunRecord`\\ s — so campaigns are resumable,
shardable via ``--jobs``, and byte-identically replayable from the campaign
seed (all RNG derives via :func:`repro.seeding.derive_seed`).

Front door: ``python -m repro falsify <experiment> --objective qc_gap
--budget N --store DIR [--strategy random|evolve] [--jobs N]``, then
``python -m repro falsify report <store>`` and ``python -m repro falsify
--check <counterexamples>``.
"""

from repro.falsify.objective import OBJECTIVES, Objective, resolve_objective
from repro.falsify.promote import check_counterexamples, load_counterexamples
from repro.falsify.search import CampaignConfig, STRATEGIES, run_campaign
from repro.falsify.shrink import shrink_counterexample

__all__ = [
    "OBJECTIVES",
    "Objective",
    "STRATEGIES",
    "CampaignConfig",
    "check_counterexamples",
    "load_counterexamples",
    "resolve_objective",
    "run_campaign",
    "shrink_counterexample",
]
