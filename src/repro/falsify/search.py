"""Budgeted falsification search over scenario mutations.

A campaign starts from a registered experiment's template cell (every
sequence axis collapsed to its first value, ``--set`` overrides applied
through the registry's own coercion), reshaped by
:func:`~repro.falsify.scenario.prepare_template` for the objective, and then
spends its budget proposing mutated cells through one of two strategies
behind a single ``propose`` interface:

``random``
    Seeded random baseline: every candidate is 1–3 fresh mutations of the
    template.  The control arm every smarter strategy must beat.

``evolve``
    Evolutionary hill-climb: candidates mutate the worst-scoring (most
    violating) cells seen so far — an elite pool of the top scorers — with an
    ε of fresh template mutations for exploration.

Determinism contract (pinned by tests and the CI smoke job): the candidate
sequence is a pure function of the campaign seed (all RNG derives via
:func:`repro.seeding.derive_seed`), proposals are generated in fixed-size
*generations* whose membership never depends on ``--jobs``, and the journal
(``campaign.jsonl``: one header, one line per candidate, one line per shrink
attempt, one per promotion) is written from canonical rows only — so serial,
sharded, and fully-cached re-runs of the same campaign produce byte-identical
journals.  Every evaluated cell is persisted to the campaign's
:class:`~repro.harness.store.RunStore`, which doubles as the resume cache.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.falsify.objective import Objective
from repro.falsify.promote import promote_counterexample
from repro.falsify.scenario import mutate_task, prepare_template
from repro.falsify.shrink import shrink_counterexample
from repro.harness.parallel import ExperimentTask, ParallelRunner, run_task
from repro.harness.registry import REGISTRY, pretrain_models
from repro.harness.store import RunRecord, RunStore, canonical_json
from repro.seeding import derive_seed
from repro.telemetry import log

__all__ = [
    "Candidate",
    "CampaignConfig",
    "EvolveStrategy",
    "JOURNAL_FILENAME",
    "RandomStrategy",
    "STRATEGIES",
    "SUMMARY_FILENAME",
    "resolve_strategy",
    "run_campaign",
]

#: The deterministic campaign journal (header + candidate/shrink/promote lines).
JOURNAL_FILENAME = "campaign.jsonl"

#: Campaign statistics (wall-clock, throughput) — deliberately *outside* the
#: journal so byte-identity claims never meet a timestamp.
SUMMARY_FILENAME = "campaign_summary.json"

#: Candidates proposed per generation.  Fixed independently of ``--jobs`` so
#: what the strategy sees between proposals (generation boundaries) — and
#: hence the candidate sequence — is identical serial vs sharded.
GENERATION_SIZE = 6


@dataclass
class Candidate:
    """One proposed cell: its task, provenance, and (once evaluated) score."""

    index: int
    generation: int
    task: ExperimentTask
    key: str
    actions: List[str]
    parent: Optional[str] = None
    score: Optional[float] = None
    violated: bool = False


# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #
class RandomStrategy:
    """Seeded random baseline: fresh 1–3-step mutations of the template."""

    name = "random"

    def propose(self, rng, count: int, template: ExperimentTask,
                scored: Sequence[Candidate]) -> List[Tuple[ExperimentTask, List[str], Optional[str]]]:
        proposals = []
        for _ in range(count):
            task, actions = mutate_task(template, rng, 1 + int(rng.integers(3)))
            proposals.append((task, actions, None))
        return proposals


class EvolveStrategy:
    """Evolutionary hill-climb: mutate the worst-scoring cells seen so far."""

    name = "evolve"
    #: Elite pool size (top scorers by violation score, ties by discovery order).
    elite_size = 4
    #: Fraction of proposals that explore fresh template mutations instead.
    explore = 0.25

    def propose(self, rng, count: int, template: ExperimentTask,
                scored: Sequence[Candidate]) -> List[Tuple[ExperimentTask, List[str], Optional[str]]]:
        elites = sorted(scored, key=lambda c: (-c.score, c.index))[:self.elite_size]
        proposals = []
        for _ in range(count):
            if not elites or rng.random() < self.explore:
                task, actions = mutate_task(template, rng, 1 + int(rng.integers(3)))
                proposals.append((task, actions, None))
            else:
                parent = elites[int(rng.integers(len(elites)))]
                task, actions = mutate_task(parent.task, rng, 1 + int(rng.integers(2)))
                proposals.append((task, actions, parent.key))
        return proposals


STRATEGIES = {strategy.name: strategy for strategy in (RandomStrategy, EvolveStrategy)}


def resolve_strategy(name: str):
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ValueError(f"unknown search strategy {name!r}; "
                         f"known: {', '.join(sorted(STRATEGIES))}") from None


# ---------------------------------------------------------------------- #
# Campaign
# ---------------------------------------------------------------------- #
@dataclass
class CampaignConfig:
    """One falsification campaign, fully declarative (and hence replayable)."""

    experiment: str
    objective: Objective
    budget: int = 40
    strategy: str = "evolve"
    campaign_seed: int = 1
    jobs: int = 1
    generation_size: int = GENERATION_SIZE
    overrides: Dict[str, object] = field(default_factory=dict)
    #: Monitor veto threshold installed on the template for ``monitor``
    #: objectives (ignored when the experiment already sets one).
    monitor_threshold: float = 0.8
    #: Telemetry spec installed for ``telemetry`` objectives.
    telemetry: str = "on(10)"
    #: How many distinct violating cells to shrink and promote.
    max_counterexamples: int = 3
    #: Evaluation budget of each shrink (attempted reductions).
    shrink_budget: int = 48
    #: Regression store for promoted counterexamples (default:
    #: ``<campaign store>/counterexamples``).
    promote_to: Optional[Path] = None


class _Evaluator:
    """Store-backed, deduplicating cell evaluation shared by search and shrink.

    Rows live in the campaign's RunStore keyed by ``cell_key()``; a key
    already stored (this run or a previous one — that is what makes campaigns
    resumable) is never recomputed.  Fresh rows are canonicalized before
    scoring so cached and computed paths score identical bytes.
    """

    def __init__(self, store: RunStore, experiment: str, jobs: int):
        self.store = store
        self.experiment = experiment
        self.rows: Dict[str, Dict] = {key: record.row
                                      for key, record in store.load().items()}
        self.runner = ParallelRunner(jobs)
        self.producer = ("falsify-serial" if self.runner.n_jobs <= 1
                         else "falsify-pool")
        self.computed = 0
        self.cached = 0
        # Campaigns stream the same metric frames the serve daemon does (one
        # per computed cell, cumulative counters) into the campaign store's
        # metrics.jsonl — observability only, never part of the rows.
        # Imported lazily so search stays importable without the obs plane.
        from repro.obs.metrics import MetricsJournal, MetricsSampler

        self.sampler = MetricsSampler("falsify")
        self.metrics = MetricsJournal(store.path)

    def evaluate(self, tasks: Sequence[ExperimentTask]) -> List[Dict]:
        pending: List[ExperimentTask] = []
        seen = set()
        for task in tasks:
            key = task.cell_key()
            if key in self.rows:
                self.cached += 1
            elif key not in seen:
                seen.add(key)
                pending.append(task)

        def on_result(index: int, task: ExperimentTask, row: Dict) -> None:
            row = canonical_json(row)
            self.rows[task.cell_key()] = row
            self.store.put(RunRecord.for_task(
                task, row, experiment=f"falsify:{self.experiment}",
                producer=self.producer))
            self.sampler.note_cell_done(row)
            self.metrics.append(self.sampler.sample(current_key=task.cell_key()))

        if pending:
            self.runner.map(run_task, pending, on_result=on_result)
            self.computed += len(pending)
        return [self.rows[task.cell_key()] for task in tasks]

    def evaluate_one(self, task: ExperimentTask) -> Dict:
        return self.evaluate([task])[0]


def _campaign_template(config: CampaignConfig) -> ExperimentTask:
    """The experiment's first cell under the overrides, reshaped for the objective."""
    resolved = REGISTRY.resolve_axes(config.experiment, config.overrides)
    collapsed = {axis: value[:1] if isinstance(value, tuple) else value
                 for axis, value in resolved.items()}
    plan = REGISTRY.plan(config.experiment, collapsed)
    if not plan.tasks:
        raise ValueError(f"experiment {config.experiment!r} built no tasks to seed "
                         "the falsification template from")
    template = plan.tasks[0]
    if not isinstance(template, ExperimentTask):
        raise ValueError(f"experiment {config.experiment!r} builds "
                         f"{type(template).__name__} cells; falsification "
                         "campaigns need ExperimentTask grids")
    return prepare_template(template, config.objective,
                            monitor_threshold=config.monitor_threshold,
                            telemetry=config.telemetry)


def run_campaign(config: CampaignConfig, store: RunStore) -> Dict:
    """Run one falsification campaign end to end; returns the summary dict.

    Search, shrink, and promotion all journal into
    ``<store>/campaign.jsonl`` (deterministic) and persist cells into the
    store (resumable); wall-clock statistics land in
    ``<store>/campaign_summary.json`` and the returned summary.
    """
    objective = config.objective
    strategy = resolve_strategy(config.strategy)
    template = _campaign_template(config)
    pretrain_models([template])
    rng = np.random.default_rng(derive_seed(
        config.campaign_seed, "falsify", config.experiment,
        objective.name, strategy.name))
    evaluator = _Evaluator(store, config.experiment, config.jobs)
    log.info("falsify_start", logger="falsify", experiment=config.experiment,
             objective=objective.name, strategy=strategy.name,
             budget=config.budget, template=template.cell_key())

    start = time.perf_counter()
    candidates: List[Candidate] = []
    counterexamples: List[Dict] = []
    promote_dir = Path(config.promote_to) if config.promote_to is not None \
        else store.path / "counterexamples"
    journal_path = store.path / JOURNAL_FILENAME
    with journal_path.open("w") as journal:

        def emit(payload: Dict) -> None:
            journal.write(json.dumps(payload, sort_keys=True) + "\n")

        emit({"phase": "campaign", "experiment": config.experiment,
              "objective": objective.name, "threshold": objective.threshold,
              "strategy": strategy.name, "budget": config.budget,
              "campaign_seed": config.campaign_seed,
              "generation_size": config.generation_size,
              "template": template.cell_key()})

        generation = 0
        while len(candidates) < config.budget:
            count = min(config.generation_size, config.budget - len(candidates))
            scored = [candidate for candidate in candidates
                      if candidate.score is not None]
            proposals = strategy.propose(rng, count, template, scored)
            batch = [Candidate(index=len(candidates) + offset, generation=generation,
                               task=task, key=task.cell_key(), actions=actions,
                               parent=parent)
                     for offset, (task, actions, parent) in enumerate(proposals)]
            rows = evaluator.evaluate([candidate.task for candidate in batch])
            for candidate, row in zip(batch, rows):
                candidate.score = objective(row)
                candidate.violated = objective.violated(row)
                emit({"phase": "candidate", "index": candidate.index,
                      "generation": candidate.generation, "key": candidate.key,
                      "actions": candidate.actions, "parent": candidate.parent,
                      "score": candidate.score, "violated": candidate.violated})
            candidates.extend(batch)
            log.info("falsify_generation", logger="falsify", generation=generation,
                     candidates=len(candidates),
                     violations=sum(candidate.violated for candidate in candidates))
            generation += 1

        violations = [candidate for candidate in candidates if candidate.violated]
        # Shrink the worst few *distinct* violating cells (score desc, then
        # discovery order for determinism among ties).
        targets: List[Candidate] = []
        seen_keys = set()
        for candidate in sorted(violations, key=lambda c: (-c.score, c.index)):
            if candidate.key in seen_keys:
                continue
            seen_keys.add(candidate.key)
            targets.append(candidate)
            if len(targets) >= config.max_counterexamples:
                break

        promoted_keys = set()
        for candidate in targets:
            shrunk, trail = shrink_counterexample(
                candidate.task, objective, evaluator.evaluate_one,
                emit=emit, budget=config.shrink_budget)
            # Distinct violations can shrink to the same minimal cell; promote
            # (and journal) each minimal cell once per campaign.
            if shrunk.cell_key() in promoted_keys:
                continue
            promoted_keys.add(shrunk.cell_key())
            row = evaluator.evaluate_one(shrunk)
            entry = promote_counterexample(
                promote_dir, shrunk, row,
                experiment=config.experiment, objective=objective,
                score=objective(row),
                source={"key": candidate.key, "index": candidate.index,
                        "score": candidate.score, "actions": candidate.actions,
                        "shrink_attempts": len(trail),
                        "shrink_accepted": sum(step["accepted"] for step in trail)})
            counterexamples.append(entry)
            emit({"phase": "promote", "id": entry["id"], "key": entry["key"],
                  "from": candidate.key, "score": entry["score"],
                  "shrink_attempts": len(trail),
                  "shrink_accepted": sum(step["accepted"] for step in trail)})

    wall_clock_s = time.perf_counter() - start
    summary = {
        "experiment": config.experiment,
        "objective": objective.name,
        "threshold": objective.threshold,
        "strategy": strategy.name,
        "budget": config.budget,
        "campaign_seed": config.campaign_seed,
        "candidates": len(candidates),
        "unique_cells": len({candidate.key for candidate in candidates}),
        "violations_found": len(violations),
        "best_score": max((candidate.score for candidate in candidates), default=0.0),
        "counterexamples": [{"id": entry["id"], "key": entry["key"],
                             "score": entry["score"], "source": entry["source"]}
                            for entry in counterexamples],
        "computed_cells": evaluator.computed,
        "cached_cells": evaluator.cached,
        "wall_clock_s": wall_clock_s,
        "falsify_cells_per_sec": (evaluator.computed / wall_clock_s
                                  if wall_clock_s > 0 else 0.0),
        "store": str(store.path),
        "counterexample_store": str(promote_dir),
        "journal": str(journal_path),
    }
    (store.path / SUMMARY_FILENAME).write_text(
        json.dumps(canonical_json(summary), indent=2, sort_keys=True) + "\n")
    log.info("falsify_done", logger="falsify", experiment=config.experiment,
             violations=len(violations), counterexamples=len(counterexamples),
             computed=evaluator.computed, cached=evaluator.cached,
             wall_clock_s=wall_clock_s)
    return summary
