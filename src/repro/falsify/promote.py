"""Promotion of shrunk counterexamples into a replayable regression store.

A counterexample store is a directory holding two files:

``counterexamples.jsonl``
    One JSON line per promoted counterexample: a short content id (digest of
    the shrunk cell key), the objective and threshold it violates, the score,
    the scenario spec, the full :func:`~repro.falsify.scenario.task_to_json`
    replay payload, and the shrink provenance.  Append-only and id-deduped,
    so re-running a campaign promotes each distinct cell once.

``records.jsonl``
    A plain :class:`~repro.harness.store.RunStore` holding the shrunk cells'
    rows — which is what lets ``benchjson --store-diff`` gate a committed
    golden counterexample store exactly like the other golden stores.

``python -m repro falsify --check [DIR]`` replays every promoted cell from
its task payload (:func:`check_counterexamples`) and passes only when the
objective is *still* violated and the fresh row is byte-identical to the
stored one — the regression gate that keeps found-and-fixed bugs fixed and
keeps still-open counterexamples honest.
"""

from __future__ import annotations

import json
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional

from repro.falsify.objective import Objective, resolve_objective
from repro.falsify.scenario import task_from_json, task_to_json
from repro.harness.parallel import ExperimentTask, ParallelRunner, run_task
from repro.harness.registry import pretrain_models
from repro.harness.store import RunRecord, RunStore, canonical_json, current_commit

__all__ = [
    "COUNTEREXAMPLES_FILENAME",
    "DEFAULT_COUNTEREXAMPLES_DIR",
    "check_counterexamples",
    "counterexample_id",
    "load_counterexamples",
    "promote_counterexample",
]

COUNTEREXAMPLES_FILENAME = "counterexamples.jsonl"

#: Where ``python -m repro falsify --check`` looks when given no directory.
DEFAULT_COUNTEREXAMPLES_DIR = Path("counterexamples")


def counterexample_id(key: str) -> str:
    """A short stable content id for one counterexample (digest of its cell key)."""
    return sha256(key.encode("utf-8")).hexdigest()[:12]


def load_counterexamples(path: str | Path) -> List[Dict]:
    """Every promoted counterexample entry, in promotion order (id-deduped)."""
    path = Path(path)
    entries_path = path / COUNTEREXAMPLES_FILENAME if path.is_dir() else path
    if not entries_path.exists():
        return []
    entries: List[Dict] = []
    seen = set()
    for line_number, line in enumerate(entries_path.read_text().split("\n"), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            entry = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{entries_path}:{line_number}: invalid counterexample "
                             f"entry: {exc}") from exc
        for required in ("id", "key", "objective", "threshold", "task"):
            if required not in entry:
                raise ValueError(f"{entries_path}:{line_number}: counterexample "
                                 f"entry is missing {required!r}")
        if entry["id"] not in seen:
            seen.add(entry["id"])
            entries.append(entry)
    return entries


def promote_counterexample(path: str | Path, task: ExperimentTask, row: Dict, *,
                           experiment: str, objective: Objective, score: float,
                           source: Optional[Dict] = None) -> Dict:
    """Promote one shrunk counterexample into the regression store at ``path``.

    Idempotent per cell: an id already promoted is not re-appended (and its
    stored row is left untouched), so repeated campaigns — including the
    byte-identical replays the determinism tests run — converge to one entry
    per distinct counterexample.  Returns the entry (existing or fresh).
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    key = task.cell_key()
    entry = {
        "id": counterexample_id(key),
        "experiment": experiment,
        "objective": objective.name,
        "threshold": objective.threshold,
        "score": float(score),
        "key": key,
        "scenario": task.scenario().key(),
        "spec": task.scenario().to_json(),
        "task": task_to_json(task),
        "source": dict(source or {}),
        "commit": current_commit(),
    }
    entry = canonical_json(entry)
    existing = {existing_entry["id"]: existing_entry
                for existing_entry in load_counterexamples(path)}
    if entry["id"] in existing:
        return existing[entry["id"]]
    with (path / COUNTEREXAMPLES_FILENAME).open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    store = RunStore(path)
    if key not in store:
        store.put(RunRecord.for_task(task, row, experiment=f"falsify:{experiment}",
                                     producer="falsify-promote"))
    return entry


def check_counterexamples(path: str | Path, jobs: int = 1) -> Dict:
    """Replay every promoted counterexample; the ``falsify --check`` gate.

    Each entry's task payload is rebuilt and re-run; it passes only when the
    objective is still violated (the counterexample is still real — a fix
    that heals it should retire the entry deliberately, not silently) *and*
    the fresh row matches the stored record byte-for-byte (the same
    exactness bar as the committed golden stores).  An empty or missing
    store passes trivially with zero results.
    """
    path = Path(path)
    entries = load_counterexamples(path)
    if not entries:
        return {"path": str(path), "results": [], "passed": True}
    tasks = [task_from_json(entry["task"]) for entry in entries]
    pretrain_models(tasks)
    stored = RunStore(path).load()
    rows = ParallelRunner(jobs).map(run_task, tasks)
    results = []
    for entry, task, row in zip(entries, tasks, rows):
        objective = resolve_objective(entry["objective"],
                                      threshold=entry["threshold"])
        row = canonical_json(row)
        score = objective(row)
        still_violated = objective.violated(row)
        record = stored.get(entry["key"])
        row_matches = record is not None and record.row == row
        results.append({
            "id": entry["id"],
            "objective": entry["objective"],
            "key": entry["key"],
            "score": score,
            "threshold": entry["threshold"],
            "still_violated": still_violated,
            "row_matches": row_matches,
            "passed": still_violated and row_matches,
        })
    return {"path": str(path), "results": results,
            "passed": all(result["passed"] for result in results)}
