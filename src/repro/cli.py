"""Command-line interface for the Canopy reproduction.

Usage (after ``pip install -e .``)::

    python -m repro list-traces
    python -m repro train --kind canopy-shallow --steps 800 --out model.npz
    python -m repro evaluate --kind canopy-shallow --steps 400 --trace step-12-48
    python -m repro certify --kind canopy-shallow --steps 400 --trace step-12-48
    python -m repro figure 5          # regenerate one evaluation figure
    python -m repro figure 9 --jobs 4 # shard the grid over 4 worker processes
    python -m repro figure topology   # sweep the multi-bottleneck families
    python -m repro run --list        # registered experiments + their axes
    python -m repro run topology_sweep --set seeds=0..4 --jobs 4 --resume
    python -m repro run topology_generalization --set trace=cellular --set seeds=0..2
    python -m repro run workload_stress --set workload=poisson(0.1) --set topology=fan_in(3)
    python -m repro serve workload_stress --store runs/stress --workers 4
    python -m repro serve workload_stress --store runs/stress --http 8080
    python -m repro status runs/stress     # live, from the lease journal
    python -m repro status runs/stress --watch --interval 1
    python -m repro run topology_sweep --profile   # tick-phase cost table
    python -m repro compare-classical --buffer-bdp 1.0 --jobs 0
    python -m repro evaluate --topology "chain(3)" --trace step-12-48
    python -m repro evaluate --topology "fan_in(3)" --workload "responsive(cubic:2)"
    python -m repro run workload_stress --set telemetry=on(10) --store runs/traced
    python -m repro trace runs/traced --events fallback,drop
    python -m repro falsify workload_stress --objective fallback_storm \\
        --budget 30 --store runs/falsify-demo --jobs 2
    python -m repro falsify report runs/falsify-demo
    python -m repro falsify --check runs/falsify-demo/counterexamples

``run`` is the generic front door: any experiment registered in
:data:`repro.harness.registry.REGISTRY` runs with per-axis ``--set``
overrides, per-cell persistence to a :class:`~repro.harness.store.RunStore`
(``--store DIR``), and ``--resume`` (skip cells already stored; an
interrupted sweep continues where it stopped, with rows byte-identical to an
uninterrupted run).  ``serve`` runs the same grids across a lease-based
worker fleet that survives worker crashes (:mod:`repro.serve`), and
``status`` renders live progress from the store's lease journal.  The
registry-backed ``figure`` ids route through the same resumable store
(default ``runs/<experiment>``), so re-rendering a figure recomputes only
missing cells.  The ``experiment`` subcommand is a deprecated alias of
``run`` kept for compatibility; it warns through the telemetry log.
``trace`` renders the telemetry of a store produced with
``--set telemetry=on``: per-cell event timelines and ``tele_*`` summaries.
``falsify`` searches the scenario space of a registered experiment for
counterexamples, shrinks them, and promotes them into a replayable
regression store (see :mod:`repro.falsify`).

Diagnostics go through :mod:`repro.telemetry.log`: ``--quiet`` silences
everything below ERROR, ``-v`` surfaces INFO, ``-vv`` DEBUG.  Command
*results* (tables, store paths, verdicts) always print — quiet mode mutes
commentary, not deliverables.

Every subcommand is a thin wrapper over the public library API, so anything
the CLI does can also be done programmatically (see the examples/ scripts).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.falsify.objective import objective_names, resolve_objective
from repro.falsify.promote import DEFAULT_COUNTEREXAMPLES_DIR, check_counterexamples
from repro.falsify.report import format_report, read_campaign, report_stats
from repro.falsify.search import STRATEGIES, CampaignConfig, run_campaign
from repro.harness import experiments
from repro.harness.evaluate import (
    EvaluationSettings,
    evaluate_qcsat,
    run_schemes_sharded,
)
from repro.harness.models import DEFAULT_TRAINING_STEPS, MODEL_KINDS, get_trained_model
from repro.harness.registry import REGISTRY, parse_set_overrides
from repro.harness.reporting import format_rows, print_experiment
from repro.harness.spec import parse_topologies, resolve_trace
from repro.harness.store import RECORDS_FILENAME, RunStore
from repro.nn.serialization import save_weight_dict
from repro.obs.metrics import METRICS_FILENAME
from repro.serve.daemon import (
    DEFAULT_MAX_LEASES,
    DEFAULT_METRICS_INTERVAL,
    serve_experiment,
)
from repro.serve.status import format_status, read_status
from repro.telemetry import log
from repro.telemetry.events import validate_events
from repro.telemetry.log import console
from repro.telemetry.render import render_summary, render_timeline, resolve_groups
from repro.topology.families import topology_family_specs
from repro.workload.spec import workload_specs
from repro.traces.cellular import CELLULAR_TRACE_NAMES
from repro.traces.synthetic import SYNTHETIC_TRACE_NAMES, make_synthetic_trace

__all__ = ["main", "build_parser"]

#: Default run-store root used by ``python -m repro run --resume`` when no
#: explicit ``--store`` is given (one store per experiment name).
DEFAULT_STORE_ROOT = Path("runs")

#: Experiment drivers reachable through ``python -m repro figure <id>``.
FIGURE_DRIVERS: Dict[str, Callable[..., dict]] = {
    "1": experiments.motivation_noise,
    "2": experiments.motivation_bad_state,
    "5": experiments.qcsat_buffers,
    "6": experiments.certified_components,
    "7": experiments.qcsat_robustness,
    "9": lambda **kw: experiments.performance_sweep(buffer_bdp=1.0, **kw),
    "10": lambda **kw: experiments.performance_sweep(buffer_bdp=5.0, canopy_kind="canopy-deep", **kw),
    "11": experiments.noise_sensitivity,
    "12": experiments.realworld_deployment,
    "13": experiments.fallback_runtime,
    # These wrappers take named kwargs only (no **kw) so cmd_figure's
    # signature check correctly sees that they cannot use --jobs.
    "16": lambda training_steps=300, seed=1: experiments.sensitivity(
        seed=seed, training_steps=training_steps),
    "topology": experiments.topology_sweep,
    "17": experiments.training_curves,
    "table4": lambda training_steps=150, seed=1: experiments.verification_overhead(
        training_steps=training_steps, seed=seed),
}

#: Figure ids whose drivers are registered experiments: id → (experiment
#: name, axis overrides the figure bakes in).  ``cmd_figure`` routes these
#: through the resumable run-store front door (default store
#: ``runs/<experiment>``), so re-rendering recomputes only missing cells.
FIGURE_EXPERIMENTS: Dict[str, tuple] = {
    "5": ("qcsat_buffers", {}),
    "7": ("qcsat_robustness", {}),
    "9": ("performance_sweep", {}),
    "10": ("performance_sweep", {"buffer_bdp": 5.0, "canopy_kind": "canopy-deep"}),
    "12": ("realworld_deployment", {}),
    "13": ("fallback_runtime", {}),
    "topology": ("topology_sweep", {}),
}

#: Named experiment drivers reachable through the deprecated
#: ``python -m repro experiment <name>`` alias (use ``run`` instead; every
#: driver here is a thin shim over the registry already).
EXPERIMENT_DRIVERS: Dict[str, Callable[..., dict]] = {
    "topology_sweep": experiments.topology_sweep,
    "topology_generalization": experiments.topology_generalization,
    "workload_stress": experiments.workload_stress,
    "friendliness": experiments.friendliness_grid,
    "fairness": experiments.fairness_grid,
}


def _get_trace(name: str):
    try:
        return resolve_trace(name)
    except ValueError:
        raise SystemExit(f"unknown trace {name!r}; run 'python -m repro list-traces'") from None


# ---------------------------------------------------------------------- #
# Subcommand implementations
# ---------------------------------------------------------------------- #
def cmd_list_traces(_args: argparse.Namespace) -> int:
    console("Synthetic traces (18):")
    for name in SYNTHETIC_TRACE_NAMES:
        console(f"  {name}")
    console("Cellular-like traces (3):")
    for name in CELLULAR_TRACE_NAMES:
        console(f"  {name}")
    console("Topology families (pass to --topology, e.g. chain(3)):")
    for spec in topology_family_specs():
        console(f"  {spec}")
    console("Workload specs (pass to --workload, e.g. poisson(0.1)):")
    for spec in workload_specs():
        console(f"  {spec}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    model = get_trained_model(args.kind, training_steps=args.steps, seed=args.seed,
                              lam=args.lam, n_components=args.components)
    metrics = model.training.final_metrics()
    console(f"trained {args.kind} for {args.steps} steps "
            f"(raw reward {metrics['raw_reward']:.3f}, verifier reward {metrics['verifier_reward']:.3f})")
    if args.out:
        path = save_weight_dict(model.training.agent.get_weights(), args.out)
        console(f"saved agent weights to {path}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    trace = _get_trace(args.trace)
    settings = EvaluationSettings(duration=args.duration, buffer_bdp=args.buffer_bdp,
                                  min_rtt=args.rtt, topology=args.topology,
                                  workload=args.workload, seed=args.seed)
    # Train in-process first so pool workers inherit the warm model cache.
    get_trained_model(args.kind, training_steps=args.steps, seed=args.seed)
    grid = run_schemes_sharded({args.kind: args.kind, "cubic": None}, [trace], settings,
                               n_jobs=args.jobs, training_steps=args.steps, model_seed=args.seed)
    console(format_rows(grid.rows, columns=["scheme", "utilization", "avg_queuing_delay_ms",
                                            "p95_queuing_delay_ms", "loss_rate"]))
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    trace = _get_trace(args.trace)
    settings = EvaluationSettings(duration=args.duration, buffer_bdp=args.buffer_bdp,
                                  min_rtt=args.rtt, topology=args.topology,
                                  workload=args.workload, seed=args.seed)
    model = get_trained_model(args.kind, training_steps=args.steps, seed=args.seed)
    qcsat = evaluate_qcsat(model, trace, settings, n_components=args.components or 50)
    console(f"QC_sat for {args.kind} on {trace.name}: {qcsat.mean:.3f} +/- {qcsat.std:.3f} "
            f"({qcsat.n_decisions} decisions, properties {qcsat.property_names})")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    if args.figure_id in FIGURE_EXPERIMENTS:
        # Registry-backed figures regenerate through the resumable store:
        # every completed cell persists, and re-rendering (same store)
        # recomputes only what is missing.  --fresh forces a full recompute.
        name, baked = FIGURE_EXPERIMENTS[args.figure_id]
        overrides = {"training_steps": args.steps, "seeds": (args.seed,), **baked}
        store = RunStore(args.store if args.store is not None
                         else DEFAULT_STORE_ROOT / name)
        result = REGISTRY.run(name, overrides, n_jobs=args.jobs,
                              store=store, resume=not args.fresh)
        print_experiment(f"Figure/table {args.figure_id}", result)
        console(f"store: {store.records_path} ({len(store)} records)")
        return 0
    driver = FIGURE_DRIVERS.get(args.figure_id)
    if driver is None:
        raise SystemExit(f"no driver for figure {args.figure_id!r}; "
                         f"known: {', '.join(sorted(FIGURE_DRIVERS))}")
    kwargs = {"training_steps": args.steps, "seed": args.seed}
    # Grid-shaped drivers shard over a process pool; pass --jobs through to
    # the ones that support it and stay serial for the rest.
    parameters = inspect.signature(driver).parameters
    if "n_jobs" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD for parameter in parameters.values()
    ):
        kwargs["n_jobs"] = args.jobs
    result = driver(**kwargs)
    print_experiment(f"Figure/table {args.figure_id}", result)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Deprecated alias of ``run`` (every driver is a registry shim now)."""
    driver = EXPERIMENT_DRIVERS.get(args.name)
    if driver is None:
        raise SystemExit(f"no experiment named {args.name!r}; "
                         f"known: {', '.join(sorted(EXPERIMENT_DRIVERS))}")
    log.warn("experiment_deprecated", logger="cli", name=args.name,
             replacement=f"python -m repro run {args.name}",
             detail="the 'experiment' subcommand is a deprecated alias of "
                    "'run' and will be removed; 'run' adds --set axis "
                    "overrides, --store persistence and --resume")
    kwargs = {"training_steps": args.steps, "seed": args.seed, "n_jobs": args.jobs}
    parameters = inspect.signature(driver).parameters
    if args.duration is not None and "duration" in parameters:
        kwargs["duration"] = args.duration
    if args.families is not None and "families" in parameters:
        kwargs["families"] = parse_topologies(args.families)
    result = driver(**kwargs)
    print_experiment(f"Experiment {args.name}", result)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve one experiment grid across a lease-based worker fleet."""
    try:
        REGISTRY.get(args.name)  # validate the name before mkdir'ing a store
        overrides = parse_set_overrides(args.set or [])
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    store = RunStore(args.store if args.store is not None
                     else DEFAULT_STORE_ROOT / args.name)
    try:
        result = serve_experiment(args.name, overrides, store=store,
                                  workers=args.workers, ttl_s=args.ttl,
                                  resume=not args.fresh,
                                  chaos_kill=args.chaos_kill,
                                  max_leases=args.max_leases,
                                  timeout_s=args.timeout,
                                  metrics_interval=args.metrics_interval,
                                  http_port=args.http)
    except (ValueError, RuntimeError, TimeoutError) as exc:
        raise SystemExit(str(exc)) from None
    print_experiment(f"Serve {args.name}", result)
    console(f"store: {store.records_path} ({len(store)} records)")
    console(f"served: {result['served_cells']} cell(s) by {result['workers']} "
            f"worker(s), {result['reclaims']} reclaim(s), "
            f"{result['cells_per_sec']:.2f} cells/s")
    if result.get("metrics_frames"):
        console(f"metrics: {result['metrics_frames']} frame(s) in "
                f"{store.path / METRICS_FILENAME}")
    if args.profile:
        from repro.obs.aggregate import (fleet_phase_report, fleet_rollup,
                                         format_phase_table)
        from repro.obs.metrics import MetricsJournal

        frames = MetricsJournal(store.path).read()
        if frames:
            fleet = fleet_rollup(frames)["fleet"]
            console(format_phase_table(fleet_phase_report(fleet)))
        else:
            console("profile: no metric frames recorded "
                    "(is --metrics-interval 0?)")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Render live serve progress replayed from a store's lease journal."""
    while True:
        try:
            status = read_status(args.store)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        if args.json:
            # The exact structure GET /status serves, for scripting.
            console(json.dumps(status, indent=2, sort_keys=True))
        else:
            if args.watch and sys.stdout.isatty():
                console("\x1b[2J\x1b[H" + format_status(status))
            else:
                console(format_status(status))
        if not args.watch or not status.get("running"):
            return 0
        time.sleep(args.interval)


def cmd_run(args: argparse.Namespace) -> int:
    """The generic experiment front door (registry + resumable run store)."""
    if args.list or args.name is None:
        console("Registered experiments (python -m repro run <name> --set axis=value ...):")
        for entry in REGISTRY.describe():
            console(f"  {entry['experiment']}: {entry['description']}")
            for axis, default in entry["axes"].items():
                console(f"      --set {axis}={default!r}")
        return 0
    try:
        REGISTRY.get(args.name)  # validate the name before mkdir'ing a store
        overrides = parse_set_overrides(args.set or [])
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    store = None
    if args.store is not None:
        store = RunStore(args.store)
    elif args.resume:
        store = RunStore(DEFAULT_STORE_ROOT / args.name)
    try:
        result = REGISTRY.run(args.name, overrides, n_jobs=args.jobs,
                              store=store, resume=args.resume,
                              profile=args.profile)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print_experiment(f"Run {args.name}", result)
    if store is not None:
        console(f"store: {store.records_path} ({len(store)} records)")
    if args.resume and result["computed_cells"] == 0:
        console(f"resume: all {result['cached_cells']} cells cached")
    if args.profile and "profile" in result:
        from repro.obs.aggregate import format_phase_table

        console(format_phase_table(result["profile"]))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render the telemetry of a run store: per-cell timelines and summaries."""
    store_path = Path(args.store)
    if not (store_path / RECORDS_FILENAME).is_file():
        raise SystemExit(f"{store_path}: not a run store (no {RECORDS_FILENAME})")
    groups = None
    if args.events:
        try:
            groups = resolve_groups(
                [name.strip() for name in args.events.split(",") if name.strip()])
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    store = RunStore(store_path)
    traced = [record for record in store.records()
              if record.row.get("telemetry_events")]
    if args.cell is not None:
        selected = [record for record in traced if args.cell in record.key]
        if not selected:
            raise SystemExit(
                f"no traced cell matching {args.cell!r}; traced cells:\n"
                + ("\n".join(f"  {record.key}" for record in traced) or "  (none)"))
    else:
        selected = traced
    if not selected:
        console(f"{store.records_path}: no traced cells among {len(store)} records "
                f"(produce one with --set telemetry=on)")
        return 1
    for record in selected:
        events = record.row["telemetry_events"]
        if args.validate:
            try:
                validate_events(events)
            except ValueError as exc:
                console(f"cell: {record.key}")
                console(f"INVALID trace: {exc}")
                return 1
        console(f"cell: {record.key} ({len(events)} events"
                + (", schema valid" if args.validate else "") + ")")
        console(render_timeline(events, width=args.width, groups=groups))
        console(render_summary(record.row))
        console()
    console(f"{len(selected)} traced cell(s) of {len(store)} records in {store_path}")
    return 0


def cmd_falsify(args: argparse.Namespace) -> int:
    """Falsification front door: campaign, ``report <store>``, or ``--check``."""
    if args.check is not None:
        try:
            result = check_counterexamples(args.check, jobs=args.jobs)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        if not result["results"]:
            console(f"{args.check}: no promoted counterexamples (nothing to replay)")
            return 0
        for replay in result["results"]:
            status = "PASS" if replay["passed"] else (
                "STALE ROW" if replay["still_violated"] else "NOT VIOLATED")
            console(f"  {replay['id']} {status} [{replay['objective']}] "
                    f"score={replay['score']:.4f} (threshold {replay['threshold']:g}) "
                    f"{replay['key']}")
        verdict = "all green" if result["passed"] else "FAILURES"
        console(f"counterexample check: {len(result['results'])} replayed, {verdict}")
        return 0 if result["passed"] else 1
    if args.target == "report":
        if args.report_store is None:
            raise SystemExit("usage: python -m repro falsify report <store>")
        try:
            report = read_campaign(args.report_store)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        if args.json:
            console(json.dumps(report_stats(report), indent=2, sort_keys=True))
        else:
            console(format_report(report))
        return 0
    if args.target is None:
        raise SystemExit(
            "usage: python -m repro falsify <experiment> [--objective NAME ...]\n"
            "       python -m repro falsify report <store>\n"
            "       python -m repro falsify --check [COUNTEREXAMPLES_DIR]")
    try:
        REGISTRY.get(args.target)  # validate the name before mkdir'ing a store
        objective = resolve_objective(args.objective, threshold=args.threshold)
        config = CampaignConfig(
            experiment=args.target,
            objective=objective,
            budget=args.budget,
            strategy=args.strategy,
            campaign_seed=args.campaign_seed,
            jobs=args.jobs,
            overrides=parse_set_overrides(args.set or []),
            monitor_threshold=args.monitor_threshold,
            max_counterexamples=args.max_counterexamples,
            promote_to=Path(args.promote_to) if args.promote_to else None,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    store = RunStore(args.store if args.store is not None
                     else DEFAULT_STORE_ROOT / f"falsify_{args.target}")
    try:
        summary = run_campaign(config, store)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    console(f"falsify {summary['experiment']} [{summary['objective']}"
            f"/{summary['strategy']}]: {summary['candidates']} candidate(s), "
            f"{summary['violations_found']} violation(s), "
            f"best score {summary['best_score']:.4f}")
    console(f"cells: {summary['computed_cells']} computed, "
            f"{summary['cached_cells']} cached, "
            f"{summary['falsify_cells_per_sec']:.2f} cells/s")
    for entry in summary["counterexamples"]:
        source = entry["source"]
        console(f"  counterexample {entry['id']} score={entry['score']:.4f} "
                f"({source.get('shrink_accepted', 0)} of "
                f"{source.get('shrink_attempts', 0)} reductions accepted)")
        console(f"    {entry['key']}")
    console(f"{len(summary['counterexamples'])} counterexample(s) promoted to "
            f"{summary['counterexample_store']}")
    console(f"store: {store.records_path} ({len(store)} records) · "
            f"journal: {summary['journal']}")
    console(f"replay the regression gate: python -m repro falsify --check "
            f"{summary['counterexample_store']}")
    return 0


def cmd_compare_classical(args: argparse.Namespace) -> int:
    traces = [make_synthetic_trace(name) for name in SYNTHETIC_TRACE_NAMES[:args.traces]]
    settings = EvaluationSettings(duration=args.duration, buffer_bdp=args.buffer_bdp,
                                  topology=args.topology, workload=args.workload,
                                  seed=args.seed)
    scheme_kinds = {scheme: None for scheme in ("cubic", "newreno", "vegas", "bbr")}
    grid = run_schemes_sharded(scheme_kinds, traces, settings, n_jobs=args.jobs)
    # Present grouped by scheme (the grid enumerates trace-major).
    rows = sorted(grid.rows, key=lambda row: list(scheme_kinds).index(row["scheme"]))
    console(format_rows(rows, columns=["scheme", "trace", "utilization",
                                       "avg_queuing_delay_ms", "p95_queuing_delay_ms",
                                       "loss_rate"]))
    return 0


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #
def _add_common_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kind", default="canopy-shallow", choices=sorted(MODEL_KINDS),
                        help="which learned model to use")
    parser.add_argument("--steps", type=int, default=DEFAULT_TRAINING_STEPS,
                        help="training budget in environment steps")
    parser.add_argument("--seed", type=int, default=1)


def _add_common_eval_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default="step-12-48", help="trace name (see list-traces)")
    parser.add_argument("--duration", type=float, default=15.0)
    parser.add_argument("--buffer-bdp", dest="buffer_bdp", type=float, default=1.0)
    parser.add_argument("--rtt", type=float, default=0.04, help="end-to-end propagation RTT in seconds")
    _add_topology_argument(parser)


def _add_topology_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="single_bottleneck",
                        help="topology family spec, e.g. single_bottleneck, chain(3), "
                             "parking_lot(3), dumbbell, fan_in(3), shared_segment "
                             "(see list-traces)")
    parser.add_argument("--workload", default="static",
                        help="workload spec, e.g. static, responsive(cubic:2), "
                             "poisson(0.1), step(2-6) (see list-traces)")


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for grid experiments (1 = serial, 0 = one per CPU)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="Canopy reproduction command-line interface")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="silence diagnostics below ERROR (results still print)")
    parser.add_argument("--verbose", "-v", action="count", default=0,
                        help="surface INFO diagnostics (-vv for DEBUG)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list-traces", help="list available workload traces")
    list_parser.set_defaults(handler=cmd_list_traces)

    train_parser = subparsers.add_parser("train", help="train a Canopy/Orca model")
    _add_common_model_arguments(train_parser)
    train_parser.add_argument("--lam", type=float, default=None, help="override lambda")
    train_parser.add_argument("--components", type=int, default=None, help="override N")
    train_parser.add_argument("--out", default=None, help="save agent weights to this .npz path")
    train_parser.set_defaults(handler=cmd_train)

    eval_parser = subparsers.add_parser("evaluate", help="run a model (and CUBIC) over a trace")
    _add_common_model_arguments(eval_parser)
    _add_common_eval_arguments(eval_parser)
    _add_jobs_argument(eval_parser)
    eval_parser.set_defaults(handler=cmd_evaluate)

    certify_parser = subparsers.add_parser("certify", help="compute QC_sat over a trace")
    _add_common_model_arguments(certify_parser)
    _add_common_eval_arguments(certify_parser)
    certify_parser.add_argument("--components", type=int, default=50)
    certify_parser.set_defaults(handler=cmd_certify)

    figure_parser = subparsers.add_parser("figure", help="regenerate one evaluation figure/table")
    figure_parser.add_argument("figure_id",
                               help="1, 2, 5, 6, 7, 9, 10, 11, 12, 13, 16, 17, table4 or topology")
    figure_parser.add_argument("--steps", type=int, default=400)
    figure_parser.add_argument("--seed", type=int, default=1)
    figure_parser.add_argument("--store", default=None, metavar="DIR",
                               help="run store for registry-backed figures "
                                    "(default: runs/<experiment>)")
    figure_parser.add_argument("--fresh", action="store_true",
                               help="recompute every cell even if the store "
                                    "already holds it")
    _add_jobs_argument(figure_parser)
    figure_parser.set_defaults(handler=cmd_figure)

    run_parser = subparsers.add_parser(
        "run", help="run any registered experiment (generic axes, resumable store)")
    run_parser.add_argument("name", nargs="?", default=None,
                            help="registered experiment name (omit with --list)")
    run_parser.add_argument("--set", action="append", default=[], metavar="AXIS=VALUE",
                            help="override one experiment axis; repeatable "
                                 "(lists are comma-separated, int ranges use a..b, "
                                 "e.g. --set seeds=0..9 --set trace=cellular)")
    run_parser.add_argument("--list", action="store_true",
                            help="list registered experiments and their axes")
    run_parser.add_argument("--store", default=None, metavar="DIR",
                            help="persist one RunRecord per completed cell to this "
                                 "run-store directory")
    run_parser.add_argument("--resume", action="store_true",
                            help="skip cells already in the run store "
                                 "(default store: runs/<experiment>)")
    run_parser.add_argument("--profile", action="store_true",
                            help="profile simulator tick phases per cell and "
                                 "print the phase table (rows are unchanged; "
                                 "with --store, frames also stream to the "
                                 "store's metrics.jsonl)")
    _add_jobs_argument(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    serve_parser = subparsers.add_parser(
        "serve", help="serve an experiment grid to a crash-surviving worker fleet")
    serve_parser.add_argument("name", help="registered experiment name (see run --list)")
    serve_parser.add_argument("--set", action="append", default=[], metavar="AXIS=VALUE",
                              help="override one experiment axis; repeatable "
                                   "(same syntax as 'run')")
    serve_parser.add_argument("--store", default=None, metavar="DIR",
                              help="run-store directory; its leases.jsonl is the "
                                   "live status surface (default: runs/<experiment>)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="fleet size (0 computes inline, no processes)")
    serve_parser.add_argument("--ttl", type=float, default=10.0,
                              help="lease TTL in seconds; a lease not heartbeat-"
                                   "renewed for this long is reclaimed")
    serve_parser.add_argument("--max-leases", dest="max_leases", type=int,
                              default=DEFAULT_MAX_LEASES,
                              help="reclaim budget per cell before it is marked failed")
    serve_parser.add_argument("--timeout", type=float, default=900.0,
                              help="overall wall-clock guard in seconds")
    serve_parser.add_argument("--fresh", action="store_true",
                              help="recompute cells already in the store")
    serve_parser.add_argument("--chaos-kill", dest="chaos_kill", type=int,
                              default=None, metavar="N",
                              help="fault injection: the first worker SIGKILLs "
                                   "itself upon receiving its N-th cell "
                                   "(exercises the reclaim path; CI smoke)")
    serve_parser.add_argument("--http", type=int, default=None, metavar="PORT",
                              help="serve GET /status, /metrics (Prometheus "
                                   "exposition) and /cells/<key> on this port "
                                   "while the daemon runs (0 picks a free port)")
    serve_parser.add_argument("--metrics-interval", dest="metrics_interval",
                              type=float, default=DEFAULT_METRICS_INTERVAL,
                              metavar="S",
                              help="worker metric-frame sampling period in "
                                   "seconds, streamed to the store's "
                                   "metrics.jsonl (0 disables the stream)")
    serve_parser.add_argument("--profile", action="store_true",
                              help="print the fleet's tick-phase table after "
                                   "the grid (from the metrics stream)")
    serve_parser.set_defaults(handler=cmd_serve)

    status_parser = subparsers.add_parser(
        "status", help="show serve progress live from a store's lease journal")
    status_parser.add_argument("store", help="run-store directory being (or once) served")
    status_parser.add_argument("--json", action="store_true",
                               help="emit the status dict as JSON (the same "
                                    "structure GET /status serves)")
    status_parser.add_argument("--watch", action="store_true",
                               help="re-render until the serve session finishes")
    status_parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                               help="refresh period for --watch (default 2s)")
    status_parser.set_defaults(handler=cmd_status)

    experiment_parser = subparsers.add_parser(
        "experiment", help="deprecated alias of 'run' (named grid experiments)")
    experiment_parser.add_argument("name",
                                   help="experiment name, e.g. topology_generalization "
                                        "or topology_sweep")
    experiment_parser.add_argument("--steps", type=int, default=300,
                                   help="training budget in environment steps")
    experiment_parser.add_argument("--seed", type=int, default=1)
    experiment_parser.add_argument("--duration", type=float, default=None,
                                   help="per-cell run length in seconds (driver default if omitted)")
    experiment_parser.add_argument("--families", default=None,
                                   help="comma-separated topology family specs "
                                        "(driver default if omitted)")
    _add_jobs_argument(experiment_parser)
    experiment_parser.set_defaults(handler=cmd_experiment)

    classical_parser = subparsers.add_parser("compare-classical",
                                             help="compare the classical controllers (no learning)")
    classical_parser.add_argument("--traces", type=int, default=3)
    classical_parser.add_argument("--duration", type=float, default=15.0)
    classical_parser.add_argument("--buffer-bdp", dest="buffer_bdp", type=float, default=1.0)
    _add_topology_argument(classical_parser)
    classical_parser.add_argument("--seed", type=int, default=1)
    _add_jobs_argument(classical_parser)
    classical_parser.set_defaults(handler=cmd_compare_classical)

    falsify_parser = subparsers.add_parser(
        "falsify", help="search the scenario space for counterexamples "
                        "(and replay promoted ones)")
    falsify_parser.add_argument("target", nargs="?", default=None,
                                help="registered experiment name to falsify, or "
                                     "'report' to summarize a campaign store")
    falsify_parser.add_argument("report_store", nargs="?", default=None,
                                help="campaign store directory (report mode only)")
    falsify_parser.add_argument("--objective", default="qc_gap",
                                help="falsification objective: "
                                     + ", ".join(objective_names()))
    falsify_parser.add_argument("--threshold", type=float, default=None,
                                help="override the objective's violation threshold")
    falsify_parser.add_argument("--budget", type=int, default=40,
                                help="candidate cells the search may propose")
    falsify_parser.add_argument("--strategy", default="evolve",
                                choices=sorted(STRATEGIES),
                                help="search strategy (default: evolve)")
    falsify_parser.add_argument("--store", default=None, metavar="DIR",
                                help="campaign run store (default: "
                                     "runs/falsify_<experiment>)")
    falsify_parser.add_argument("--set", action="append", default=[],
                                metavar="AXIS=VALUE",
                                help="override one experiment axis for the "
                                     "template cell; repeatable (same syntax "
                                     "as 'run')")
    falsify_parser.add_argument("--campaign-seed", dest="campaign_seed", type=int,
                                default=1,
                                help="campaign seed; the whole candidate/shrink "
                                     "journal is a pure function of it")
    falsify_parser.add_argument("--monitor-threshold", dest="monitor_threshold",
                                type=float, default=0.8,
                                help="runtime-monitor veto threshold installed "
                                     "for monitor objectives (default 0.8)")
    falsify_parser.add_argument("--max-counterexamples", dest="max_counterexamples",
                                type=int, default=3,
                                help="distinct violating cells to shrink and "
                                     "promote (default 3)")
    falsify_parser.add_argument("--promote-to", dest="promote_to", default=None,
                                metavar="DIR",
                                help="counterexample regression store "
                                     "(default: <store>/counterexamples)")
    falsify_parser.add_argument("--check", nargs="?",
                                const=str(DEFAULT_COUNTEREXAMPLES_DIR),
                                default=None, metavar="DIR",
                                help="replay a promoted-counterexample store as "
                                     "a regression gate (exit 1 on any failure)")
    falsify_parser.add_argument("--json", action="store_true",
                                help="report mode: emit the flat stats dict "
                                     "instead of the human summary")
    _add_jobs_argument(falsify_parser)
    falsify_parser.set_defaults(handler=cmd_falsify)

    trace_parser = subparsers.add_parser(
        "trace", help="render telemetry event traces from a run store")
    trace_parser.add_argument("store",
                              help="run-store directory produced with --set telemetry=on")
    trace_parser.add_argument("--cell", default=None, metavar="KEY",
                              help="render only cells whose key contains this substring")
    trace_parser.add_argument("--events", default=None, metavar="GROUPS",
                              help="comma-separated event groups to show "
                                   "(fallback, drop, flow, conservation, transit); "
                                   "default: every group with events")
    trace_parser.add_argument("--width", type=int, default=64,
                              help="timeline width in characters (default 64)")
    trace_parser.add_argument("--validate", action="store_true",
                              help="schema-check every rendered trace (exit 1 on drift)")
    trace_parser.set_defaults(handler=cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    log.configure(verbosity=-1 if args.quiet else args.verbose)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
