"""Twin-Delayed Deep Deterministic policy gradient (TD3).

TD3 (Fujimoto et al., 2018) is the learning algorithm behind Orca's
coarse-grained controller and therefore behind Canopy.  The implementation is
self-contained on top of :mod:`repro.nn`:

* a deterministic tanh actor ``π(s) ∈ [-1, 1]^action_dim``,
* twin critics ``Q1, Q2`` with clipped double-Q targets,
* target networks updated by Polyak averaging,
* target-policy smoothing noise,
* delayed (every ``policy_delay`` steps) actor and target updates.

The agent is agnostic to where the reward comes from — Canopy simply feeds it
the QC-shaped reward of Eq. 10 instead of the raw Orca reward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.nn.losses import mse_loss
from repro.nn.mlp import make_actor, make_critic
from repro.nn.optim import Adam
from repro.rl.noise import GaussianNoise
from repro.rl.replay import ReplayBuffer

__all__ = ["TD3Config", "TD3Agent"]


@dataclass
class TD3Config:
    """Hyperparameters for :class:`TD3Agent`."""

    state_dim: int
    action_dim: int = 1
    hidden_sizes: tuple = (64, 32)
    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    gamma: float = 0.99
    tau: float = 0.005
    policy_delay: int = 2
    exploration_sigma: float = 0.1
    target_noise_sigma: float = 0.2
    target_noise_clip: float = 0.5
    batch_size: int = 64
    buffer_capacity: int = 100_000
    warmup_steps: int = 100
    max_action: float = 1.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.state_dim <= 0 or self.action_dim <= 0:
            raise ValueError("state_dim and action_dim must be positive")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if not 0.0 < self.tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        if self.policy_delay <= 0:
            raise ValueError("policy_delay must be positive")


class TD3Agent:
    """TD3 with numpy networks.

    Typical use::

        agent = TD3Agent(TD3Config(state_dim=21))
        action = agent.act(state, explore=True)
        agent.observe(state, action, reward, next_state, done)
        metrics = agent.update()
    """

    def __init__(self, config: TD3Config) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._rng = rng

        self.actor = make_actor(config.state_dim, config.action_dim, config.hidden_sizes, rng=rng)
        self.critic1 = make_critic(config.state_dim, config.action_dim, config.hidden_sizes, rng=rng)
        self.critic2 = make_critic(config.state_dim, config.action_dim, config.hidden_sizes, rng=rng)

        self.target_actor = self.actor.clone()
        self.target_critic1 = self.critic1.clone()
        self.target_critic2 = self.critic2.clone()

        self.actor_optimizer = Adam.for_model(self.actor, lr=config.actor_lr)
        self.critic1_optimizer = Adam.for_model(self.critic1, lr=config.critic_lr)
        self.critic2_optimizer = Adam.for_model(self.critic2, lr=config.critic_lr)

        self.replay = ReplayBuffer(
            config.buffer_capacity, config.state_dim, config.action_dim, seed=config.seed
        )
        self.exploration_noise = GaussianNoise(
            config.action_dim, sigma=config.exploration_sigma, seed=config.seed
        )
        self.total_updates = 0
        self.total_env_steps = 0

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def act(self, state: np.ndarray, explore: bool = False) -> np.ndarray:
        """Deterministic policy action, optionally with exploration noise."""
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        action = self.actor.forward(state)[0]
        if explore:
            action = action + self.exploration_noise.sample()
        return np.clip(action, -self.config.max_action, self.config.max_action)

    def policy(self, state: np.ndarray) -> np.ndarray:
        """Greedy policy callable (no exploration), convenient for rollouts."""
        return self.act(state, explore=False)

    # ------------------------------------------------------------------ #
    # Experience collection
    # ------------------------------------------------------------------ #
    def observe(self, state, action, reward: float, next_state, done: bool) -> None:
        self.replay.add(state, action, reward, next_state, done)
        self.total_env_steps += 1

    def ready_to_update(self) -> bool:
        return len(self.replay) >= max(self.config.batch_size, self.config.warmup_steps)

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def update(self) -> Dict[str, float]:
        """Run one TD3 gradient step; returns loss diagnostics.

        Returns an empty dict when the replay buffer has not yet collected
        enough experience.
        """
        if not self.ready_to_update():
            return {}
        batch = self.replay.sample(self.config.batch_size)
        metrics = self._update_critics(batch)
        self.total_updates += 1
        if self.total_updates % self.config.policy_delay == 0:
            metrics.update(self._update_actor(batch))
            self._update_targets()
        return metrics

    def _update_critics(self, batch: Dict[str, np.ndarray]) -> Dict[str, float]:
        cfg = self.config
        next_states = batch["next_states"]

        # Target-policy smoothing.
        next_actions = self.target_actor.forward(next_states)
        noise = np.clip(
            self._rng.normal(0.0, cfg.target_noise_sigma, size=next_actions.shape),
            -cfg.target_noise_clip,
            cfg.target_noise_clip,
        )
        next_actions = np.clip(next_actions + noise, -cfg.max_action, cfg.max_action)

        target_inputs = np.concatenate([next_states, next_actions], axis=1)
        target_q1 = self.target_critic1.forward(target_inputs)
        target_q2 = self.target_critic2.forward(target_inputs)
        target_q = np.minimum(target_q1, target_q2).reshape(-1)
        targets = batch["rewards"] + cfg.gamma * (1.0 - batch["dones"]) * target_q
        targets = targets.reshape(-1, 1)

        inputs = np.concatenate([batch["states"], batch["actions"]], axis=1)

        self.critic1.zero_grad()
        q1 = self.critic1.forward(inputs)
        loss1, grad1 = mse_loss(q1, targets)
        self.critic1.backward(grad1)
        self.critic1_optimizer.step()

        self.critic2.zero_grad()
        q2 = self.critic2.forward(inputs)
        loss2, grad2 = mse_loss(q2, targets)
        self.critic2.backward(grad2)
        self.critic2_optimizer.step()

        return {"critic1_loss": loss1, "critic2_loss": loss2, "target_q_mean": float(targets.mean())}

    def _update_actor(self, batch: Dict[str, np.ndarray]) -> Dict[str, float]:
        states = batch["states"]
        batch_size = states.shape[0]

        self.actor.zero_grad()
        actions = self.actor.forward(states)
        inputs = np.concatenate([states, actions], axis=1)

        # Deterministic policy gradient: maximize Q1(s, π(s)); the critic is a
        # fixed differentiable function here, so we zero its parameter grads
        # after extracting the input gradient.
        self.critic1.zero_grad()
        q_values = self.critic1.forward(inputs)
        grad_q = -np.ones_like(q_values) / batch_size
        grad_inputs = self.critic1.backward(grad_q)
        self.critic1.zero_grad()

        grad_actions = grad_inputs[:, self.config.state_dim:]
        self.actor.backward(grad_actions)
        self.actor_optimizer.step()

        return {"actor_loss": float(-q_values.mean())}

    def _update_targets(self) -> None:
        tau = self.config.tau
        self.target_actor.soft_update_from(self.actor, tau)
        self.target_critic1.soft_update_from(self.critic1, tau)
        self.target_critic2.soft_update_from(self.critic2, tau)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def get_weights(self) -> Dict[str, List[np.ndarray]]:
        return {
            "actor": self.actor.get_weights(),
            "critic1": self.critic1.get_weights(),
            "critic2": self.critic2.get_weights(),
        }

    def set_weights(self, weights: Dict[str, List[np.ndarray]]) -> None:
        self.actor.set_weights(weights["actor"])
        self.critic1.set_weights(weights["critic1"])
        self.critic2.set_weights(weights["critic2"])
        self.target_actor.copy_from(self.actor)
        self.target_critic1.copy_from(self.critic1)
        self.target_critic2.copy_from(self.critic2)
