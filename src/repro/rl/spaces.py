"""Observation / action spaces."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoxSpace"]


@dataclass
class BoxSpace:
    """A bounded continuous space, element-wise ``[low, high]``."""

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.asarray(self.low, dtype=np.float64)
        high = np.asarray(self.high, dtype=np.float64)
        low, high = np.broadcast_arrays(low, high)
        if np.any(low > high):
            raise ValueError("low must not exceed high")
        self.low = np.array(low, dtype=np.float64)
        self.high = np.array(high, dtype=np.float64)

    @property
    def shape(self) -> tuple:
        return self.low.shape

    @property
    def dim(self) -> int:
        return int(np.prod(self.low.shape)) if self.low.shape else 1

    def contains(self, value, tol: float = 1e-9) -> bool:
        arr = np.asarray(value, dtype=np.float64)
        if arr.shape != self.low.shape:
            return False
        return bool(np.all(arr >= self.low - tol) and np.all(arr <= self.high + tol))

    def clip(self, value) -> np.ndarray:
        return np.clip(np.asarray(value, dtype=np.float64), self.low, self.high)

    def sample(self, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = rng if rng is not None else np.random.default_rng()
        return rng.uniform(self.low, self.high)
