"""Exploration noise processes for deterministic-policy RL."""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianNoise", "OrnsteinUhlenbeckNoise"]


class GaussianNoise:
    """I.i.d. Gaussian exploration noise (the default in TD3)."""

    def __init__(self, dim: int, sigma: float = 0.1, seed: int | None = None) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.dim = dim
        self.sigma = sigma
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """No internal state — present for interface symmetry."""

    def sample(self) -> np.ndarray:
        return self._rng.normal(0.0, self.sigma, size=self.dim)


class OrnsteinUhlenbeckNoise:
    """Temporally correlated OU noise (used by DDPG; available for ablations)."""

    def __init__(
        self,
        dim: int,
        mu: float = 0.0,
        theta: float = 0.15,
        sigma: float = 0.2,
        dt: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if sigma < 0 or theta < 0 or dt <= 0:
            raise ValueError("sigma/theta must be non-negative and dt positive")
        self.dim = dim
        self.mu = mu
        self.theta = theta
        self.sigma = sigma
        self.dt = dt
        self._rng = np.random.default_rng(seed)
        self._state = np.full(dim, mu, dtype=np.float64)

    def reset(self) -> None:
        self._state = np.full(self.dim, self.mu, dtype=np.float64)

    def sample(self) -> np.ndarray:
        drift = self.theta * (self.mu - self._state) * self.dt
        diffusion = self.sigma * np.sqrt(self.dt) * self._rng.normal(size=self.dim)
        self._state = self._state + drift + diffusion
        return self._state.copy()
