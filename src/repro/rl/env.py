"""The minimal environment protocol used by the RL substrate.

An environment models the MDP ``M = (S, A, r, P, S_0)`` of Section 4.1: the
agent observes a state, emits an action, and receives the next state, a scalar
reward, a termination flag and an info dictionary.  The interface mirrors the
classic ``reset()/step()`` convention so the TD3 agent and the Canopy trainer
can drive any environment, in particular
:class:`repro.orca.env.OrcaNetworkEnv`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Tuple

import numpy as np

from repro.rl.spaces import BoxSpace

__all__ = ["Environment"]


class Environment(ABC):
    """Abstract base class for episodic environments."""

    observation_space: BoxSpace
    action_space: BoxSpace

    @abstractmethod
    def reset(self, seed: int | None = None) -> np.ndarray:
        """Start a new episode and return the initial observation."""

    @abstractmethod
    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """Apply ``action``; return ``(observation, reward, done, info)``."""

    def close(self) -> None:  # pragma: no cover - optional hook
        """Release any resources held by the environment."""

    def rollout(self, policy, max_steps: int = 1000) -> Dict[str, Any]:
        """Unroll ``policy`` for one episode and return the trajectory summary.

        ``policy`` is any callable mapping an observation to an action.  The
        summary contains per-step rewards and the final info dict — enough for
        the evaluation harness without storing full transition tensors.
        """
        observation = self.reset()
        rewards = []
        infos = []
        done = False
        steps = 0
        while not done and steps < max_steps:
            action = np.asarray(policy(observation), dtype=np.float64)
            observation, reward, done, info = self.step(action)
            rewards.append(float(reward))
            infos.append(info)
            steps += 1
        return {
            "rewards": rewards,
            "total_reward": float(np.sum(rewards)) if rewards else 0.0,
            "steps": steps,
            "infos": infos,
        }
