"""Actor pool: collecting experience from many environments with one learner.

The paper trains with 256 actors, each interacting with a distinct emulated
link, and a single learner synchronizing neural parameters (Section 5).  This
module reproduces that architecture in-process: an :class:`ActorPool` owns a
set of environments (typically :class:`repro.orca.env.OrcaNetworkEnv`
instances with different seeds, i.e. different sampled links), steps them
round-robin with the shared agent's exploration policy, and feeds every
transition to the shared replay buffer.

The pool is deliberately sequential — the goal is the *diversity of
experience* the paper's actor fleet provides (many links per learner update),
not wall-clock parallelism, which a pure-Python reproduction cannot deliver
anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.rl.env import Environment
from repro.rl.td3 import TD3Agent

__all__ = ["ActorState", "ActorPool"]


@dataclass
class ActorState:
    """Bookkeeping for one actor (one environment instance)."""

    env: Environment
    observation: Optional[np.ndarray] = None
    episode_reward: float = 0.0
    episodes_completed: int = 0
    steps: int = 0
    last_info: Dict = field(default_factory=dict)


class ActorPool:
    """Round-robin experience collection from many environments.

    Typical use with the TD3 agent::

        envs = [OrcaNetworkEnv(OrcaEnvConfig(seed=i)) for i in range(16)]
        pool = ActorPool(envs, agent)
        for _ in range(total_steps):
            pool.collect(steps=1)       # one transition from the next actor
            agent.update()

    A ``reward_hook`` can rewrite the reward before it reaches the replay
    buffer — the Canopy trainer uses this to inject the QC-shaped reward
    (Eq. 10) while still logging the raw value.
    """

    def __init__(
        self,
        envs: Sequence[Environment],
        agent: TD3Agent,
        reward_hook: Optional[Callable[[float, np.ndarray, Dict], float]] = None,
        explore: bool = True,
    ) -> None:
        if not envs:
            raise ValueError("need at least one environment")
        self.agent = agent
        self.reward_hook = reward_hook
        self.explore = explore
        self.actors: List[ActorState] = [ActorState(env=env) for env in envs]
        self._cursor = 0
        self.total_steps = 0
        self.total_episodes = 0
        self._reward_log: List[float] = []

    # ------------------------------------------------------------------ #
    @property
    def n_actors(self) -> int:
        return len(self.actors)

    def reset_all(self) -> None:
        """(Re)start every actor's environment."""
        for actor in self.actors:
            actor.observation = actor.env.reset()
            actor.episode_reward = 0.0

    def _ensure_started(self, actor: ActorState) -> None:
        if actor.observation is None:
            actor.observation = actor.env.reset()
            actor.episode_reward = 0.0

    def collect(self, steps: int = 1) -> List[Dict]:
        """Collect ``steps`` transitions, cycling through the actors.

        Returns one info record per collected transition (the environment's
        info dict augmented with the actor index and the stored reward).
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        records: List[Dict] = []
        for _ in range(steps):
            actor = self.actors[self._cursor]
            self._cursor = (self._cursor + 1) % len(self.actors)
            self._ensure_started(actor)

            state = actor.observation
            action = self.agent.act(state, explore=self.explore)
            next_state, reward, done, info = actor.env.step(action)

            stored_reward = reward
            if self.reward_hook is not None:
                stored_reward = float(self.reward_hook(reward, state, info))
            self.agent.observe(state, action, stored_reward, next_state, done)

            actor.steps += 1
            actor.episode_reward += reward
            actor.last_info = info
            self.total_steps += 1
            self._reward_log.append(reward)

            if done:
                actor.episodes_completed += 1
                self.total_episodes += 1
                actor.observation = actor.env.reset()
                actor.episode_reward = 0.0
            else:
                actor.observation = next_state

            records.append({"actor": self.actors.index(actor), "reward": reward,
                            "stored_reward": stored_reward, "done": done, **info})
        return records

    # ------------------------------------------------------------------ #
    def mean_recent_reward(self, window: int = 100) -> float:
        """Mean raw environment reward over the most recent transitions."""
        if not self._reward_log:
            return 0.0
        recent = self._reward_log[-window:]
        return float(np.mean(recent))

    def summary(self) -> Dict[str, float]:
        return {
            "n_actors": float(self.n_actors),
            "total_steps": float(self.total_steps),
            "total_episodes": float(self.total_episodes),
            "mean_recent_reward": self.mean_recent_reward(),
        }
