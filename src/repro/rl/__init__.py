"""Reinforcement-learning substrate: TD3, replay buffer, spaces, environments.

Orca (and hence Canopy) trains its coarse-grained controller with TD3
(twin-delayed deep deterministic policy gradient).  This package provides a
self-contained numpy TD3 implementation plus the supporting pieces: a uniform
replay buffer, Gaussian / Ornstein-Uhlenbeck exploration noise, box
action/observation spaces, and the minimal environment protocol implemented by
:class:`repro.orca.env.OrcaNetworkEnv`.
"""

from repro.rl.spaces import BoxSpace
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.rl.td3 import TD3Agent, TD3Config
from repro.rl.env import Environment
from repro.rl.actors import ActorPool, ActorState

__all__ = [
    "BoxSpace",
    "ReplayBuffer",
    "Transition",
    "GaussianNoise",
    "OrnsteinUhlenbeckNoise",
    "TD3Agent",
    "TD3Config",
    "Environment",
    "ActorPool",
    "ActorState",
]
