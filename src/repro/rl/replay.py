"""Uniform experience replay buffer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["Transition", "ReplayBuffer"]


@dataclass(frozen=True)
class Transition:
    """A single (s, a, r, s', done) transition."""

    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray
    done: bool


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling.

    Storage is pre-allocated as dense numpy arrays keyed by field, which keeps
    sampling cheap even for large buffers.
    """

    def __init__(self, capacity: int, state_dim: int, action_dim: int, seed: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if state_dim <= 0 or action_dim <= 0:
            raise ValueError("state_dim and action_dim must be positive")
        self.capacity = capacity
        self.state_dim = state_dim
        self.action_dim = action_dim
        self._states = np.zeros((capacity, state_dim), dtype=np.float64)
        self._actions = np.zeros((capacity, action_dim), dtype=np.float64)
        self._rewards = np.zeros(capacity, dtype=np.float64)
        self._next_states = np.zeros((capacity, state_dim), dtype=np.float64)
        self._dones = np.zeros(capacity, dtype=np.float64)
        self._size = 0
        self._cursor = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def add(self, state, action, reward: float, next_state, done: bool) -> None:
        """Append one transition, overwriting the oldest entry when full."""
        state = np.asarray(state, dtype=np.float64).reshape(self.state_dim)
        action = np.asarray(action, dtype=np.float64).reshape(self.action_dim)
        next_state = np.asarray(next_state, dtype=np.float64).reshape(self.state_dim)
        idx = self._cursor
        self._states[idx] = state
        self._actions[idx] = action
        self._rewards[idx] = float(reward)
        self._next_states[idx] = next_state
        self._dones[idx] = 1.0 if done else 0.0
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def add_transition(self, transition: Transition) -> None:
        self.add(
            transition.state,
            transition.action,
            transition.reward,
            transition.next_state,
            transition.done,
        )

    def sample(self, batch_size: int) -> Dict[str, np.ndarray]:
        """Uniformly sample a batch; raises if the buffer holds fewer items."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if batch_size > self._size:
            raise ValueError(f"cannot sample {batch_size} from buffer of size {self._size}")
        indices = self._rng.integers(0, self._size, size=batch_size)
        return {
            "states": self._states[indices].copy(),
            "actions": self._actions[indices].copy(),
            "rewards": self._rewards[indices].copy(),
            "next_states": self._next_states[indices].copy(),
            "dones": self._dones[indices].copy(),
        }

    def clear(self) -> None:
        self._size = 0
        self._cursor = 0
