"""Gradient-descent optimizers for the numpy neural-network substrate."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds references to parameters and their gradient buffers."""

    def __init__(self, parameters: Sequence[np.ndarray], grads: Sequence[np.ndarray], lr: float) -> None:
        if len(parameters) != len(grads):
            raise ValueError("parameters and grads must have the same length")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[np.ndarray] = list(parameters)
        self.grads: List[np.ndarray] = list(grads)
        self.lr = lr

    @classmethod
    def for_model(cls, model, lr: float, **kwargs) -> "Optimizer":
        """Build an optimizer bound to a :class:`repro.nn.layers.Sequential`."""
        return cls(model.parameters(), model.grads(), lr=lr, **kwargs)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for grad in self.grads:
            grad[...] = 0.0


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, grads, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self.parameters]

    def step(self) -> None:
        for param, grad, velocity in zip(self.parameters, self.grads, self._velocity):
            velocity[...] = self.momentum * velocity - self.lr * grad
            param += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the optimizer used by TD3."""

    def __init__(
        self,
        parameters: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, grads, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self.parameters]
        self._v = [np.zeros_like(p) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, grad, m, v in zip(self.parameters, self.grads, self._m, self._v):
            m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
            v[...] = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
