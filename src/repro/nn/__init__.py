"""Minimal pure-numpy neural network library.

Canopy's prototype uses TensorFlow + Sonnet; this reproduction substitutes a
small, dependency-free numpy implementation providing exactly what the paper
needs:

* fully-connected (Dense) layers with ReLU / Tanh activations,
* a :class:`~repro.nn.mlp.MLP` container used for the TD3 actor and critics,
* the Adam optimizer and mean-squared-error loss,
* reverse-mode gradients implemented layer-by-layer (no autograd framework),
* per-layer access to weights so the IBP verifier in
  :mod:`repro.abstract.propagate` can lift each layer to the box domain.
"""

from repro.nn.layers import Dense, Identity, ReLU, Sequential, Tanh
from repro.nn.mlp import MLP, make_actor, make_critic
from repro.nn.optim import SGD, Adam
from repro.nn.losses import mse_loss
from repro.nn.serialization import load_mlp, save_mlp

__all__ = [
    "Dense",
    "Identity",
    "ReLU",
    "Tanh",
    "Sequential",
    "MLP",
    "make_actor",
    "make_critic",
    "SGD",
    "Adam",
    "mse_loss",
    "save_mlp",
    "load_mlp",
]
