"""Loss functions for the numpy neural-network substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["mse_loss", "huber_loss"]


def mse_loss(prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean-squared error and its gradient with respect to ``prediction``.

    Returns ``(loss, grad)`` where ``grad`` has the same shape as
    ``prediction`` and already includes the ``1/N`` averaging factor so it can
    be fed straight into ``model.backward``.
    """
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    diff = prediction - target
    loss = float(np.mean(diff ** 2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def huber_loss(prediction: np.ndarray, target: np.ndarray, delta: float = 1.0) -> Tuple[float, np.ndarray]:
    """Huber loss and gradient; more robust to outlier TD errors than MSE."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    diff = prediction - target
    abs_diff = np.abs(diff)
    quadratic = np.minimum(abs_diff, delta)
    linear = abs_diff - quadratic
    loss = float(np.mean(0.5 * quadratic ** 2 + delta * linear))
    grad = np.where(abs_diff <= delta, diff, delta * np.sign(diff)) / diff.size
    return loss, grad
