"""Saving and loading network weights.

Models are persisted as ``.npz`` archives containing the flat list of
parameter arrays plus the metadata needed to rebuild the architecture.  This
is what the model zoo uses to cache trained Canopy/Orca policies on disk so
evaluation scripts do not have to retrain between processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import numpy as np

from repro.nn.mlp import MLP

__all__ = ["save_mlp", "load_mlp", "save_weight_dict", "load_weight_dict"]

_META_KEY = "__architecture__"


def save_mlp(model: MLP, path: str | Path) -> Path:
    """Persist an MLP (architecture + weights) to a ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    architecture = {
        "in_features": model.in_features,
        "hidden_sizes": list(model.hidden_sizes),
        "out_features": model.out_features,
        "hidden_activation": model.hidden_activation,
        "output_activation": model.output_activation,
    }
    arrays = {f"param_{i}": weight for i, weight in enumerate(model.get_weights())}
    arrays[_META_KEY] = np.frombuffer(json.dumps(architecture).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    # np.savez appends ".npz" when the target does not already end with it.
    return path if path.suffix == ".npz" else Path(str(path) + ".npz")


def load_mlp(path: str | Path) -> MLP:
    """Rebuild an MLP previously stored with :func:`save_mlp`."""
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} does not look like a saved MLP (missing architecture metadata)")
        architecture = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        weights = []
        index = 0
        while f"param_{index}" in archive:
            weights.append(archive[f"param_{index}"])
            index += 1
    model = MLP(
        architecture["in_features"],
        architecture["hidden_sizes"],
        architecture["out_features"],
        hidden_activation=architecture["hidden_activation"],
        output_activation=architecture["output_activation"],
    )
    model.set_weights(weights)
    return model


def save_weight_dict(weights: Dict[str, list], path: str | Path) -> Path:
    """Persist a named collection of weight lists (e.g. a TD3 agent's networks)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {}
    layout = {}
    for name, parameter_list in weights.items():
        layout[name] = len(parameter_list)
        for i, parameter in enumerate(parameter_list):
            arrays[f"{name}__{i}"] = np.asarray(parameter)
    arrays[_META_KEY] = np.frombuffer(json.dumps(layout).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else Path(str(path) + ".npz")


def load_weight_dict(path: str | Path) -> Dict[str, list]:
    """Load a collection stored with :func:`save_weight_dict`."""
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} does not look like a saved weight collection")
        layout = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        return {
            name: [archive[f"{name}__{i}"] for i in range(count)]
            for name, count in layout.items()
        }
