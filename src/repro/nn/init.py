"""Weight initializers for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "uniform", "zeros"]


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He uniform initialization, suited to ReLU layers."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


def uniform(rng: np.random.Generator, fan_in: int, fan_out: int, scale: float = 3e-3) -> np.ndarray:
    """Small uniform initialization, used for output layers in DDPG/TD3."""
    return rng.uniform(-scale, scale, size=(fan_out, fan_in))


def zeros(fan_out: int) -> np.ndarray:
    return np.zeros(fan_out)
