"""Feed-forward layers with explicit forward/backward passes.

Each layer exposes:

* ``forward(x)`` — batched forward pass (``x`` has shape ``(batch, features)``),
  caching whatever is needed for the backward pass.
* ``backward(grad_output)`` — propagates gradients back to the input and
  accumulates parameter gradients in ``layer.grads``.
* ``parameters()`` / ``grads()`` — flat lists used by the optimizers in
  :mod:`repro.nn.optim`.

The layer set intentionally mirrors what the Canopy verifier knows how to lift
to the box abstract domain: affine (Dense), ReLU and Tanh.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.nn import init as initializers

__all__ = ["Layer", "Dense", "ReLU", "Tanh", "Identity", "Sequential"]


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[np.ndarray]:
        return []

    def grads(self) -> List[np.ndarray]:
        return []

    def zero_grad(self) -> None:
        for grad in self.grads():
            grad[...] = 0.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Layer):
    """Fully connected layer ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        weight_init: str = "glorot",
        init_scale: float = 3e-3,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng()
        if weight_init == "glorot":
            self.weight = initializers.glorot_uniform(rng, in_features, out_features)
        elif weight_init == "he":
            self.weight = initializers.he_uniform(rng, in_features, out_features)
        elif weight_init == "uniform":
            self.weight = initializers.uniform(rng, in_features, out_features, scale=init_scale)
        else:
            raise ValueError(f"unknown weight_init {weight_init!r}")
        self.bias = initializers.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cached_input: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self._cached_input = x
        return x @ self.weight.T + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise RuntimeError("backward() called before forward()")
        grad_output = np.atleast_2d(grad_output)
        self.grad_weight += grad_output.T @ self._cached_input
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight

    def parameters(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Element-wise rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before forward()")
        return grad_output * self._mask


class Tanh(Layer):
    """Element-wise hyperbolic tangent."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward() called before forward()")
        return grad_output * (1.0 - self._output ** 2)


class Identity(Layer):
    """No-op layer (linear output head)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Sequential(Layer):
    """Container applying layers in order."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def grads(self) -> List[np.ndarray]:
        grads: List[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.grads())
        return grads

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)
