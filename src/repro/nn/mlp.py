"""Multi-layer perceptrons used by the TD3 actor and critics.

The architectures follow Orca's agent: two hidden layers with ReLU
activations; the actor ends with a tanh squashing the coarse-grained action
into ``[-1, 1]`` (Eq. 1 of the paper then maps it to a cwnd multiplier), and
the critics end with a linear head producing a scalar Q-value.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.layers import Dense, Identity, Layer, ReLU, Sequential, Tanh

__all__ = ["MLP", "make_actor", "make_critic"]

_ACTIVATIONS = {
    "relu": ReLU,
    "tanh": Tanh,
    "linear": Identity,
    "identity": Identity,
}


class MLP(Sequential):
    """A fully-connected network built from a list of hidden sizes."""

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        hidden_activation: str = "relu",
        output_activation: str = "linear",
        rng: np.random.Generator | None = None,
        output_init_scale: float = 3e-3,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng()
        if hidden_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown hidden activation {hidden_activation!r}")
        if output_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown output activation {output_activation!r}")

        layers: List[Layer] = []
        prev = in_features
        weight_init = "he" if hidden_activation == "relu" else "glorot"
        for size in hidden_sizes:
            layers.append(Dense(prev, size, rng=rng, weight_init=weight_init))
            layers.append(_ACTIVATIONS[hidden_activation]())
            prev = size
        layers.append(Dense(prev, out_features, rng=rng, weight_init="uniform", init_scale=output_init_scale))
        layers.append(_ACTIVATIONS[output_activation]())
        super().__init__(layers)

        self.in_features = in_features
        self.out_features = out_features
        self.hidden_sizes = tuple(hidden_sizes)
        self.hidden_activation = hidden_activation
        self.output_activation = output_activation

    # ------------------------------------------------------------------ #
    # Parameter (de)serialization — used for target-network updates.
    # ------------------------------------------------------------------ #
    def get_weights(self) -> List[np.ndarray]:
        return [p.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"expected {len(params)} arrays, got {len(weights)}")
        for param, new in zip(params, weights):
            if param.shape != np.asarray(new).shape:
                raise ValueError("weight shape mismatch")
            param[...] = new

    def soft_update_from(self, source: "MLP", tau: float) -> None:
        """Polyak averaging ``θ ← τ θ_src + (1−τ) θ`` (target network update)."""
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        for target_param, source_param in zip(self.parameters(), source.parameters()):
            target_param[...] = tau * source_param + (1.0 - tau) * target_param

    def copy_from(self, source: "MLP") -> None:
        self.soft_update_from(source, tau=1.0)

    def clone(self) -> "MLP":
        """A structural copy with identical weights (independent storage)."""
        other = MLP(
            self.in_features,
            self.hidden_sizes,
            self.out_features,
            hidden_activation=self.hidden_activation,
            output_activation=self.output_activation,
        )
        other.set_weights(self.get_weights())
        return other


def make_actor(
    state_dim: int,
    action_dim: int = 1,
    hidden_sizes: Sequence[int] = (64, 32),
    rng: np.random.Generator | None = None,
) -> MLP:
    """The Orca/Canopy actor: ReLU hidden layers, tanh output in [-1, 1]."""
    return MLP(
        state_dim,
        hidden_sizes,
        action_dim,
        hidden_activation="relu",
        output_activation="tanh",
        rng=rng,
    )


def make_critic(
    state_dim: int,
    action_dim: int = 1,
    hidden_sizes: Sequence[int] = (64, 32),
    rng: np.random.Generator | None = None,
) -> MLP:
    """A Q-network taking the concatenated (state, action) and returning a scalar."""
    return MLP(
        state_dim + action_dim,
        hidden_sizes,
        1,
        hidden_activation="relu",
        output_activation="linear",
        rng=rng,
    )
