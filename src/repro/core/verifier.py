"""The Canopy verifier: IBP certification of controller behaviour.

Given a property, a concrete decision context (the current state, the
TCP-suggested window, the previously enforced window) and the controller's
actor network, the verifier:

1. builds the abstract input region ``X`` prescribed by the property
   (Section 4.3.1), keeping non-abstracted features at their observed values,
2. partitions it into ``N`` components along the abstracted dimensions,
3. propagates the components through the actor with interval bound propagation
   and through the cwnd map ``2^(2a) · cwnd_TCP`` (Eq. 5),
4. compares the derived action (Δcwnd or the fractional cwnd change) with the
   allowed region and computes the per-component proof and smoothed feedback
   (Eq. 6).

The result is a :class:`repro.core.qc.QuantitativeCertificate`.

Batched engine
--------------

:meth:`Verifier.certify` stacks all ``N`` components into one batched box
(:meth:`repro.abstract.box.Box.split_batched`) and runs a *single* IBP
propagation per property — the cwnd map, the Δcwnd / fractional-change
transformers, the containment check and the Eq. 6 feedback are all vectorized
over the component axis.  The original one-component-at-a-time path is
retained as :meth:`Verifier.certify_reference` (plus ``certify_all_reference``
and ``verifier_feedback_reference``); the differential test suite pins the two
implementations to each other within 1e-12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.abstract import transformers
from repro.abstract.box import Box
from repro.abstract.interval import Interval
from repro.abstract.propagate import propagate_mlp, propagate_mlp_batched
from repro.core.properties import ActionKind, PropertySet, PropertySpec
from repro.core.qc import (
    ComponentCertificate,
    QuantitativeCertificate,
    interval_feedback,
    interval_feedback_batch,
)
from repro.orca.agent import cwnd_from_action
from repro.orca.observations import ObservationBuilder, ObservationConfig

__all__ = ["VerifierConfig", "Verifier"]


@dataclass
class VerifierConfig:
    """Verifier settings.

    Attributes:
        n_components: Number of QC input partitions N (the paper uses 5 during
            training and 50 during evaluation).
        check_applicability: When True, a property whose precondition side
            conditions on past Δcwnd do not hold at the current state is
            reported as non-applicable with neutral feedback 1.0.  The default
            (False) matches the paper's worst-case reading: the Δcwnd
            precondition is abstracted over its full range, so the QC covers
            every history consistent with the precondition.
    """

    n_components: int = 5
    check_applicability: bool = False

    def __post_init__(self) -> None:
        if self.n_components <= 0:
            raise ValueError("n_components must be positive")


@dataclass(frozen=True)
class DecisionContext:
    """Concrete quantities surrounding one coarse-grained decision."""

    state: np.ndarray
    cwnd_tcp: float
    cwnd_prev: float

    def __post_init__(self) -> None:
        if self.cwnd_tcp <= 0:
            raise ValueError("cwnd_tcp must be positive")


class Verifier:
    """Computes quantitative certificates for a (learned) controller."""

    def __init__(
        self,
        actor,
        observation_config: ObservationConfig | None = None,
        config: VerifierConfig | None = None,
    ) -> None:
        self.actor = actor
        self.observer = ObservationBuilder(observation_config)
        self.config = config or VerifierConfig()

    # ------------------------------------------------------------------ #
    # Concrete helpers
    # ------------------------------------------------------------------ #
    def concrete_action(self, state: np.ndarray) -> float:
        """The controller's concrete action for ``state`` (clipped to [-1, 1])."""
        output = self.actor.forward(np.asarray(state, dtype=np.float64).reshape(1, -1))
        return float(np.clip(output.reshape(-1)[0], -1.0, 1.0))

    def concrete_cwnd(self, state: np.ndarray, cwnd_tcp: float) -> float:
        """The concrete enforced window for ``state`` (Eq. 1)."""
        return cwnd_from_action(self.concrete_action(state), cwnd_tcp)

    # ------------------------------------------------------------------ #
    # Certification (batched engine)
    # ------------------------------------------------------------------ #
    def certify(
        self,
        prop: PropertySpec,
        state: np.ndarray,
        cwnd_tcp: float,
        cwnd_prev: float,
        n_components: Optional[int] = None,
        observer: Optional[ObservationBuilder] = None,
    ) -> QuantitativeCertificate:
        """Produce the QC for one property at one decision step.

        All ``N`` components are propagated through the actor as one batched
        box, so the per-property cost is a single IBP pass regardless of N.
        """
        observer = observer or self.observer
        n = n_components or self.config.n_components
        context = DecisionContext(np.asarray(state, dtype=np.float64), float(cwnd_tcp), float(cwnd_prev))
        certificate = self._empty_certificate(prop)

        if self.config.check_applicability:
            if not self._applicability_from_state(prop, context.state, observer):
                certificate.applicable = False
                return certificate

        components = self._components_batched(prop, context, observer, n)
        cwnd_reference = self._cwnd_reference(prop, context)
        output_lo, output_hi = self._checked_action_bounds_batched(prop, components, context, cwnd_reference)
        satisfied, feedback = interval_feedback_batch(output_lo, output_hi, prop.allowed_interval())

        input_lo = components.lo
        input_hi = components.hi
        for index in range(n):
            certificate.components.append(ComponentCertificate(
                index=index,
                input_lo=input_lo[index].copy(),
                input_hi=input_hi[index].copy(),
                output_lo=float(output_lo[index]),
                output_hi=float(output_hi[index]),
                satisfied=bool(satisfied[index]),
                feedback=float(feedback[index]),
            ))
        return certificate

    def _empty_certificate(self, prop: PropertySpec) -> QuantitativeCertificate:
        allowed = prop.allowed_interval()
        return QuantitativeCertificate(
            property_name=prop.name,
            allowed_lo=float(allowed.lo),
            allowed_hi=float(allowed.hi),
        )

    def _components_batched(
        self, prop: PropertySpec, context: DecisionContext, observer: ObservationBuilder, n: int
    ) -> Box:
        region = prop.input_region(context.state, observer)
        dims = prop.partition_dims(observer)
        return region.split_batched(n, dims=dims if dims else None)

    def _cwnd_reference(self, prop: PropertySpec, context: DecisionContext) -> Optional[float]:
        if prop.kind is ActionKind.CWND_CHANGE_FRACTION:
            return self.concrete_cwnd(context.state, context.cwnd_tcp)
        return None

    def _applicability_from_state(self, prop: PropertySpec, state: np.ndarray, observer: ObservationBuilder) -> bool:
        """Check the concrete Δcwnd side-condition directly on the state vector."""
        if prop.dcwnd_sign is None:
            return True
        dcwnd_history = state[observer.feature_indices("dcwnd")]
        if prop.dcwnd_sign < 0:
            return bool(np.all(dcwnd_history <= 1e-6))
        return bool(np.all(dcwnd_history >= -1e-6))

    def _checked_action_bounds_batched(
        self, prop, components: Box, context: DecisionContext, cwnd_reference
    ) -> tuple:
        """Flat ``(N,)`` lower/upper bounds on the checked action, one IBP pass."""
        action_box = propagate_mlp_batched(self.actor, components)
        cwnd_box = transformers.cwnd_from_action(action_box, context.cwnd_tcp)
        if prop.kind is ActionKind.DELTA_CWND:
            checked = transformers.delta_cwnd(cwnd_box, context.cwnd_prev)
        else:
            checked = transformers.cwnd_change_fraction(cwnd_box, cwnd_reference)
        # The action (and hence the checked quantity) is scalar per component;
        # collapse the trailing 1-element axis.
        return checked.lo.reshape(-1), checked.hi.reshape(-1)

    # ------------------------------------------------------------------ #
    # Certification (scalar reference path, retained for differential tests)
    # ------------------------------------------------------------------ #
    def certify_reference(
        self,
        prop: PropertySpec,
        state: np.ndarray,
        cwnd_tcp: float,
        cwnd_prev: float,
        n_components: Optional[int] = None,
        observer: Optional[ObservationBuilder] = None,
    ) -> QuantitativeCertificate:
        """One-component-at-a-time reference implementation of :meth:`certify`.

        Kept as the independently simple ground truth: the differential test
        suite asserts the batched engine reproduces its certificates within
        1e-12 over randomized actors, properties and decision contexts.
        """
        observer = observer or self.observer
        n = n_components or self.config.n_components
        context = DecisionContext(np.asarray(state, dtype=np.float64), float(cwnd_tcp), float(cwnd_prev))
        allowed = prop.allowed_interval()
        certificate = self._empty_certificate(prop)

        if self.config.check_applicability:
            if not self._applicability_from_state(prop, context.state, observer):
                certificate.applicable = False
                return certificate

        region = prop.input_region(context.state, observer)
        dims = prop.partition_dims(observer)
        components = region.split(n, dims=dims if dims else None)
        cwnd_reference = self._cwnd_reference(prop, context)

        for index, component in enumerate(components):
            output_interval = self._checked_action_bounds(prop, component, context, cwnd_reference)
            satisfied = allowed.contains_interval(output_interval)
            feedback = interval_feedback(output_interval, allowed)
            certificate.components.append(ComponentCertificate(
                index=index,
                input_lo=component.lo.copy(),
                input_hi=component.hi.copy(),
                output_lo=float(output_interval.lo),
                output_hi=float(output_interval.hi),
                satisfied=bool(satisfied),
                feedback=float(feedback),
            ))
        return certificate

    def _checked_action_bounds(self, prop, component: Box, context: DecisionContext, cwnd_reference) -> Interval:
        action_box = propagate_mlp(self.actor, component)
        cwnd_box = transformers.cwnd_from_action(action_box, context.cwnd_tcp)
        if prop.kind is ActionKind.DELTA_CWND:
            checked = transformers.delta_cwnd(cwnd_box, context.cwnd_prev)
        else:
            checked = transformers.cwnd_change_fraction(cwnd_box, cwnd_reference)
        interval = checked.to_interval()
        # The action (and hence the checked quantity) is scalar; collapse the
        # 1-element vector interval into a scalar interval.
        lo = np.asarray(interval.lo).reshape(-1)[0]
        hi = np.asarray(interval.hi).reshape(-1)[0]
        return Interval(float(lo), float(hi))

    def certify_all_reference(
        self,
        properties: PropertySet | Sequence[PropertySpec],
        state: np.ndarray,
        cwnd_tcp: float,
        cwnd_prev: float,
        n_components: Optional[int] = None,
    ) -> dict:
        """Scalar-path counterpart of :meth:`certify_all`."""
        return {
            prop.name: self.certify_reference(prop, state, cwnd_tcp, cwnd_prev, n_components=n_components)
            for prop in properties
        }

    def verifier_feedback_reference(
        self,
        properties: PropertySet | Sequence[PropertySpec],
        state: np.ndarray,
        cwnd_tcp: float,
        cwnd_prev: float,
        n_components: Optional[int] = None,
    ) -> float:
        """Scalar-path counterpart of :meth:`verifier_feedback`."""
        return self._aggregate_feedback(
            properties, state, cwnd_tcp, cwnd_prev, n_components, self.certify_reference
        )

    # ------------------------------------------------------------------ #
    # Aggregate feedback (Eq. 7)
    # ------------------------------------------------------------------ #
    def verifier_feedback(
        self,
        properties: PropertySet | Sequence[PropertySpec],
        state: np.ndarray,
        cwnd_tcp: float,
        cwnd_prev: float,
        n_components: Optional[int] = None,
    ) -> float:
        """Weighted average QC feedback over a set of properties (r_verifier)."""
        return self._aggregate_feedback(properties, state, cwnd_tcp, cwnd_prev, n_components, self.certify)

    def _aggregate_feedback(self, properties, state, cwnd_tcp, cwnd_prev, n_components, certify) -> float:
        props = list(properties)
        if not props:
            raise ValueError("need at least one property")
        total = 0.0
        weight_sum = 0.0
        for prop in props:
            certificate = certify(prop, state, cwnd_tcp, cwnd_prev, n_components=n_components)
            total += prop.weight * certificate.feedback
            weight_sum += prop.weight
        return total / weight_sum

    def certify_all(
        self,
        properties: PropertySet | Sequence[PropertySpec],
        state: np.ndarray,
        cwnd_tcp: float,
        cwnd_prev: float,
        n_components: Optional[int] = None,
    ) -> dict:
        """QCs for every property in the set, keyed by property name."""
        return {
            prop.name: self.certify(prop, state, cwnd_tcp, cwnd_prev, n_components=n_components)
            for prop in properties
        }
