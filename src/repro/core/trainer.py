"""Certification-in-the-loop training (Figure 3 of the paper).

The :class:`CanopyTrainer` runs standard TD3 over the Orca environment but,
at every coarse-grained step, asks the verifier for the QC feedback of the
trained property set around the current decision and mixes it into the reward
(Eq. 10).  The per-epoch raw reward, verifier reward, and total reward are
logged so the training-curve comparison of Figure 17 (appendix A.1) can be
regenerated, and the wall-clock cost of verification is tracked for the
overhead analysis of Table 4 (appendix A.2).

Setting ``use_verifier_reward=False`` (or λ = 0) yields the Orca baseline:
the verifier feedback is still measured and logged, but not used for learning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import CanopyConfig
from repro.core.properties import ActionKind
from repro.core.reward import CanopyRewardShaper
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn.optim import Adam
from repro.orca.env import OrcaNetworkEnv
from repro.rl.td3 import TD3Agent

__all__ = ["TrainerConfig", "EpochLog", "TrainingResult", "CanopyTrainer"]


@dataclass
class TrainerConfig:
    """Training-loop settings (independent of the Canopy model preset).

    ``property_regularization`` enables the verifier-guided policy update: in
    addition to shaping the reward (Eq. 10), every step the actor takes one
    gradient step that pushes its outputs over the property's input region
    toward the allowed action region.  The update is derived from the same QC
    object the verifier computes (the hinge distance between the propagated
    action and the allowed region, sampled at points of the region) and is
    scaled by the same λ.  At the paper's training scale (256 actors × 50k
    epochs) pure reward shaping suffices; at this reproduction's CI scale the
    explicit gradient step is what lets the qualitative trends emerge.  See
    DESIGN.md for the full rationale.
    """

    total_steps: int = 400
    updates_per_step: int = 1
    use_verifier_reward: bool = True
    property_regularization: bool = True
    regularization_samples: int = 8
    regularization_margin: float = 0.05
    regularization_strength: float = 8.0
    log_every: int = 20
    verifier_every: int = 1   # compute the QC every this many env steps
    progress_callback: Optional[Callable[[Dict[str, float]], None]] = None

    def __post_init__(self) -> None:
        if self.total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if self.updates_per_step < 0:
            raise ValueError("updates_per_step must be non-negative")
        if self.log_every <= 0 or self.verifier_every <= 0:
            raise ValueError("log_every and verifier_every must be positive")
        if self.regularization_samples <= 0:
            raise ValueError("regularization_samples must be positive")
        if self.regularization_margin < 0 or self.regularization_strength < 0:
            raise ValueError("regularization margin/strength must be non-negative")


@dataclass(frozen=True)
class EpochLog:
    """Aggregated metrics over one logging window."""

    step: int
    raw_reward: float
    verifier_reward: float
    total_reward: float
    episodes: int
    seconds: float
    verifier_seconds: float


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    config_name: str
    history: List[EpochLog] = field(default_factory=list)
    agent: Optional[TD3Agent] = None
    total_seconds: float = 0.0
    verifier_seconds: float = 0.0
    env_steps: int = 0

    @property
    def steps_per_second(self) -> float:
        """Environment-step rate including verification (the Table 4 metric)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.env_steps / self.total_seconds

    def policy(self) -> Callable[[np.ndarray], np.ndarray]:
        """The trained greedy policy, usable by :class:`repro.orca.agent.LearnedController`."""
        if self.agent is None:
            raise RuntimeError("training result carries no agent")
        return self.agent.policy

    def final_metrics(self) -> Dict[str, float]:
        if not self.history:
            return {"raw_reward": 0.0, "verifier_reward": 0.0, "total_reward": 0.0}
        last = self.history[-1]
        return {
            "raw_reward": last.raw_reward,
            "verifier_reward": last.verifier_reward,
            "total_reward": last.total_reward,
        }

    def reward_curves(self) -> Dict[str, np.ndarray]:
        """Per-window reward curves (the series plotted in Figure 17)."""
        return {
            "step": np.array([log.step for log in self.history]),
            "raw": np.array([log.raw_reward for log in self.history]),
            "verifier": np.array([log.verifier_reward for log in self.history]),
            "total": np.array([log.total_reward for log in self.history]),
        }


class CanopyTrainer:
    """Trains one Canopy (or Orca-baseline) model."""

    def __init__(self, canopy_config: CanopyConfig, trainer_config: TrainerConfig | None = None) -> None:
        self.canopy_config = canopy_config
        self.trainer_config = trainer_config or TrainerConfig()

        self.env = OrcaNetworkEnv(canopy_config.env)
        self.agent = TD3Agent(canopy_config.td3)
        self.verifier = Verifier(
            self.agent.actor,
            observation_config=canopy_config.observation,
            config=VerifierConfig(n_components=canopy_config.n_components),
        )
        self.shaper = CanopyRewardShaper(
            self.verifier, canopy_config.properties, lam=canopy_config.lam,
            n_components=canopy_config.n_components,
        )
        # Dedicated optimizer for the verifier-guided policy regularization so
        # its gradients do not disturb the TD3 actor optimizer's Adam moments.
        reg_lr = canopy_config.td3.actor_lr * max(canopy_config.lam, 0.0) * self.trainer_config.regularization_strength
        self._reg_optimizer = (
            Adam(self.agent.actor.parameters(), self.agent.actor.grads(), lr=reg_lr) if reg_lr > 0 else None
        )
        self._reg_rng = np.random.default_rng(canopy_config.seed + 977)

    # ------------------------------------------------------------------ #
    # Verifier-guided policy regularization (QC-derived hinge update)
    # ------------------------------------------------------------------ #
    def _property_regularization_step(self, state: np.ndarray, cwnd_tcp: float, cwnd_prev: float) -> None:
        """One gradient step pushing the policy toward property satisfaction.

        For every trained property the input region the verifier certifies is
        sampled, and the actor output at those samples is nudged across the
        allowed-action boundary (the same boundary the QC feedback measures):

        * Δcwnd properties: the allowed region translates into an action
          threshold ``a* = 0.5·log2(cwnd_prev / cwnd_tcp)`` (from Eq. 1);
          samples on the wrong side of ``a*`` receive a hinge gradient.
        * robustness (P5): sampled perturbed states must produce actions within
          ``ε`` (in cwnd terms) of the unperturbed action.
        """
        if self._reg_optimizer is None:
            return
        cfg = self.trainer_config
        observer = self.verifier.observer
        actor = self.agent.actor
        n_samples = cfg.regularization_samples
        margin = cfg.regularization_margin

        actor.zero_grad()
        accumulated = False
        for prop in self.canopy_config.properties:
            region = prop.input_region(state, observer).to_interval()
            span = region.hi - region.lo
            samples = region.lo + self._reg_rng.random((n_samples, region.lo.shape[0])) * span
            if prop.kind is ActionKind.DELTA_CWND:
                outputs = actor.forward(samples)
                threshold = 0.5 * np.log2(max(cwnd_prev, 1e-6) / max(cwnd_tcp, 1e-6))
                threshold = float(np.clip(threshold, -0.95, 0.95))
                if prop.allowed_direction > 0:
                    violating = outputs < threshold + margin
                    grad = -violating.astype(np.float64)
                else:
                    violating = outputs > threshold - margin
                    grad = violating.astype(np.float64)
            else:
                reference = actor.forward(state.reshape(1, -1)).copy()
                outputs = actor.forward(samples)
                # |2^(2a') − 2^(2a)| / 2^(2a) ≤ ε  ≈  |a' − a| ≤ ε / (2 ln 2)
                epsilon_action = float(prop.epsilon) / (2.0 * np.log(2.0))
                diff = outputs - reference
                violating = np.abs(diff) > epsilon_action
                grad = np.sign(diff) * violating.astype(np.float64)
            if not np.any(violating):
                continue
            accumulated = True
            actor.backward(prop.weight * grad / (n_samples * len(self.canopy_config.properties)))
        if accumulated:
            self._reg_optimizer.step()
        actor.zero_grad()

    # ------------------------------------------------------------------ #
    def train(self) -> TrainingResult:
        cfg = self.trainer_config
        use_verifier = cfg.use_verifier_reward and self.canopy_config.lam > 0.0
        result = TrainingResult(config_name=self.canopy_config.name, agent=self.agent)

        window_raw: List[float] = []
        window_verifier: List[float] = []
        window_total: List[float] = []
        window_start = time.perf_counter()
        window_verifier_seconds = 0.0
        episodes = 0
        start = time.perf_counter()

        state = self.env.reset()
        last_verifier_reward = 1.0
        for step in range(1, cfg.total_steps + 1):
            action = self.agent.act(state, explore=True)
            next_state, raw_reward, done, info = self.env.step(action)

            verifier_start = time.perf_counter()
            if step % cfg.verifier_every == 0:
                shaped = self.shaper.shape(raw_reward, state, info["cwnd_tcp"], info["cwnd_prev"])
                last_verifier_reward = shaped.verifier
            else:
                shaped = None
            verifier_elapsed = time.perf_counter() - verifier_start
            window_verifier_seconds += verifier_elapsed
            result.verifier_seconds += verifier_elapsed

            verifier_reward = shaped.verifier if shaped is not None else last_verifier_reward
            if use_verifier:
                total_reward = (1.0 - self.canopy_config.lam) * raw_reward + self.canopy_config.lam * verifier_reward
            else:
                total_reward = raw_reward

            self.agent.observe(state, action, total_reward, next_state, done)
            for _ in range(cfg.updates_per_step):
                self.agent.update()
            if use_verifier and cfg.property_regularization:
                self._property_regularization_step(state, info["cwnd_tcp"], info["cwnd_prev"])

            window_raw.append(raw_reward)
            window_verifier.append(verifier_reward)
            window_total.append(total_reward)
            result.env_steps += 1

            if done:
                state = self.env.reset()
                episodes += 1
            else:
                state = next_state

            if step % cfg.log_every == 0:
                elapsed = time.perf_counter() - window_start
                log = EpochLog(
                    step=step,
                    raw_reward=float(np.mean(window_raw)),
                    verifier_reward=float(np.mean(window_verifier)),
                    total_reward=float(np.mean(window_total)),
                    episodes=episodes,
                    seconds=elapsed,
                    verifier_seconds=window_verifier_seconds,
                )
                result.history.append(log)
                if cfg.progress_callback is not None:
                    cfg.progress_callback({
                        "step": step,
                        "raw_reward": log.raw_reward,
                        "verifier_reward": log.verifier_reward,
                        "total_reward": log.total_reward,
                    })
                window_raw, window_verifier, window_total = [], [], []
                window_start = time.perf_counter()
                window_verifier_seconds = 0.0

        result.total_seconds = time.perf_counter() - start
        return result
