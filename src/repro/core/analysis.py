"""Offline analysis of a controller's property satisfaction.

Beyond the per-decision QC_sat used during evaluation, it is often useful to
see *where* in the observation space a trained controller satisfies a property
— e.g. a grid over (queuing delay, loss rate) with the certified feedback at
each cell.  The paper uses exactly this kind of view to argue that Canopy's
certified regions are larger than Orca's (Figures 6 and 8 are one-dimensional
slices of it); this module provides the general tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.properties import PropertySet, PropertySpec
from repro.core.verifier import Verifier

__all__ = ["SatisfactionGrid", "satisfaction_grid", "property_report", "compare_controllers"]


@dataclass
class SatisfactionGrid:
    """QC feedback of one property over a 2-d grid of observation values."""

    property_name: str
    x_feature: str
    y_feature: str
    x_values: np.ndarray
    y_values: np.ndarray
    feedback: np.ndarray          # shape (len(y_values), len(x_values))

    @property
    def mean_feedback(self) -> float:
        return float(self.feedback.mean())

    @property
    def certified_fraction(self) -> float:
        """Fraction of grid cells with a full proof (feedback == 1)."""
        return float(np.mean(self.feedback >= 1.0 - 1e-9))

    def to_rows(self) -> List[Dict[str, float]]:
        rows = []
        for yi, y in enumerate(self.y_values):
            for xi, x in enumerate(self.x_values):
                rows.append({self.x_feature: float(x), self.y_feature: float(y),
                             "feedback": float(self.feedback[yi, xi])})
        return rows


def _base_state(verifier: Verifier, fill: float = 0.5) -> np.ndarray:
    return np.full(verifier.observer.state_dim, fill)


def satisfaction_grid(
    verifier: Verifier,
    prop: PropertySpec,
    x_feature: str = "throughput",
    y_feature: str = "inv_rtt",
    x_values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    y_values: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    cwnd_tcp: float = 50.0,
    cwnd_prev: float = 50.0,
    n_components: int = 10,
    fill: float = 0.5,
) -> SatisfactionGrid:
    """Sweep two *non-abstracted* observation features and certify at each cell.

    The features the property abstracts (delay/loss/Δcwnd or the noise dims)
    are always covered by the certificate; this sweeps the remaining context
    the controller conditions on.
    """
    observer = verifier.observer
    x_values = np.asarray(list(x_values), dtype=np.float64)
    y_values = np.asarray(list(y_values), dtype=np.float64)
    feedback = np.zeros((y_values.size, x_values.size))
    for yi, y in enumerate(y_values):
        for xi, x in enumerate(x_values):
            state = _base_state(verifier, fill)
            for idx in observer.feature_indices(x_feature):
                state[idx] = x
            for idx in observer.feature_indices(y_feature):
                state[idx] = y
            certificate = verifier.certify(prop, state, cwnd_tcp, cwnd_prev, n_components=n_components)
            feedback[yi, xi] = certificate.feedback
    return SatisfactionGrid(prop.name, x_feature, y_feature, x_values, y_values, feedback)


def property_report(
    verifier: Verifier,
    properties: PropertySet,
    states: Sequence[np.ndarray],
    cwnd_tcp: float = 50.0,
    cwnd_prev: float = 50.0,
    n_components: int = 10,
) -> List[Dict[str, float]]:
    """Per-property satisfaction statistics over a set of observation states."""
    rows = []
    for prop in properties:
        feedbacks = []
        proofs = 0
        for state in states:
            certificate = verifier.certify(prop, np.asarray(state, dtype=np.float64),
                                           cwnd_tcp, cwnd_prev, n_components=n_components)
            feedbacks.append(certificate.feedback)
            proofs += 1 if certificate.proof else 0
        rows.append({
            "property": prop.name,
            "mean_feedback": float(np.mean(feedbacks)) if feedbacks else 1.0,
            "min_feedback": float(np.min(feedbacks)) if feedbacks else 1.0,
            "proof_fraction": proofs / len(states) if states else 1.0,
            "n_states": len(states),
        })
    return rows


def compare_controllers(
    verifiers: Dict[str, Verifier],
    properties: PropertySet,
    states: Sequence[np.ndarray],
    cwnd_tcp: float = 50.0,
    cwnd_prev: float = 50.0,
    n_components: int = 10,
) -> List[Dict[str, float]]:
    """Side-by-side mean QC feedback of several controllers on the same states."""
    rows = []
    for name, verifier in verifiers.items():
        report = property_report(verifier, properties, states, cwnd_tcp, cwnd_prev, n_components)
        overall = float(np.mean([row["mean_feedback"] for row in report])) if report else 1.0
        rows.append({"controller": name, "mean_feedback": overall,
                     **{f"{row['property']}_feedback": row["mean_feedback"] for row in report}})
    return rows
