"""Bundled Canopy configuration presets.

The evaluation studies three Canopy model families (Section 6): a
shallow-buffer model (trained with P1+P2 on 0.5 BDP buffers), a deep-buffer
model (P3+P4 on 5 BDP buffers) and a robustness model (P5 on 2 BDP buffers).
:class:`CanopyConfig` captures the knobs shared by all of them and provides
the three presets with the paper's hyperparameters (λ = 0.25, N = 5, k = 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.core.properties import (
    PropertySet,
    deep_buffer_properties,
    robustness_properties,
    shallow_buffer_properties,
)
from repro.orca.env import OrcaEnvConfig
from repro.orca.observations import ObservationConfig
from repro.rl.td3 import TD3Config
from repro.topology.families import parse_topology

__all__ = ["CanopyConfig"]


@dataclass
class CanopyConfig:
    """Everything needed to train and evaluate one Canopy model.

    ``topologies`` selects the training-environment scenario catalog (see
    :class:`repro.orca.env.OrcaEnvConfig`): one family spec pins every episode
    to that family, several specs train a domain-randomized model across
    families.  It only shapes the environment built here — an explicitly
    supplied ``env`` keeps its own catalog.
    """

    name: str
    properties: PropertySet
    lam: float = 0.25
    n_components: int = 5
    buffer_bdp: float = 2.0
    observation: ObservationConfig = field(default_factory=ObservationConfig)
    env: Optional[OrcaEnvConfig] = None
    td3: Optional[TD3Config] = None
    observation_noise: float = 0.0
    topologies: Sequence[str] = ("single_bottleneck",)
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError("lambda must be in [0, 1]")
        if self.n_components <= 0:
            raise ValueError("n_components must be positive")
        if self.buffer_bdp <= 0:
            raise ValueError("buffer_bdp must be positive")
        self.topologies = tuple(str(spec) for spec in self.topologies)
        if not self.topologies:
            raise ValueError("topologies catalog must name at least one family spec")
        for spec in self.topologies:
            parse_topology(spec)  # fail fast on malformed family specs
        if self.env is None:
            self.env = OrcaEnvConfig(
                buffer_bdp=self.buffer_bdp,
                observation=self.observation,
                observation_noise=self.observation_noise,
                topologies=self.topologies,
                seed=self.seed,
            )
        if self.td3 is None:
            self.td3 = TD3Config(state_dim=self.observation.state_dim, seed=self.seed)

    # ------------------------------------------------------------------ #
    # Presets matching the three evaluated Canopy models
    # ------------------------------------------------------------------ #
    @classmethod
    def shallow(cls, lam: float = 0.25, n_components: int = 5, seed: int = 0) -> "CanopyConfig":
        """Canopy trained with the shallow-buffer properties (P1 + P2)."""
        return cls(name="canopy-shallow", properties=shallow_buffer_properties(),
                   lam=lam, n_components=n_components, buffer_bdp=0.5, seed=seed)

    @classmethod
    def deep(cls, lam: float = 0.25, n_components: int = 5, seed: int = 0) -> "CanopyConfig":
        """Canopy trained with the deep-buffer properties (P3 + P4)."""
        return cls(name="canopy-deep", properties=deep_buffer_properties(),
                   lam=lam, n_components=n_components, buffer_bdp=5.0, seed=seed)

    @classmethod
    def robustness(cls, lam: float = 0.25, n_components: int = 5, seed: int = 0) -> "CanopyConfig":
        """Canopy trained with the robustness property (P5)."""
        return cls(name="canopy-robust", properties=robustness_properties(),
                   lam=lam, n_components=n_components, buffer_bdp=2.0,
                   observation_noise=0.05, seed=seed)

    @classmethod
    def orca_baseline(cls, buffer_bdp: float = 2.0, seed: int = 0) -> "CanopyConfig":
        """The Orca baseline: same pipeline with λ = 0 (no verifier shaping).

        The verifier feedback is still *measured* during training so the
        training-curve comparison of Figure 17 can be reproduced.
        """
        return cls(name="orca", properties=shallow_buffer_properties(),
                   lam=0.0, n_components=5, buffer_bdp=buffer_bdp, seed=seed)

    def with_lambda(self, lam: float) -> "CanopyConfig":
        return replace(self, lam=lam, env=None, td3=None)

    def with_components(self, n_components: int) -> "CanopyConfig":
        return replace(self, n_components=n_components, env=None, td3=None)

    def with_topologies(self, topologies: Sequence[str]) -> "CanopyConfig":
        """The same model preset trained on a different scenario catalog."""
        return replace(self, topologies=tuple(topologies), env=None, td3=None)
