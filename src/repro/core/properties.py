"""The Canopy property language and the five concrete properties P1–P5.

A property ``φ(π, X, Y)`` (Section 4.1) has a *precondition* ``X`` over the
past ``k`` steps of observed network state and a *postcondition* forbidding an
undesirable action region ``Y``.  In this reproduction a
:class:`PropertySpec` captures:

* which observation features are abstracted (the precondition ranges over the
  normalized queuing delay and, where relevant, the loss rate),
* the concrete side-conditions that are *not* abstracted (the sign of the past
  cwnd changes in P1–P4),
* the checked action (``Δcwnd`` for P1–P4, the fractional cwnd change for P5),
* the allowed action region ``A \\ Y``.

Default numeric parameters follow Section 6.1: ``q_min_delay = 0.01``,
``q_delay = 0.25``, ``p_delay = 0.75``, ``p_loss = 0.75``, ``μ = 0.05``,
``ε = 0.01`` and ``k = 3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.abstract.box import Box
from repro.abstract.interval import Interval
from repro.orca.observations import ObservationBuilder

__all__ = [
    "ActionKind",
    "PropertySpec",
    "PropertySet",
    "property_p1",
    "property_p2",
    "property_p3",
    "property_p4_case_i",
    "property_p4_case_ii",
    "property_p5",
    "shallow_buffer_properties",
    "deep_buffer_properties",
    "robustness_properties",
    "all_properties",
]

#: A large-but-finite bound standing in for +inf on cwnd deltas (packets).
ACTION_BOUND = 1e9

#: Tolerance used when checking concrete sign conditions on past Δcwnd.
_SIGN_TOL = 1e-6


class ActionKind(Enum):
    """Which derived action a property's postcondition constrains."""

    DELTA_CWND = "delta_cwnd"              # cwnd_i − cwnd_{i−1}  (P1–P4)
    CWND_CHANGE_FRACTION = "cwnd_change"   # (cwnd − cwnd_i) / cwnd_i  (P5)


@dataclass(frozen=True)
class PropertySpec:
    """One property φ(π, X, Y) in Canopy's format.

    Attributes:
        name: Short identifier (``"P1"`` ... ``"P5"`` or user-defined).
        description: Human-readable statement of the property.
        kind: The checked action (:class:`ActionKind`).
        delay_range: Normalized queuing-delay precondition over the past ``k``
            steps (abstracted by the verifier), or ``None`` to keep the
            observed values.
        loss_range: Normalized loss-rate precondition (abstracted when the
            range has positive width), or ``None``.
        dcwnd_sign: Concrete side condition on past cwnd changes: ``-1`` means
            all past Δcwnd ≤ 0, ``+1`` means ≥ 0, ``None`` means no condition.
        allowed_direction: For Δcwnd properties: ``+1`` allows non-decrease
            (Y = {Δcwnd < 0}), ``-1`` allows non-increase (Y = {Δcwnd > 0}).
        epsilon: For robustness: the allowed fractional cwnd fluctuation.
        noise_mu: For robustness: relative input perturbation bound μ.
        noise_features: Observation features perturbed by the robustness
            property (default: the queuing delay, as in the paper's prototype).
        weight: Relative weight when combined in a :class:`PropertySet`.
    """

    name: str
    description: str
    kind: ActionKind
    delay_range: Optional[Tuple[float, float]] = None
    loss_range: Optional[Tuple[float, float]] = None
    dcwnd_sign: Optional[int] = None
    allowed_direction: Optional[int] = None
    epsilon: Optional[float] = None
    noise_mu: float = 0.0
    noise_features: Tuple[str, ...] = ("delay",)
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.kind is ActionKind.DELTA_CWND:
            if self.allowed_direction not in (-1, 1):
                raise ValueError(f"{self.name}: Δcwnd properties need allowed_direction ±1")
        elif self.kind is ActionKind.CWND_CHANGE_FRACTION:
            if self.epsilon is None or self.epsilon <= 0:
                raise ValueError(f"{self.name}: robustness properties need epsilon > 0")
            if self.noise_mu <= 0:
                raise ValueError(f"{self.name}: robustness properties need noise_mu > 0")
        if self.dcwnd_sign not in (None, -1, 1):
            raise ValueError("dcwnd_sign must be None, -1 or +1")
        for bounds in (self.delay_range, self.loss_range):
            if bounds is not None and (bounds[0] > bounds[1]):
                raise ValueError("precondition ranges must have lo <= hi")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    # ------------------------------------------------------------------ #
    # Precondition handling
    # ------------------------------------------------------------------ #
    def concrete_precondition_holds(self, observer: ObservationBuilder) -> bool:
        """Whether the non-abstracted side conditions hold at the current state.

        For P1–P4 this is the sign condition on the past cwnd changes; the
        delay/loss ranges are part of the abstracted input region and hence do
        not gate applicability.  P5 applies at every state.
        """
        if self.dcwnd_sign is None:
            return True
        history = observer.feature_history("dcwnd")
        if self.dcwnd_sign < 0:
            return bool(np.all(history <= _SIGN_TOL))
        return bool(np.all(history >= -_SIGN_TOL))

    def abstracted_features(self) -> List[str]:
        """Observation features replaced by intervals in the input region.

        For P1–P4 the region spans every feature the precondition constrains
        (queuing delay, loss rate and the sign-restricted past Δcwnd); all
        other dimensions stay at their observed values, as in the paper's
        prototype.  For P5 the perturbed features are abstracted.
        """
        if self.kind is ActionKind.CWND_CHANGE_FRACTION:
            return list(self.noise_features)
        features: List[str] = []
        if self.delay_range is not None:
            features.append("delay")
        if self.loss_range is not None:
            features.append("loss")
        if self.dcwnd_sign is not None:
            features.append("dcwnd")
        return features

    def partition_features(self) -> List[str]:
        """The variables of interest along which QC components are partitioned."""
        if self.kind is ActionKind.CWND_CHANGE_FRACTION:
            return list(self.noise_features)
        return ["delay"] if self.delay_range is not None else self.abstracted_features()[:1]

    def partition_dims(self, observer: ObservationBuilder) -> List[int]:
        """State-vector dimensions along which QC components are partitioned."""
        dims: List[int] = []
        for feature in self.partition_features():
            dims.extend(observer.feature_indices(feature))
        return dims

    def input_region(self, state: np.ndarray, observer: ObservationBuilder) -> Box:
        """The abstract input region X around the (concrete) current state.

        Only the variables of interest are abstracted (Section 5); every other
        dimension stays at its observed value.
        """
        state = np.asarray(state, dtype=np.float64)
        if state.shape[0] != observer.state_dim:
            raise ValueError(f"state has dim {state.shape[0]}, expected {observer.state_dim}")
        lo = state.copy()
        hi = state.copy()
        if self.kind is ActionKind.CWND_CHANGE_FRACTION:
            for feature in self.noise_features:
                for idx in observer.feature_indices(feature):
                    low_value = state[idx] * (1.0 - self.noise_mu)
                    high_value = state[idx] * (1.0 + self.noise_mu)
                    lo[idx] = min(low_value, high_value)
                    hi[idx] = max(low_value, high_value)
            return Box.from_bounds(lo, hi)
        if self.delay_range is not None:
            for idx in observer.feature_indices("delay"):
                lo[idx], hi[idx] = self.delay_range
        if self.loss_range is not None:
            for idx in observer.feature_indices("loss"):
                lo[idx], hi[idx] = self.loss_range
        if self.dcwnd_sign is not None:
            for idx in observer.feature_indices("dcwnd"):
                lo[idx], hi[idx] = (-1.0, 0.0) if self.dcwnd_sign < 0 else (0.0, 1.0)
        return Box.from_bounds(lo, hi)

    # ------------------------------------------------------------------ #
    # Postcondition handling
    # ------------------------------------------------------------------ #
    def allowed_interval(self) -> Interval:
        """The allowed action region ``A \\ Y`` as an interval."""
        if self.kind is ActionKind.DELTA_CWND:
            if self.allowed_direction > 0:
                return Interval(0.0, ACTION_BOUND)
            return Interval(-ACTION_BOUND, 0.0)
        return Interval(-float(self.epsilon), float(self.epsilon))

    def checked_action_concrete(self, cwnd: float, cwnd_prev: float, cwnd_reference: float) -> float:
        """The concrete checked action (Δcwnd or fractional change)."""
        if self.kind is ActionKind.DELTA_CWND:
            return cwnd - cwnd_prev
        if cwnd_reference <= 0:
            raise ValueError("cwnd_reference must be positive for robustness properties")
        return (cwnd - cwnd_reference) / cwnd_reference

    def satisfied_concretely(self, cwnd: float, cwnd_prev: float, cwnd_reference: float, tol: float = 1e-9) -> bool:
        """Empirical (non-certified) check of the postcondition on concrete values."""
        action = self.checked_action_concrete(cwnd, cwnd_prev, cwnd_reference)
        allowed = self.allowed_interval()
        return allowed.contains(action, tol=tol)

    def with_weight(self, weight: float) -> "PropertySpec":
        return replace(self, weight=weight)


# ---------------------------------------------------------------------- #
# The five concrete properties of Table 2
# ---------------------------------------------------------------------- #
def property_p1(q_min_delay: float = 0.01) -> PropertySpec:
    """P1 [shallow buffer, good conditions]: no loss, tiny delays, past Δcwnd ≤ 0 ⇒ do not decrease cwnd."""
    return PropertySpec(
        name="P1",
        description="Shallow buffer, good network condition: eventually do not decrease cwnd",
        kind=ActionKind.DELTA_CWND,
        delay_range=(0.0, q_min_delay),
        loss_range=(0.0, 0.0),
        dcwnd_sign=-1,
        allowed_direction=+1,
    )


def property_p2(q_min_delay: float = 0.01, p_loss: float = 0.75) -> PropertySpec:
    """P2 [shallow buffer, bad conditions]: high loss, past Δcwnd ≥ 0 ⇒ do not increase cwnd."""
    return PropertySpec(
        name="P2",
        description="Shallow buffer, bad network condition: eventually do not increase cwnd",
        kind=ActionKind.DELTA_CWND,
        delay_range=(0.0, q_min_delay),
        loss_range=(p_loss, 1.0),
        dcwnd_sign=+1,
        allowed_direction=-1,
    )


def property_p3(q_delay: float = 0.25) -> PropertySpec:
    """P3 [deep buffer, good conditions]: low delays, no loss, past Δcwnd ≤ 0 ⇒ do not decrease cwnd."""
    return PropertySpec(
        name="P3",
        description="Deep buffer, good network condition: eventually do not decrease cwnd",
        kind=ActionKind.DELTA_CWND,
        delay_range=(0.0, q_delay),
        loss_range=(0.0, 0.0),
        dcwnd_sign=-1,
        allowed_direction=+1,
    )


def property_p4_case_i(p_delay: float = 0.75) -> PropertySpec:
    """P4(i) [deep buffer, bad conditions]: high delays, past Δcwnd ≥ 0 ⇒ do not increase cwnd."""
    return PropertySpec(
        name="P4i",
        description="Deep buffer, bad condition caused by this flow: do not keep increasing cwnd",
        kind=ActionKind.DELTA_CWND,
        delay_range=(p_delay, 1.0),
        loss_range=None,
        dcwnd_sign=+1,
        allowed_direction=-1,
    )


def property_p4_case_ii(p_delay: float = 0.75) -> PropertySpec:
    """P4(ii) [deep buffer, bad conditions]: high delays, past Δcwnd ≤ 0 ⇒ do not keep decreasing cwnd."""
    return PropertySpec(
        name="P4ii",
        description="Deep buffer, bad condition caused by other flows: do not keep decreasing cwnd",
        kind=ActionKind.DELTA_CWND,
        delay_range=(p_delay, 1.0),
        loss_range=None,
        dcwnd_sign=-1,
        allowed_direction=+1,
    )


def property_p5(mu: float = 0.05, epsilon: float = 0.01, noise_features: Sequence[str] = ("delay",)) -> PropertySpec:
    """P5 [robustness]: bounded input noise ⇒ bounded fractional cwnd change."""
    return PropertySpec(
        name="P5",
        description="Noise robustness: small observation noise must not drastically change the action",
        kind=ActionKind.CWND_CHANGE_FRACTION,
        epsilon=epsilon,
        noise_mu=mu,
        noise_features=tuple(noise_features),
    )


# ---------------------------------------------------------------------- #
# Property sets (the three Canopy model families in the evaluation)
# ---------------------------------------------------------------------- #
@dataclass
class PropertySet:
    """A weighted collection of properties trained/evaluated together."""

    name: str
    properties: List[PropertySpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.properties:
            raise ValueError("a PropertySet needs at least one property")
        names = [p.name for p in self.properties]
        if len(set(names)) != len(names):
            raise ValueError("property names within a set must be unique")

    def __iter__(self) -> Iterator[PropertySpec]:
        return iter(self.properties)

    def __len__(self) -> int:
        return len(self.properties)

    def by_name(self, name: str) -> PropertySpec:
        for prop in self.properties:
            if prop.name == name:
                return prop
        raise KeyError(f"no property named {name!r} in set {self.name!r}")

    def weights(self) -> Dict[str, float]:
        return {p.name: p.weight for p in self.properties}

    def reweighted(self, weights: Dict[str, float]) -> "PropertySet":
        """A copy with per-property weights replaced (the paper's remedy for P4)."""
        updated = [p.with_weight(weights.get(p.name, p.weight)) for p in self.properties]
        return PropertySet(self.name, updated)


def shallow_buffer_properties(q_min_delay: float = 0.01, p_loss: float = 0.75) -> PropertySet:
    """P1 + P2, used to train the shallow-buffer Canopy model."""
    return PropertySet("shallow", [property_p1(q_min_delay), property_p2(q_min_delay, p_loss)])


def deep_buffer_properties(q_delay: float = 0.25, p_delay: float = 0.75) -> PropertySet:
    """P3 + P4(i) + P4(ii), used to train the deep-buffer Canopy model."""
    return PropertySet("deep", [property_p3(q_delay), property_p4_case_i(p_delay), property_p4_case_ii(p_delay)])


def robustness_properties(mu: float = 0.05, epsilon: float = 0.01) -> PropertySet:
    """P5, used to train the robustness Canopy model."""
    return PropertySet("robustness", [property_p5(mu, epsilon)])


def all_properties() -> PropertySet:
    """All five properties together (used for cross-cutting analyses)."""
    return PropertySet(
        "all",
        [property_p1(), property_p2(), property_p3(), property_p4_case_i(), property_p4_case_ii(), property_p5()],
    )
