"""Canopy core: property-driven learning with quantitative certificates.

This package implements the paper's primary contribution:

* :mod:`repro.core.properties` — the property language and the five concrete
  properties P1–P5 of Table 2 (shallow-buffer, deep-buffer, robustness).
* :mod:`repro.core.qc` — the quantitative certificate (QC) object: per-component
  proofs plus the smoothed feedback of Eq. 6.
* :mod:`repro.core.verifier` — the abstract-interpretation verifier that
  propagates property input regions through the controller and the cwnd map.
* :mod:`repro.core.reward` — QC-shaped reward (Eq. 10) combining the raw Orca
  reward with the verifier feedback.
* :mod:`repro.core.trainer` — certification-in-the-loop TD3 training.
* :mod:`repro.core.monitor` — the runtime QC monitor and CUBIC fallback
  (Section 4.4).
* :mod:`repro.core.config` — bundled configuration presets for the three
  Canopy model families studied in the evaluation.
"""

from repro.core.properties import (
    ActionKind,
    PropertySpec,
    PropertySet,
    property_p1,
    property_p2,
    property_p3,
    property_p4_case_i,
    property_p4_case_ii,
    property_p5,
    shallow_buffer_properties,
    deep_buffer_properties,
    robustness_properties,
)
from repro.core.qc import ComponentCertificate, QuantitativeCertificate, interval_feedback
from repro.core.verifier import Verifier, VerifierConfig
from repro.core.reward import CanopyRewardShaper, ShapedReward
from repro.core.trainer import CanopyTrainer, TrainerConfig, TrainingResult
from repro.core.monitor import QCRuntimeMonitor
from repro.core.config import CanopyConfig
from repro.core.analysis import SatisfactionGrid, compare_controllers, property_report, satisfaction_grid

__all__ = [
    "ActionKind",
    "PropertySpec",
    "PropertySet",
    "property_p1",
    "property_p2",
    "property_p3",
    "property_p4_case_i",
    "property_p4_case_ii",
    "property_p5",
    "shallow_buffer_properties",
    "deep_buffer_properties",
    "robustness_properties",
    "ComponentCertificate",
    "QuantitativeCertificate",
    "interval_feedback",
    "Verifier",
    "VerifierConfig",
    "CanopyRewardShaper",
    "ShapedReward",
    "CanopyTrainer",
    "TrainerConfig",
    "TrainingResult",
    "QCRuntimeMonitor",
    "CanopyConfig",
    "SatisfactionGrid",
    "satisfaction_grid",
    "property_report",
    "compare_controllers",
]
