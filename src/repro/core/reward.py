"""QC-shaped reward (the unconstrained objective of Eq. 10).

The Canopy trainer replaces the raw Orca reward ``R`` with::

    r_total = (1 − λ) · r_raw + λ · r_verifier

where ``r_verifier`` is the weighted-average QC feedback over the trained
property set (Eq. 7).  ``λ = 0`` recovers plain Orca; ``λ → 1`` trains purely
for worst-case property adherence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.properties import PropertySet
from repro.core.verifier import Verifier

__all__ = ["ShapedReward", "CanopyRewardShaper"]


@dataclass(frozen=True)
class ShapedReward:
    """The decomposition of one shaped reward value."""

    total: float
    raw: float
    verifier: float
    lam: float
    per_property: Dict[str, float]


class CanopyRewardShaper:
    """Combines the raw reward with verifier feedback at every decision step."""

    def __init__(self, verifier: Verifier, properties: PropertySet, lam: float = 0.25,
                 n_components: Optional[int] = None) -> None:
        if not 0.0 <= lam <= 1.0:
            raise ValueError("lambda must be in [0, 1]")
        self.verifier = verifier
        self.properties = properties
        self.lam = float(lam)
        self.n_components = n_components

    def shape(self, raw_reward: float, state: np.ndarray, cwnd_tcp: float, cwnd_prev: float) -> ShapedReward:
        """Compute Eq. 10 for one step and return the decomposition."""
        per_property: Dict[str, float] = {}
        total_feedback = 0.0
        weight_sum = 0.0
        for prop in self.properties:
            certificate = self.verifier.certify(
                prop, state, cwnd_tcp, cwnd_prev, n_components=self.n_components
            )
            per_property[prop.name] = certificate.feedback
            total_feedback += prop.weight * certificate.feedback
            weight_sum += prop.weight
        verifier_reward = total_feedback / weight_sum if weight_sum > 0 else 1.0
        total = (1.0 - self.lam) * raw_reward + self.lam * verifier_reward
        return ShapedReward(
            total=float(total),
            raw=float(raw_reward),
            verifier=float(verifier_reward),
            lam=self.lam,
            per_property=per_property,
        )
