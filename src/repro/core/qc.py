"""Quantitative certificates (QCs).

A QC (Section 4.3) has two pieces:

* a **proof**: for each input component ``X_n``, whether the propagated output
  region provably lies inside the allowed action region ``A \\ Y``;
* **feedback**: the smoothed fractional-volume measure of Eq. 6, averaged
  across components, which the Canopy trainer folds into the reward.

The :class:`QuantitativeCertificate` produced by the verifier carries both,
plus enough detail (per-component output bounds) to reproduce the
certified-component visualizations of Figures 6 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.abstract.interval import Interval

__all__ = [
    "interval_feedback",
    "interval_feedback_batch",
    "ComponentCertificate",
    "QuantitativeCertificate",
]

#: Containment tolerance shared by the scalar and batched feedback paths
#: (matches the defaults of Interval.contains / contains_interval).
_CONTAIN_TOL = 1e-9


def interval_feedback(output: Interval, allowed: Interval) -> float:
    """Eq. 6: the fraction of the output region provably inside ``allowed``.

    * 1.0 when the output region is entirely inside the allowed region,
    * 0.0 when it is entirely inside the undesired region ``Y``,
    * otherwise the relative volume of the overlap.
    """
    if allowed.contains_interval(output):
        return 1.0
    if not output.intersects(allowed):
        return 0.0
    return output.overlap_fraction(allowed)


def interval_feedback_batch(
    output_lo: np.ndarray,
    output_hi: np.ndarray,
    allowed: Interval,
) -> tuple:
    """Vectorized proof + Eq. 6 feedback over ``N`` scalar output intervals.

    Takes the per-component checked-action bounds as flat ``(N,)`` arrays and
    the (scalar) allowed region; returns ``(satisfied, feedback)`` boolean and
    float arrays of shape ``(N,)``.  Component ``i`` matches the scalar path
    ``(allowed.contains_interval(out_i), interval_feedback(out_i, allowed))``
    exactly, including the containment tolerance and the degenerate
    (zero-width) interval rule.
    """
    output_lo = np.asarray(output_lo, dtype=np.float64).reshape(-1)
    output_hi = np.asarray(output_hi, dtype=np.float64).reshape(-1)
    allowed_lo = float(np.asarray(allowed.lo).reshape(-1)[0])
    allowed_hi = float(np.asarray(allowed.hi).reshape(-1)[0])

    satisfied = (output_lo >= allowed_lo - _CONTAIN_TOL) & (output_hi <= allowed_hi + _CONTAIN_TOL)
    intersects = (output_lo <= allowed_hi) & (allowed_lo <= output_hi)
    width = output_hi - output_lo
    overlap = np.minimum(output_hi, allowed_hi) - np.maximum(output_lo, allowed_lo)
    fraction = np.clip(overlap / np.where(width > 0, width, 1.0), 0.0, 1.0)
    center = (output_lo + output_hi) / 2.0
    center_inside = (center >= allowed_lo - _CONTAIN_TOL) & (center <= allowed_hi + _CONTAIN_TOL)
    fraction = np.where(width > 0, fraction, np.where(center_inside, 1.0, 0.0))
    feedback = np.where(satisfied, 1.0, np.where(intersects, fraction, 0.0))
    return satisfied, feedback


@dataclass(frozen=True)
class ComponentCertificate:
    """Certification outcome for one input component ``X_n``."""

    index: int
    input_lo: np.ndarray
    input_hi: np.ndarray
    output_lo: float
    output_hi: float
    satisfied: bool
    feedback: float

    @property
    def output_interval(self) -> Interval:
        return Interval(self.output_lo, self.output_hi)


@dataclass
class QuantitativeCertificate:
    """The QC for one property at one decision step."""

    property_name: str
    allowed_lo: float
    allowed_hi: float
    components: List[ComponentCertificate] = field(default_factory=list)
    applicable: bool = True

    # ------------------------------------------------------------------ #
    @property
    def n_components(self) -> int:
        return len(self.components)

    @property
    def feedback(self) -> float:
        """QC feedback: mean of the per-component smoothed feedback (Eq. 6)."""
        if not self.components:
            return 1.0
        return float(np.mean([c.feedback for c in self.components]))

    @property
    def satisfied_fraction(self) -> float:
        """Fraction of components whose certification is a full (boolean) proof."""
        if not self.components:
            return 1.0
        return float(np.mean([1.0 if c.satisfied else 0.0 for c in self.components]))

    @property
    def proof(self) -> bool:
        """True iff every component provably satisfies the property.

        When this holds the QC coincides with the boolean certificate of prior
        verification work: ``π ⊢_c φ`` on the whole input region ``X``.
        """
        return all(c.satisfied for c in self.components) if self.components else True

    @property
    def allowed_interval(self) -> Interval:
        return Interval(self.allowed_lo, self.allowed_hi)

    def output_bounds(self) -> np.ndarray:
        """Per-component ``(lo, hi)`` output bounds — the data behind Figs. 6/8."""
        return np.array([[c.output_lo, c.output_hi] for c in self.components], dtype=np.float64)

    def summary(self) -> dict:
        return {
            "property": self.property_name,
            "feedback": self.feedback,
            "satisfied_fraction": self.satisfied_fraction,
            "proof": self.proof,
            "n_components": self.n_components,
            "applicable": self.applicable,
        }
