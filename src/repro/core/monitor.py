"""Runtime QC monitoring and CUBIC fallback (Section 4.4 of the paper).

``QC_sat`` is generated alongside the model and can be used as an online
signal: before each coarse-grained decision, the monitor computes the QC of
the deployed controller around the current state and compares its feedback to
a threshold.  When the feedback meets the threshold the learned decision is
applied; otherwise the controller falls back to plain TCP CUBIC for that step.

The monitor is exposed as a *decision filter* compatible with
:class:`repro.orca.agent.LearnedController`, and also keeps a history of QC
values so the evaluation harness can report runtime QC_sat alongside the
performance metrics (Figures 5, 7, 13).

When an :class:`~repro.telemetry.events.EventTrace` is attached, every
decision emits a ``qc_decision`` event (QC value, margin to threshold,
verdict) and the allow→veto / veto→allow transitions emit
``fallback_enter`` / ``fallback_exit`` — the boundaries the telemetry summary
folds into fallback-storm episodes.  Timestamps ride the trace's tick clock,
which the simulator advances; the monitor itself never reads a wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.properties import PropertySet
from repro.core.verifier import Verifier
from repro.telemetry.events import EventTrace

__all__ = ["QCRuntimeMonitor"]


@dataclass
class _MonitorRecord:
    qc_value: float
    allowed_learned: bool
    per_property: dict


class QCRuntimeMonitor:
    """Computes QC_sat before each decision and gates the learned action."""

    def __init__(
        self,
        verifier: Verifier,
        properties: PropertySet,
        threshold: float = 0.5,
        n_components: int = 50,
        enabled: bool = True,
        telemetry: Optional[EventTrace] = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if n_components <= 0:
            raise ValueError("n_components must be positive")
        self.verifier = verifier
        self.properties = properties
        self.threshold = float(threshold)
        self.n_components = int(n_components)
        self.enabled = enabled
        self.telemetry = telemetry
        self.records: List[_MonitorRecord] = []
        self._in_fallback = False

    # ------------------------------------------------------------------ #
    def evaluate(self, state: np.ndarray, cwnd_tcp: float, cwnd_prev: float) -> Tuple[float, dict]:
        """QC feedback (weighted over the property set) at this decision point."""
        per_property = {}
        total = 0.0
        weight_sum = 0.0
        for prop in self.properties:
            certificate = self.verifier.certify(
                prop, state, cwnd_tcp, cwnd_prev, n_components=self.n_components
            )
            per_property[prop.name] = certificate.feedback
            total += prop.weight * certificate.feedback
            weight_sum += prop.weight
        qc_value = total / weight_sum if weight_sum > 0 else 1.0
        return qc_value, per_property

    def decision_filter(self, state: np.ndarray, cwnd_tcp: float, cwnd_prev: float) -> Tuple[bool, float]:
        """The callback installed on :class:`repro.orca.agent.LearnedController`.

        Returns ``(allow_learned_action, qc_value)``.
        """
        qc_value, per_property = self.evaluate(state, cwnd_tcp, cwnd_prev)
        allow = (not self.enabled) or qc_value >= self.threshold
        self.records.append(_MonitorRecord(qc_value, allow, per_property))
        tel = self.telemetry
        if tel is not None:
            tel.emit("qc_decision", qc=qc_value,
                     margin=qc_value - self.threshold, allowed=bool(allow))
            if not allow and not self._in_fallback:
                self._in_fallback = True
                tel.emit("fallback_enter", qc=qc_value)
            elif allow and self._in_fallback:
                self._in_fallback = False
                tel.emit("fallback_exit", qc=qc_value)
        return allow, qc_value

    # ------------------------------------------------------------------ #
    @property
    def mean_qc(self) -> float:
        """Mean QC over the recorded decisions; 1.0 (vacuously satisfied)
        when no decision has been recorded yet."""
        if not self.records:
            return 1.0
        return float(np.mean([record.qc_value for record in self.records]))

    @property
    def fallback_fraction(self) -> float:
        """Fraction of decisions that fell back to CUBIC; 0.0 when no
        decision has been recorded yet."""
        if not self.records:
            return 0.0
        return float(np.mean([0.0 if record.allowed_learned else 1.0 for record in self.records]))

    @property
    def n_fallback_episodes(self) -> int:
        """Number of contiguous vetoed-decision runs (fallback storms)."""
        episodes = 0
        previous_allowed = True
        for record in self.records:
            if not record.allowed_learned and previous_allowed:
                episodes += 1
            previous_allowed = record.allowed_learned
        return episodes

    @property
    def longest_fallback_run(self) -> int:
        """Length (in decisions) of the longest contiguous vetoed run."""
        longest = run = 0
        for record in self.records:
            run = run + 1 if not record.allowed_learned else 0
            longest = max(longest, run)
        return longest

    def reset(self) -> None:
        self.records = []
        self._in_fallback = False
