"""Workload specifications: *who shares the network, and when*, as a string.

A workload spec is a compact string — ``static``, ``responsive(cubic:2)``,
``poisson(0.1)``, ``step(2-6:4-8)`` — that :func:`build_workload` (in
:mod:`repro.workload.build`) expands into concrete closed-loop background
flows around an evaluation run.  Like topology family specs, workload specs
are plain strings so they travel freely through
:class:`~repro.harness.spec.ScenarioSpec` keys, ``--set workload=...`` axis
overrides, CLI flags, and bench JSON.  The grammar is deliberately
*comma-free* so a comma-separated axis list (``--set
workload=static,poisson(0.1)``) splits cleanly into individual specs.

Kinds
-----

``static``
    No background workload (the legacy single-flow evaluation; default).

``responsive(scheme)`` / ``responsive(scheme:n)``
    ``n`` (default 1) closed-loop background flows running a classical
    congestion controller (``cubic``, ``newreno``, ``vegas``, ``bbr``) for
    the whole run.  Unlike the open-loop CBR/on-off cross traffic, these
    flows *react* to loss and delay in the shared FIFO queues — the Fig. 14
    friendliness setup, generalized to any scenario cell.

``poisson(rate)`` / ``poisson(rate:scheme)``
    Flow churn: background flows of ``scheme`` (default ``cubic``) arrive as
    a seeded Poisson process of ``rate`` flows/second and each departs after
    a seeded exponential lifetime — flows start and stop mid-run.

``step(a-b)`` / ``step(a-b:c-d:...)``
    Scripted churn: one background flow per ``start-stop`` window (an empty
    stop, ``step(2-)``, runs to the end of the experiment).

Every spec has one canonical form (:func:`canonical_workload`) — defaults
elided, numbers ``%g``-formatted — so two spellings of the same workload
never split a scenario key.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "WORKLOAD_KINDS",
    "WORKLOAD_SCHEMES",
    "DEFAULT_WORKLOAD",
    "DEFAULT_WORKLOAD_SCHEME",
    "WorkloadSpec",
    "parse_workload",
    "canonical_workload",
    "mutate_workload",
    "workload_specs",
]

#: Workload kinds accepted by :func:`parse_workload`.
WORKLOAD_KINDS = ("static", "responsive", "poisson", "step")

#: Classical controllers a background flow may run (kept in sync with
#: :data:`repro.workload.flows.CONTROLLER_FACTORIES`).
WORKLOAD_SCHEMES = ("cubic", "newreno", "vegas", "bbr")

#: The workload every evaluation uses unless told otherwise (legacy behaviour).
DEFAULT_WORKLOAD = "static"

#: The controller backing background flows when the spec names none.
DEFAULT_WORKLOAD_SCHEME = "cubic"

_SPEC_RE = re.compile(r"^\s*([a-z_]+)\s*(?:\(\s*([^()]*?)\s*\))?\s*$")
_WINDOW_RE = re.compile(r"^(\d+(?:\.\d+)?)-(\d+(?:\.\d+)?)?$")


def _format_number(value: float) -> str:
    return f"{value:g}"


@dataclass(frozen=True)
class WorkloadSpec:
    """One parsed workload: kind plus the knobs that kind uses.

    ``windows`` carries the scripted ``step`` lifetimes as ``(start, stop)``
    pairs (``stop=None`` = until the end of the run); ``rate`` is the Poisson
    arrival rate in flows/second; ``count`` the number of always-on
    responsive flows.
    """

    kind: str
    scheme: str = DEFAULT_WORKLOAD_SCHEME
    count: int = 1
    rate: float = 0.0
    windows: Tuple[Tuple[float, Optional[float]], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}; known: {WORKLOAD_KINDS}")
        if self.scheme not in WORKLOAD_SCHEMES:
            raise ValueError(f"unknown workload scheme {self.scheme!r}; "
                             f"known: {WORKLOAD_SCHEMES}")
        if self.kind == "responsive" and self.count < 1:
            raise ValueError("responsive workload needs count >= 1")
        if self.kind == "poisson" and self.rate <= 0:
            raise ValueError("poisson workload needs rate > 0")
        if self.kind == "step":
            if not self.windows:
                raise ValueError("step workload needs at least one start-stop window")
            for start, stop in self.windows:
                if start < 0:
                    raise ValueError("step window start must be non-negative")
                if stop is not None and stop <= start:
                    raise ValueError(f"step window {start:g}-{stop:g} must end after it starts")

    # ------------------------------------------------------------------ #
    def canonical(self) -> str:
        """The one canonical spelling (defaults elided, numbers ``%g``)."""
        if self.kind == "static":
            return "static"
        if self.kind == "responsive":
            if self.count == 1:
                return f"responsive({self.scheme})"
            return f"responsive({self.scheme}:{self.count})"
        if self.kind == "poisson":
            if self.scheme == DEFAULT_WORKLOAD_SCHEME:
                return f"poisson({_format_number(self.rate)})"
            return f"poisson({_format_number(self.rate)}:{self.scheme})"
        windows = ":".join(
            f"{_format_number(start)}-" if stop is None
            else f"{_format_number(start)}-{_format_number(stop)}"
            for start, stop in self.windows)
        return f"step({windows})"

    def __str__(self) -> str:
        return self.canonical()


# ---------------------------------------------------------------------- #
# Parsing
# ---------------------------------------------------------------------- #
def _parse_step_windows(body: str) -> Tuple[Tuple[float, Optional[float]], ...]:
    windows: List[Tuple[float, Optional[float]]] = []
    for part in body.split(":"):
        part = part.strip()
        match = _WINDOW_RE.match(part)
        if match is None:
            raise ValueError(f"malformed step window {part!r}; expected start-stop "
                             "(e.g. 2-6) or start- for an open end")
        start = float(match.group(1))
        stop = float(match.group(2)) if match.group(2) is not None else None
        windows.append((start, stop))
    return tuple(windows)


def parse_workload(spec: str) -> WorkloadSpec:
    """Parse a workload spec string; raises ``ValueError`` on malformed specs."""
    match = _SPEC_RE.match(spec or "")
    if match is None:
        raise ValueError(f"malformed workload spec {spec!r}; expected 'kind' or 'kind(args)'")
    kind, body = match.group(1), match.group(2)
    if kind not in WORKLOAD_KINDS:
        raise ValueError(f"unknown workload kind {kind!r}; known: {WORKLOAD_KINDS}")
    if kind == "static":
        if body is not None:
            raise ValueError("static takes no arguments")
        return WorkloadSpec(kind="static")
    if body is None or not body.strip():
        raise ValueError(f"workload kind {kind!r} needs arguments, e.g. "
                         "responsive(cubic:2), poisson(0.1), step(2-6)")
    body = body.strip()
    if kind == "responsive":
        scheme, _, raw_count = body.partition(":")
        count = 1
        if raw_count:
            try:
                count = int(raw_count)
            except ValueError:
                raise ValueError(f"responsive count must be an integer, got {raw_count!r}") from None
        return WorkloadSpec(kind="responsive", scheme=scheme.strip(), count=count)
    if kind == "poisson":
        raw_rate, _, scheme = body.partition(":")
        try:
            rate = float(raw_rate)
        except ValueError:
            raise ValueError(f"poisson rate must be a number, got {raw_rate!r}") from None
        return WorkloadSpec(kind="poisson", rate=rate,
                            scheme=scheme.strip() or DEFAULT_WORKLOAD_SCHEME)
    return WorkloadSpec(kind="step", windows=_parse_step_windows(body))


def canonical_workload(spec: str) -> str:
    """The canonical form of a workload spec: ``" responsive( cubic:1 ) "`` →
    ``"responsive(cubic)"``.  Two specs that build the same workload
    canonicalize to the same string, so scenario keys never split cells."""
    return parse_workload(spec).canonical()


def workload_specs() -> List[str]:
    """Representative specs for listings and sweeps (one per kind)."""
    return ["static", "responsive(cubic:2)", "poisson(0.25)", "step(2-6)"]


# ---------------------------------------------------------------------- #
# Mutation (the falsification search's workload move)
# ---------------------------------------------------------------------- #
#: Poisson arrival rates (flows/s) :func:`mutate_workload` introduces; rate
#: mutations stay within [min, 2*max] so canonical forms keep short %g forms.
_MUTATION_RATES = (0.05, 0.1, 0.25, 0.5, 1.0)

#: Ceiling on always-on responsive background flows a mutation may reach.
_MUTATION_MAX_FLOWS = 4

#: Most step windows a mutation may script (each is one background flow).
_MUTATION_MAX_WINDOWS = 3


def _pick(rng, options):
    return options[int(rng.integers(len(options)))]


def mutate_workload(spec: str, rng) -> str:
    """One seeded mutation step over the workload grammar; returns a canonical spec.

    ``rng`` is a ``numpy.random.Generator`` (only ``integers``/``random`` are
    called, so any duck-typed equivalent works).  Every move keeps the result
    inside the validated grammar — kind switches (``static`` ↔ churn), scheme
    swaps, flow-count/rate scaling on a fixed grid, and step-window
    shift/add/drop — so the falsification search can walk the workload axis
    without ever proposing a spec :func:`parse_workload` would reject.  The
    result may occasionally equal the input (a shift clipped at a bound);
    callers dedupe by scenario key.
    """
    current = parse_workload(spec)
    if current.kind == "static":
        kind = _pick(rng, ("responsive", "poisson", "step"))
        if kind == "responsive":
            mutated = WorkloadSpec(kind="responsive", scheme=_pick(rng, WORKLOAD_SCHEMES),
                                   count=int(rng.integers(1, _MUTATION_MAX_FLOWS + 1)))
        elif kind == "poisson":
            mutated = WorkloadSpec(kind="poisson", rate=_pick(rng, _MUTATION_RATES),
                                   scheme=_pick(rng, WORKLOAD_SCHEMES))
        else:
            start = float(int(rng.integers(0, 4)))
            length = float(int(rng.integers(2, 7)))
            mutated = WorkloadSpec(kind="step", windows=((start, start + length),))
    elif current.kind == "responsive":
        move = _pick(rng, ("count", "scheme", "kind"))
        if move == "count":
            delta = 1 if current.count == 1 else int(_pick(rng, (-1, 1)))
            count = min(max(current.count + delta, 1), _MUTATION_MAX_FLOWS)
            mutated = WorkloadSpec(kind="responsive", scheme=current.scheme, count=count)
        elif move == "scheme":
            others = [s for s in WORKLOAD_SCHEMES if s != current.scheme]
            mutated = WorkloadSpec(kind="responsive", scheme=_pick(rng, others),
                                   count=current.count)
        else:
            mutated = WorkloadSpec(kind="poisson", rate=_pick(rng, _MUTATION_RATES),
                                   scheme=current.scheme)
    elif current.kind == "poisson":
        move = _pick(rng, ("rate", "scheme", "kind"))
        if move == "rate":
            scale = _pick(rng, (0.5, 2.0))
            rate = min(max(current.rate * scale, _MUTATION_RATES[0]),
                       2.0 * _MUTATION_RATES[-1])
            mutated = WorkloadSpec(kind="poisson", rate=rate, scheme=current.scheme)
        elif move == "scheme":
            others = [s for s in WORKLOAD_SCHEMES if s != current.scheme]
            mutated = WorkloadSpec(kind="poisson", rate=current.rate,
                                   scheme=_pick(rng, others))
        else:
            mutated = WorkloadSpec(kind="responsive", scheme=current.scheme,
                                   count=int(rng.integers(1, _MUTATION_MAX_FLOWS + 1)))
    else:  # step
        move = _pick(rng, ("shift", "add", "drop"))
        windows = list(current.windows)
        if move == "drop" and len(windows) > 1:
            windows.pop(int(rng.integers(len(windows))))
        elif move == "add" and len(windows) < _MUTATION_MAX_WINDOWS:
            anchor = windows[-1][0]
            start = anchor + float(int(rng.integers(1, 4)))
            windows.append((start, start + float(int(rng.integers(2, 5)))))
        else:  # shift — also the fallback when add/drop sits at its bound
            index = int(rng.integers(len(windows)))
            start, stop = windows[index]
            shift = float(_pick(rng, (-1.0, 1.0)))
            start = max(0.0, start + shift)
            if stop is not None:
                stop = max(start + 1.0, stop + shift)
            windows[index] = (start, stop)
        windows.sort(key=lambda w: (w[0], w[1] if w[1] is not None else float("inf")))
        mutated = WorkloadSpec(kind="step", windows=tuple(windows))
    return mutated.canonical()
