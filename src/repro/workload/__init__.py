"""The workload subsystem: who shares the network, over which routes, and when.

Makes the *workload* of a scenario — responsive background flows, flow churn,
arrival schedules — a declarative, sweepable axis next to the trace and the
topology family.  See :mod:`repro.workload.spec` for the string grammar,
:mod:`repro.workload.build` for the expansion into concrete flows, and the
architecture note in ROADMAP.md.
"""

from repro.workload.arrivals import ArrivalSchedule, FlowWindow
from repro.workload.build import build_workload, workload_schedule
from repro.workload.flows import CONTROLLER_FACTORIES, ResponsiveCrossFlow
from repro.workload.spec import (
    DEFAULT_WORKLOAD,
    WORKLOAD_KINDS,
    WORKLOAD_SCHEMES,
    WorkloadSpec,
    canonical_workload,
    parse_workload,
    workload_specs,
)

__all__ = [
    "ArrivalSchedule",
    "FlowWindow",
    "CONTROLLER_FACTORIES",
    "ResponsiveCrossFlow",
    "DEFAULT_WORKLOAD",
    "WORKLOAD_KINDS",
    "WORKLOAD_SCHEMES",
    "WorkloadSpec",
    "build_workload",
    "canonical_workload",
    "parse_workload",
    "workload_schedule",
    "workload_specs",
]
