"""Arrival schedules: when background flows join and leave the network.

An :class:`ArrivalSchedule` is an explicit list of flow lifetime windows —
the schedulable-workload entity.  Three constructors cover the spec grammar:

* :meth:`ArrivalSchedule.always` — ``count`` flows alive for the whole run
  (the ``responsive(...)`` workloads);
* :meth:`ArrivalSchedule.scripted` — verbatim ``(start, stop)`` windows (the
  ``step(...)`` workloads);
* :meth:`ArrivalSchedule.poisson` — a seeded Poisson arrival process with
  seeded exponential lifetimes (the ``poisson(...)`` workloads).

Poisson schedules are *deterministic per seed*: the RNG seed derives from the
scenario coordinates (see :func:`repro.workload.build.build_workload`), so a
churned grid shards across a process pool bit-identically regardless of
worker assignment — the same convention as per-hop loss RNG seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.telemetry import log

__all__ = ["FlowWindow", "ArrivalSchedule"]

#: Hard cap on generated flows so a typo'd rate cannot swamp the simulator.
MAX_FLOWS = 64


@dataclass(frozen=True)
class FlowWindow:
    """One background flow's lifetime: ``[start, stop)``; ``stop=None`` = run end."""

    start: float
    stop: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("window start must be non-negative")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("window must end after it starts")


@dataclass(frozen=True)
class ArrivalSchedule:
    """An ordered set of flow lifetime windows (one background flow each)."""

    windows: Tuple[FlowWindow, ...]

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)

    # ------------------------------------------------------------------ #
    @classmethod
    def always(cls, count: int) -> "ArrivalSchedule":
        """``count`` flows alive from the first tick to the last."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return cls(windows=tuple(FlowWindow(0.0) for _ in range(count)))

    @classmethod
    def scripted(cls, windows: Sequence[Tuple[float, Optional[float]]]) -> "ArrivalSchedule":
        """Verbatim ``(start, stop)`` windows (``stop=None`` = run end)."""
        if not windows:
            raise ValueError("scripted schedule needs at least one window")
        return cls(windows=tuple(FlowWindow(start, stop) for start, stop in windows))

    @classmethod
    def poisson(
        cls,
        rate: float,
        duration: float,
        seed: int,
        mean_lifetime: Optional[float] = None,
        max_flows: int = MAX_FLOWS,
    ) -> "ArrivalSchedule":
        """Seeded Poisson arrivals over ``[0, duration)`` with exponential lifetimes.

        Inter-arrival gaps are exponential with mean ``1/rate``; each flow's
        lifetime is exponential with mean ``mean_lifetime`` (default: a third
        of the run, so churned flows overlap but do not all persist to the
        end).  The schedule — possibly empty for low rates — depends only on
        ``(rate, duration, seed)``, never on which process draws it.

        When the ``max_flows`` cap cuts the arrival process short, a
        structured warning (``poisson_schedule_truncated`` on the
        ``repro.workload`` logger) names the requested (expected) vs.
        generated flow count — the cap protects the simulator from a typo'd
        rate, but it must never truncate a workload silently.
        """
        if rate <= 0:
            raise ValueError("rate must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if mean_lifetime is None:
            mean_lifetime = duration / 3.0
        rng = np.random.default_rng(seed)
        windows = []
        now = 0.0
        truncated = False
        while True:
            now += float(rng.exponential(1.0 / rate))
            if now >= duration:
                break
            if len(windows) >= max_flows:
                # The next arrival would land inside the run: the cap bites.
                truncated = True
                break
            lifetime = float(rng.exponential(mean_lifetime))
            stop = now + lifetime
            windows.append(FlowWindow(now, stop if stop < duration else None))
        if truncated:
            log.warn(
                "poisson_schedule_truncated",
                logger="workload",
                max_flows=max_flows,
                rate=rate,
                duration=duration,
                requested=int(round(rate * duration)),
                generated=len(windows),
            )
        return cls(windows=tuple(windows))
