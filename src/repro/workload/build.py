"""Expand a workload spec into concrete background flows for one run.

:func:`build_workload` is the workload analogue of
:func:`repro.topology.families.build_topology`: it turns a plain spec string
plus the cell coordinates (run duration, base seed, trace and topology names)
into a list of :class:`~repro.workload.flows.ResponsiveCrossFlow` ready to be
instantiated next to the flow under test.  Background flows get ids 1, 2, ...
in schedule order; on branching topologies the route cycle then hands each of
them its own branch (incast on ``fan_in``, contending pairs on
``shared_segment``), while on linear topologies they share the full path —
exactly the Fig. 14 friendliness arrangement.

Seeding follows the per-hop convention: the Poisson churn RNG seed derives
from ``(seed, "workload", canonical spec, trace, topology)`` via
:func:`repro.seeding.derive_seed`, so sharded grids reproduce bit-identically
regardless of worker assignment.
"""

from __future__ import annotations

from typing import List

from repro.seeding import derive_seed
from repro.workload.arrivals import ArrivalSchedule
from repro.workload.flows import ResponsiveCrossFlow
from repro.workload.spec import WorkloadSpec, parse_workload

__all__ = ["build_workload", "workload_schedule"]


def workload_schedule(spec: WorkloadSpec, duration: float, seed: int,
                      trace_name: str = "", topology: str = "") -> ArrivalSchedule:
    """The arrival schedule a parsed workload expands to for one cell."""
    if spec.kind == "static":
        return ArrivalSchedule(windows=())
    if spec.kind == "responsive":
        return ArrivalSchedule.always(spec.count)
    if spec.kind == "step":
        return ArrivalSchedule.scripted(spec.windows)
    churn_seed = derive_seed(seed, "workload", spec.canonical(), trace_name, topology)
    return ArrivalSchedule.poisson(spec.rate, duration, seed=churn_seed)


def build_workload(
    spec: str,
    duration: float,
    seed: int,
    trace_name: str = "",
    topology: str = "",
) -> List[ResponsiveCrossFlow]:
    """Expand a workload spec string into declarative background flows.

    ``trace_name`` and ``topology`` only feed the churn RNG seed derivation
    (so different cells see decorrelated but individually reproducible
    arrival processes); ``static`` returns an empty list, keeping the legacy
    single-flow evaluation byte-identical.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    parsed = parse_workload(spec)
    schedule = workload_schedule(parsed, duration, seed, trace_name, topology)
    return [
        ResponsiveCrossFlow(
            scheme=parsed.scheme,
            flow_id=index,
            start_time=window.start,
            stop_time=window.stop,
        )
        for index, window in enumerate(schedule, start=1)
    ]
