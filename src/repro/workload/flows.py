"""Responsive cross flows: closed-loop background traffic.

The open-loop cross-traffic generators in :mod:`repro.topology.cross_traffic`
offer a fixed rate no matter what the network does.  A
:class:`ResponsiveCrossFlow` instead wraps one of the classical ``cc/``
controllers (CUBIC, NewReno, Vegas, BBR) as a *real* :class:`~repro.cc.flow.Flow`
competing in the same FIFO queues as the flow under test: it backs off on
loss, probes for bandwidth, and — with a partial lifetime — joins and leaves
the network mid-run.  This is the Fig. 14 friendliness competitor generalized
into a declarative, sweepable scenario ingredient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.cc.base import CongestionController
from repro.cc.bbr import BBRController
from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.newreno import NewRenoController
from repro.cc.vegas import VegasController

__all__ = ["CONTROLLER_FACTORIES", "ResponsiveCrossFlow"]

#: Classical controller constructors by scheme name (the responsive analogue
#: of the generator catalog in :mod:`repro.topology.cross_traffic`).
CONTROLLER_FACTORIES: Dict[str, Callable[[], CongestionController]] = {
    "cubic": CubicController,
    "newreno": NewRenoController,
    "vegas": VegasController,
    "bbr": BBRController,
}


@dataclass(frozen=True)
class ResponsiveCrossFlow:
    """One closed-loop background flow, declaratively.

    ``flow_id`` must be >= 1: id 0 is the flow under test, and negative ids
    stay reserved for the open-loop cross-traffic sources (reports key rows
    by flow id).  ``start_time`` / ``stop_time`` bound the flow's lifetime
    (``stop_time=None`` = run end), so churned workloads express arrivals and
    departures directly.
    """

    scheme: str
    flow_id: int
    start_time: float = 0.0
    stop_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.flow_id < 1:
            raise ValueError("responsive cross flows need flow_id >= 1 "
                             "(0 is the flow under test, negative ids are "
                             "open-loop cross traffic)")
        if self.scheme not in CONTROLLER_FACTORIES:
            raise ValueError(f"unknown responsive scheme {self.scheme!r}; "
                             f"known: {sorted(CONTROLLER_FACTORIES)}")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.stop_time is not None and self.stop_time <= self.start_time:
            raise ValueError("stop_time must exceed start_time")

    def build(self) -> Flow:
        """A fresh :class:`Flow` (new controller instance) for one run."""
        controller = CONTROLLER_FACTORIES[self.scheme]()
        return Flow(self.flow_id, controller,
                    start_time=self.start_time, stop_time=self.stop_time)
