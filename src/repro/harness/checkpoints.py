"""Persisting trained models to disk.

The in-process model zoo (:mod:`repro.harness.models`) retrains per process;
these helpers let long examples and users keep a trained Canopy/Orca policy
around: the actor (and, optionally, the full TD3 agent) is stored as ``.npz``
next to a small JSON metadata file describing the model kind and the trained
property set, enough to rebuild a usable :class:`TrainedModel`-like handle for
evaluation and certification.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.core.properties import (
    PropertySet,
    deep_buffer_properties,
    robustness_properties,
    shallow_buffer_properties,
)
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn.mlp import MLP
from repro.nn.serialization import load_mlp, save_mlp
from repro.orca.observations import ObservationConfig

__all__ = ["SavedModel", "save_model", "load_model", "publish_model"]

_PROPERTY_SETS = {
    "shallow": shallow_buffer_properties,
    "deep": deep_buffer_properties,
    "robustness": robustness_properties,
}


@dataclass
class SavedModel:
    """A trained policy restored from disk, usable by the evaluation harness."""

    kind: str
    actor: MLP
    observation_config: ObservationConfig
    properties: PropertySet
    metadata: dict

    @property
    def policy(self) -> Callable[[np.ndarray], np.ndarray]:
        def _policy(state: np.ndarray) -> np.ndarray:
            output = self.actor.forward(np.asarray(state, dtype=np.float64).reshape(1, -1))
            return np.clip(output[0], -1.0, 1.0)

        return _policy

    def make_verifier(self, n_components: int = 50) -> Verifier:
        return Verifier(self.actor, self.observation_config, VerifierConfig(n_components=n_components))


def save_model(model, directory: str | Path, name: Optional[str] = None) -> Path:
    """Persist a trained model (from the model zoo or a trainer run).

    ``model`` is any object exposing ``kind``, ``actor``, ``observation_config``
    and ``properties`` (both :class:`repro.harness.models.TrainedModel` and
    :class:`SavedModel` qualify).  Returns the directory containing the
    checkpoint files.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = name or model.kind
    actor_path = save_mlp(model.actor, directory / f"{name}-actor.npz")
    obs = model.observation_config
    metadata = {
        "kind": model.kind,
        "property_set": model.properties.name,
        "property_names": [p.name for p in model.properties],
        "actor_file": actor_path.name,
        "observation": {
            "history_len": obs.history_len,
            "delay_scale": obs.delay_scale,
            "ack_scale": obs.ack_scale,
            "monitor_interval": obs.monitor_interval,
            "dcwnd_scale": obs.dcwnd_scale,
        },
    }
    (directory / f"{name}.json").write_text(json.dumps(metadata, indent=2))
    return directory


def publish_model(model, directory: str | Path, name: str = "model") -> Path:
    """Atomically publish a checkpoint directory (first writer wins).

    The checkpoint is written to a sibling tmp directory and renamed into
    place, so readers never observe a half-written checkpoint — the rename
    either succeeds whole or not at all.  When ``directory`` already exists
    (another process published the same content address concurrently, the
    model-zoo case) the tmp copy is discarded and the existing checkpoint
    kept: content addressing makes the two equivalent, so losing the race
    costs nothing.
    """
    directory = Path(directory)
    if (directory / f"{name}.json").exists():
        return directory
    directory.parent.mkdir(parents=True, exist_ok=True)
    tmp = directory.parent / f".{directory.name}.tmp-{os.getpid()}"
    save_model(model, tmp, name=name)
    try:
        os.rename(tmp, directory)
    except OSError:
        # Lost the publish race (rename onto an existing directory fails):
        # keep the winner's copy, drop ours.
        shutil.rmtree(tmp, ignore_errors=True)
    return directory


def load_model(directory: str | Path, name: str) -> SavedModel:
    """Load a checkpoint written by :func:`save_model`."""
    directory = Path(directory)
    metadata_path = directory / f"{name}.json"
    if not metadata_path.exists():
        raise FileNotFoundError(f"no checkpoint named {name!r} under {directory}")
    metadata = json.loads(metadata_path.read_text())
    actor = load_mlp(directory / metadata["actor_file"])
    obs_meta = metadata["observation"]
    observation_config = ObservationConfig(
        history_len=obs_meta["history_len"],
        delay_scale=obs_meta["delay_scale"],
        ack_scale=obs_meta["ack_scale"],
        monitor_interval=obs_meta["monitor_interval"],
        dcwnd_scale=obs_meta["dcwnd_scale"],
    )
    property_factory = _PROPERTY_SETS.get(metadata["property_set"])
    if property_factory is not None:
        properties = property_factory()
    else:
        # Unknown / custom property set: default to the shallow family, which
        # only affects which properties certification defaults to.
        properties = shallow_buffer_properties()
    return SavedModel(
        kind=metadata["kind"],
        actor=actor,
        observation_config=observation_config,
        properties=properties,
        metadata=metadata,
    )
