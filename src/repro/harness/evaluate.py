"""Running congestion-control schemes over traces and scoring them.

This module is the workhorse behind every evaluation figure: it builds fresh
controllers (classical or learned), runs them over a bandwidth trace on an
emulated bottleneck link, summarizes the empirical metrics (utilization,
average and p95 queuing delay), and — for learned controllers — computes the
per-decision quantitative certificates that make up QC_sat.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cc.base import CongestionController
from repro.cc.bbr import BBRController
from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.metrics import PerformanceSummary, summarize_result
from repro.cc.netsim import NetworkSimulator, SimulationResult
from repro.cc.newreno import NewRenoController
from repro.cc.vegas import VegasController
from repro.core.properties import PropertySet
from repro.core.qc import QuantitativeCertificate
from repro.core.verifier import Verifier
from repro.harness.models import TrainedModel
from repro.orca.agent import DecisionRecord, LearnedController
from repro.telemetry.events import DEFAULT_TELEMETRY, EventTrace, parse_telemetry
from repro.telemetry.profiler import active_profiler
from repro.topology.families import DEFAULT_TOPOLOGY, build_topology, parse_topology
from repro.traces.trace import BandwidthTrace
from repro.workload.build import build_workload
from repro.workload.spec import DEFAULT_WORKLOAD, parse_workload

__all__ = [
    "EvaluationSettings",
    "SchemeResult",
    "QCSatResult",
    "scheme_factory",
    "default_model_kind",
    "run_scheme_on_trace",
    "run_schemes",
    "run_schemes_sharded",
    "evaluate_qcsat",
    "certificates_for_decisions",
]

CLASSICAL_SCHEMES = ("cubic", "vegas", "bbr", "newreno")


def default_model_kind(scheme: str) -> Optional[str]:
    """The zoo kind conventionally backing a scheme label.

    Classical schemes need no model (``None``); any other label is assumed to
    name its own model kind (the ``orca`` / ``canopy-*`` convention used by
    the fairness grids and the experiment registry).
    """
    return None if scheme.lower() in CLASSICAL_SCHEMES else scheme


@dataclass
class EvaluationSettings:
    """Link/topology and run parameters shared by an evaluation sweep.

    ``topology`` is a family spec (``single_bottleneck``, ``chain(3)``,
    ``parking_lot(3)``, ``dumbbell``, ``fan_in(3)``, ...; see
    :mod:`repro.topology.families`) expanded around the trace at run time.
    ``min_rtt`` is the end-to-end path RTT and ``buffer_bdp`` sizes every
    hop's buffer, so results stay comparable across families.  ``workload``
    is a workload spec (``static``, ``responsive(cubic:2)``, ``poisson(0.1)``,
    ``step(2-6)``; see :mod:`repro.workload.spec`) expanded into closed-loop
    background flows competing with the flow under test.  ``telemetry``
    (``off`` | ``on`` | ``on(stride)``; see :mod:`repro.telemetry.events`)
    attaches a structured event trace to the run; ``off`` — the default —
    changes nothing, bit-for-bit.
    """

    duration: float = 20.0
    dt: float = 0.01
    min_rtt: float = 0.04
    buffer_bdp: float = 1.0
    monitor_interval: float = 0.2
    skip_seconds: float = 1.0
    observation_noise: float = 0.0
    random_loss_rate: float = 0.0
    #: False = deterministic fluid thinning (historical behaviour); True =
    #: per-hop seeded binomial loss sampling (reproducible per seed).
    stochastic_loss: bool = False
    topology: str = DEFAULT_TOPOLOGY
    workload: str = DEFAULT_WORKLOAD
    telemetry: str = DEFAULT_TELEMETRY
    seed: int = 7

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.dt <= 0 or self.min_rtt <= 0:
            raise ValueError("duration, dt and min_rtt must be positive")
        if self.buffer_bdp <= 0:
            raise ValueError("buffer_bdp must be positive")
        parse_topology(self.topology)  # fail fast on malformed specs
        parse_workload(self.workload)
        parse_telemetry(self.telemetry)


@dataclass
class SchemeResult:
    """Outcome of one (scheme, trace) run."""

    scheme: str
    trace: str
    summary: PerformanceSummary
    controller: CongestionController
    simulation: SimulationResult
    decisions: List[DecisionRecord] = field(default_factory=list)
    #: The run's telemetry events (empty when telemetry was off).
    events: List[Dict] = field(default_factory=list)

    def as_row(self) -> Dict[str, float]:
        row = {"scheme": self.scheme, "trace": self.trace}
        row.update(self.summary.as_dict())
        return row


@dataclass
class QCSatResult:
    """QC_sat statistics for one (model, property set, trace) combination.

    ``summary`` carries the empirical performance of the certified run (the
    same run the certificates were computed over), so callers that need both
    certified safety and performance — e.g. the cross-family generalization
    grid — get them from a single simulation.
    """

    scheme: str
    trace: str
    property_names: List[str]
    mean: float
    std: float
    n_decisions: int
    n_applicable: int
    per_decision: List[float] = field(default_factory=list)
    summary: Optional[PerformanceSummary] = None
    #: The certified run's telemetry events (empty when telemetry was off).
    events: List[Dict] = field(default_factory=list)


# ---------------------------------------------------------------------- #
# Scheme construction
# ---------------------------------------------------------------------- #
def scheme_factory(
    name: str,
    model: Optional[TrainedModel] = None,
    observation_noise: float = 0.0,
    decision_filter=None,
    monitor_interval: float = 0.2,
    seed: int | None = None,
) -> Callable[[], CongestionController]:
    """A zero-argument factory producing a fresh controller per run.

    ``name`` is either one of the classical schemes (``cubic``, ``vegas``,
    ``bbr``, ``newreno``) or a label for a learned scheme, in which case a
    trained ``model`` must be supplied.
    """
    lowered = name.lower()
    if lowered in CLASSICAL_SCHEMES:
        classical = {
            "cubic": CubicController,
            "vegas": VegasController,
            "bbr": BBRController,
            "newreno": NewRenoController,
        }[lowered]
        return lambda: classical()
    if model is None:
        raise ValueError(f"scheme {name!r} is not classical, so a trained model is required")

    def build() -> CongestionController:
        return LearnedController(
            policy=model.policy,
            observation_config=model.observation_config,
            monitor_interval=monitor_interval,
            observation_noise=observation_noise,
            decision_filter=decision_filter,
            noise_seed=seed,
            name=name,
        )

    return build


# ---------------------------------------------------------------------- #
# Running schemes
# ---------------------------------------------------------------------- #
def run_scheme_on_trace(
    factory: Callable[[], CongestionController],
    trace: BandwidthTrace,
    settings: EvaluationSettings,
    scheme_name: str | None = None,
    telemetry: Optional[EventTrace] = None,
) -> SchemeResult:
    """Run one scheme over one trace (on ``settings.topology``) and summarize it.

    ``settings.workload`` adds closed-loop background flows (responsive
    competitors, churned arrivals) next to the flow under test; the summary
    always scores flow 0.  The default ``static`` workload adds none, keeping
    the legacy single-flow trajectory byte-identical.

    ``telemetry`` lets a caller share one :class:`EventTrace` across the run's
    emitters (e.g. the QC monitor and the simulator); when ``None`` a trace is
    built from ``settings.telemetry`` (no trace at all for ``off``).
    """
    controller = factory()
    if telemetry is None:
        telemetry = EventTrace.from_spec(settings.telemetry)
    topology = build_topology(
        settings.topology,
        trace,
        min_rtt=settings.min_rtt,
        buffer_bdp=settings.buffer_bdp,
        random_loss_rate=settings.random_loss_rate,
        stochastic_loss=settings.stochastic_loss,
        seed=settings.seed,
    )
    flow = Flow(0, controller)
    background = build_workload(settings.workload, duration=settings.duration,
                                seed=settings.seed, trace_name=trace.name,
                                topology=settings.topology)
    flows = [flow] + [cross.build() for cross in background]
    # The process-wide profiler (serve workers, `run --profile` pools) rides
    # along on every simulator; wall-clock only, rows are untouched.
    simulator = NetworkSimulator(topology, flows, dt=settings.dt,
                                 telemetry=telemetry, profiler=active_profiler())
    result = simulator.run(settings.duration)
    summary = summarize_result(result, flow_id=0, skip_seconds=settings.skip_seconds)
    decisions = list(getattr(controller, "decisions", []))
    return SchemeResult(
        scheme=scheme_name or getattr(controller, "name", type(controller).__name__),
        trace=trace.name,
        summary=summary,
        controller=controller,
        simulation=result,
        decisions=decisions,
        events=telemetry.to_json() if telemetry is not None else [],
    )


def run_schemes(
    schemes: Dict[str, Callable[[], CongestionController]],
    traces: Sequence[BandwidthTrace],
    settings: EvaluationSettings,
) -> List[SchemeResult]:
    """Cartesian product of schemes × traces (in-process, full SchemeResults)."""
    results = []
    for trace in traces:
        for scheme_name, factory in schemes.items():
            results.append(run_scheme_on_trace(factory, trace, settings, scheme_name=scheme_name))
    return results


def run_schemes_sharded(
    scheme_kinds: Dict[str, Optional[str]],
    traces: Sequence[BandwidthTrace],
    settings: EvaluationSettings,
    n_jobs: int = 1,
    training_steps: int = 800,
    model_seed: int = 1,
    n_seeds: int = 1,
):
    """Cartesian product of schemes × traces (× seeds) sharded over a pool.

    ``scheme_kinds`` maps the display label of each scheme to the model kind
    that backs it (``None`` for classical schemes).  Learned models should be
    trained in the calling process first so forked workers inherit the warm
    cache.  With ``n_seeds > 1`` every (scheme, trace) cell is replicated
    under distinct link/noise seeds derived deterministically from
    ``settings.seed`` and the cell coordinates, and rows carry a
    ``replicate`` tag.  Returns a :class:`repro.harness.parallel.GridResult`
    of plain summary rows (one per cell, in grid order) — identical for
    serial and parallel runs.
    """
    # Imported lazily: parallel imports this module for its worker helpers.
    from repro.harness.parallel import ExperimentTask, ParallelRunner, derive_seed

    if n_seeds < 1:
        raise ValueError("n_seeds must be >= 1")
    tasks = []
    for replicate in range(n_seeds):
        for trace in traces:
            for label, kind in scheme_kinds.items():
                if n_seeds == 1:
                    cell_settings, tags = settings, {}
                else:
                    cell_settings = replace(
                        settings, seed=derive_seed(settings.seed, trace.name, label, replicate))
                    tags = {"replicate": replicate}
                tasks.append(ExperimentTask(
                    scheme=label, trace=trace, settings=cell_settings, model_kind=kind,
                    training_steps=training_steps, model_seed=model_seed, tags=tags))
    return ParallelRunner(n_jobs).run(tasks)


# ---------------------------------------------------------------------- #
# QC_sat evaluation
# ---------------------------------------------------------------------- #
def certificates_for_decisions(
    verifier: Verifier,
    properties: PropertySet,
    decisions: Sequence[DecisionRecord],
    n_components: int = 50,
) -> List[Dict[str, QuantitativeCertificate]]:
    """Per-decision certificates for every property in the set.

    The previous enforced window for decision ``i`` is decision ``i-1``'s
    enforced window (the controller's initial window for the first decision),
    matching the Δcwnd definition of Table 3.
    """
    all_certificates: List[Dict[str, QuantitativeCertificate]] = []
    for index, decision in enumerate(decisions):
        cwnd_prev = decisions[index - 1].cwnd_after if index > 0 else decision.cwnd_before
        per_property = {}
        for prop in properties:
            per_property[prop.name] = verifier.certify(
                prop, decision.state, decision.cwnd_tcp, cwnd_prev, n_components=n_components
            )
        all_certificates.append(per_property)
    return all_certificates


def evaluate_qcsat(
    model: TrainedModel,
    trace: BandwidthTrace,
    settings: EvaluationSettings,
    properties: Optional[PropertySet] = None,
    n_components: int = 50,
    scheme_name: str | None = None,
    telemetry: Optional[EventTrace] = None,
) -> QCSatResult:
    """Run the learned model over a trace and compute QC_sat.

    QC_sat is the mean QC feedback (Eq. 6/7) over all decision steps where the
    property's concrete side conditions apply; when a property never applies
    during the run its vacuous (1.0) certificates are excluded from the mean.
    """
    properties = properties or model.properties
    factory = scheme_factory(scheme_name or model.kind, model=model,
                             observation_noise=settings.observation_noise,
                             monitor_interval=settings.monitor_interval, seed=settings.seed)
    run = run_scheme_on_trace(factory, trace, settings,
                              scheme_name=scheme_name or model.kind,
                              telemetry=telemetry)
    verifier = model.make_verifier(n_components=n_components)
    certificates = certificates_for_decisions(verifier, properties, run.decisions, n_components=n_components)

    per_decision: List[float] = []
    n_applicable = 0
    for per_property in certificates:
        applicable = [cert for cert in per_property.values() if cert.applicable]
        if applicable:
            n_applicable += 1
            per_decision.append(float(np.mean([cert.feedback for cert in applicable])))
    if not per_decision:
        # The side conditions never held during this run; report the
        # unconditioned feedback so the result is still informative.
        per_decision = [
            float(np.mean([cert.feedback for cert in per_property.values()]))
            for per_property in certificates
        ]
    mean = float(np.mean(per_decision)) if per_decision else 1.0
    std = float(np.std(per_decision)) if per_decision else 0.0
    return QCSatResult(
        scheme=scheme_name or model.kind,
        trace=trace.name,
        property_names=[prop.name for prop in properties],
        mean=mean,
        std=std,
        n_decisions=len(certificates),
        n_applicable=n_applicable,
        per_decision=per_decision,
        summary=run.summary,
        events=run.events,
    )
