"""Torn-tail-tolerant JSONL parsing, shared by every journal reader.

Three on-disk artifacts share one failure mode: an append-only ``*.jsonl``
file whose final line may be torn because the writing process was killed
mid-append (SIGKILL, OOM, power loss).  The run store's ``records.jsonl``,
the serve daemon's ``leases.jsonl``, and the observability plane's
``metrics.jsonl`` all tolerate exactly that — a malformed *final* chunk with
nothing but whitespace after it — while malformed content anywhere else is
real corruption and raises.  This module is the one implementation of that
rule (it used to be copied in three places).

:func:`parse_jsonl_tolerant` also does the byte accounting
(``valid_bytes``) the run store needs to truncate a torn file back to its
well-formed prefix before the next append.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Tuple

__all__ = ["parse_jsonl_tolerant"]


def parse_jsonl_tolerant(
    text: str,
    source: str = "jsonl",
    parse: Optional[Callable[[object], object]] = None,
    intolerant: Tuple[type, ...] = (),
    label: str = "line",
) -> Tuple[List, int, bool]:
    """Parse a JSONL body into ``(items, valid_bytes, torn)``.

    ``items`` holds one parsed value per non-blank line (each passed through
    ``parse`` when given); ``valid_bytes`` is the byte length of the
    well-formed prefix.  A line that fails to decode — or whose ``parse``
    raises ``ValueError`` — is tolerated only when nothing but whitespace
    follows it (``torn=True``); anywhere else it raises ``ValueError`` with
    the source and line number.

    ``intolerant`` lists exception types that must *never* be swallowed by
    the torn-tail rule (e.g. the run store's ``SchemaVersionError`` — a whole
    store of old-version records must surface the migrate hint, not quietly
    load as empty).  They are re-raised with location context prepended.
    """
    items: List = []
    valid_bytes = 0
    consumed = 0
    lines = text.split("\n")
    for line_number, line in enumerate(lines, start=1):
        consumed += len(line.encode("utf-8")) + 1  # the split "\n"
        stripped = line.strip()
        if stripped:
            try:
                item = json.loads(stripped)
                if parse is not None:
                    item = parse(item)
            except intolerant as exc:
                raise type(exc)(f"{source}:{line_number}: {exc}") from exc
            except (json.JSONDecodeError, ValueError) as exc:
                if all(not rest.strip() for rest in lines[line_number:]):
                    return items, valid_bytes, True  # torn tail of an append
                raise ValueError(
                    f"{source}:{line_number}: invalid {label}: {exc}") from exc
            items.append(item)
        valid_bytes = min(consumed, len(text.encode("utf-8")))
    return items, valid_bytes, False
