"""Canonicalize pytest-benchmark JSON files into one BENCH_ci.json.

CI produces one ``--benchmark-json`` file per smoke job (verifier throughput,
topology sweep, cross-family generalization, ...), each in pytest-benchmark's
verbose machine-specific format.  To make the performance trajectory of the
repository diffable across commits, this module merges them into a single
``BENCH_ci.json`` with a *stable* schema — a flat list of metric rows::

    {
      "version": 1,
      "commit": "<sha>",
      "rows": [
        {"benchmark": "<test name>", "metric": "<metric>",
         "value": <float>, "unit": "<unit>", "commit": "<sha>"},
        ...
      ]
    }

Every benchmark contributes its measured runtime (``stats.mean``) plus every
*scalar* ``extra_info`` entry (certificates/sec, ticks/sec, grid wall-clock,
...).  Non-scalar extras — per-family row dumps, spec lists — stay in the raw
per-job artifacts; the canonical file is for trajectories, so it keeps only
numbers.  Rows are sorted by (benchmark, metric) so the output is
byte-deterministic for a given input set.

Beyond pytest-benchmark files, the merger also flattens
:class:`~repro.harness.store.RunStore` directories (``--store DIR``): every
scalar metric of every :class:`~repro.harness.store.RunRecord` becomes one
canonical row whose benchmark name is ``<experiment>:<cell key>`` — the
experiment layer and the perf trajectory read the *same* store instead of
keeping private result shapes.

Usage (what the CI trajectory job runs)::

    python -m repro.harness.benchjson --commit "$GITHUB_SHA" \
        --out BENCH_ci.json bench-verifier.json bench-topology.json ...
    python -m repro.harness.benchjson --validate BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.harness.store import RECORDS_FILENAME, RunStore, validate_schema

__all__ = ["canonical_rows", "store_rows", "merge_bench_files",
           "validate_bench_payload", "BENCH_PAYLOAD_SCHEMA", "main"]

SCHEMA_VERSION = 1

#: The stable schema of the canonical payload (validated in CI alongside the
#: RunRecord schema of :mod:`repro.harness.store`).
BENCH_PAYLOAD_SCHEMA = {
    "type": "object",
    "required": ["version", "commit", "rows"],
    "properties": {
        "version": {"type": "integer"},
        "commit": {"type": "string", "minLength": 1},
        "sources": {"type": "array", "items": {"type": "string"}},
        "skipped": {"type": "array", "items": {"type": "string"}},
        "rows": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["benchmark", "metric", "value", "unit", "commit"],
                "properties": {
                    "benchmark": {"type": "string", "minLength": 1},
                    "metric": {"type": "string", "minLength": 1},
                    "value": {"type": "number"},
                    "unit": {"type": "string"},
                    "commit": {"type": "string"},
                },
            },
        },
    },
}

#: Units of the well-known extra_info metrics; anything else numeric defaults
#: to a dimensionless unit so the schema never gains surprise fields.
METRIC_UNITS = {
    "runtime_s": "s",
    "wall_clock_s": "s",
    "grid_wall_clock_s": "s",
    "certificates": "count",
    "certificates_per_sec": "1/s",
    "ticks": "count",
    "ticks_per_sec": "1/s",
    "n_jobs": "count",
    "speedup": "x",
}


def _unit_for(metric: str) -> str:
    if metric in METRIC_UNITS:
        return METRIC_UNITS[metric]
    if metric.endswith("_s"):
        return "s"
    if metric.endswith("_per_sec"):
        return "1/s"
    return ""


def canonical_rows(bench_payload: Dict, commit: str) -> List[Dict]:
    """Flatten one pytest-benchmark payload into canonical metric rows."""
    rows: List[Dict] = []

    def add(benchmark: str, metric: str, value) -> None:
        rows.append({
            "benchmark": benchmark,
            "metric": metric,
            "value": float(value),
            "unit": _unit_for(metric),
            "commit": commit,
        })

    for bench in bench_payload.get("benchmarks", []):
        name = bench.get("name", "unknown")
        stats = bench.get("stats", {})
        if "mean" in stats:
            add(name, "runtime_s", stats["mean"])
        for metric, value in (bench.get("extra_info") or {}).items():
            # Only scalars enter the trajectory; bool is excluded because it
            # is an int subclass but not a measurement.
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                add(name, metric, value)
    return rows


def store_rows(store: RunStore, commit: str) -> List[Dict]:
    """Flatten a run store's records into canonical metric rows.

    One row per scalar metric per record; the benchmark name is
    ``<experiment>:<cell key>`` so every cell keeps a stable identity across
    commits (the key is deterministic for a given scenario + knobs).
    """
    rows: List[Dict] = []
    for record in store.records():
        benchmark = f"{record.experiment or 'run'}:{record.key}"
        for metric, value in record.row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                rows.append({
                    "benchmark": benchmark,
                    "metric": metric,
                    "value": float(value),
                    "unit": _unit_for(metric),
                    "commit": commit,
                })
    return rows


def merge_bench_files(paths: Sequence[Path], commit: str,
                      stores: Sequence[Path] = ()) -> Dict:
    """Merge pytest-benchmark JSON files (and run stores) into the canonical payload.

    Missing or unparsable files are skipped (and recorded under ``skipped``)
    rather than failing the merge, so a partially-failed CI run still uploads
    the trajectory of the jobs that did finish.
    """
    rows: List[Dict] = []
    merged: List[str] = []
    skipped: List[str] = []
    for path in paths:
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            skipped.append(str(path))
            continue
        rows.extend(canonical_rows(payload, commit))
        merged.append(str(path))
    for path in stores:
        path = Path(path)
        # A missing or record-less store is a skip, not a silent zero-row
        # source (RunStore would otherwise mkdir the typo'd path).
        if not (path / RECORDS_FILENAME).is_file():
            skipped.append(str(path))
            continue
        try:
            rows.extend(store_rows(RunStore(path), commit))
        except (OSError, ValueError):
            skipped.append(str(path))
            continue
        merged.append(str(path))
    rows.sort(key=lambda row: (row["benchmark"], row["metric"]))
    return {
        "version": SCHEMA_VERSION,
        "commit": commit,
        "sources": merged,
        "skipped": skipped,
        "rows": rows,
    }


def validate_bench_payload(payload: Dict) -> None:
    """Schema-check one canonical payload; raises ``ValueError`` on drift."""
    validate_schema(payload, BENCH_PAYLOAD_SCHEMA)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.benchjson",
        description="merge pytest-benchmark JSON files into a canonical BENCH_ci.json",
    )
    parser.add_argument("files", nargs="*", help="pytest-benchmark JSON files to merge")
    parser.add_argument("--store", action="append", default=[], metavar="DIR",
                        help="also flatten this run-store directory into canonical rows "
                             "(repeatable)")
    parser.add_argument("--commit", default="unknown", help="commit SHA stamped into every row")
    parser.add_argument("--out", default="BENCH_ci.json", help="output path")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check already-canonical payloads instead of merging")
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.validate:
        if not args.files:
            parser.error("--validate needs at least one canonical JSON file "
                         "(a glob that matched nothing must not pass vacuously)")
        if args.store:
            parser.error("--validate checks canonical payloads; validate run stores "
                         "with 'python -m repro.harness.store' instead")
        status = 0
        for raw in args.files:
            path = Path(raw)
            try:
                payload = json.loads(path.read_text())
                validate_bench_payload(payload)
            except (OSError, json.JSONDecodeError, ValueError) as exc:
                print(f"{path}: INVALID: {exc}")
                status = 1
                continue
            print(f"{path}: valid ({len(payload['rows'])} rows, commit {payload['commit']})")
        return status

    if not args.files and not args.store:
        parser.error("nothing to merge: give bench JSON files and/or --store directories")
    payload = merge_bench_files([Path(p) for p in args.files], commit=args.commit,
                                stores=[Path(p) for p in args.store])
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(payload['rows'])} rows from {len(payload['sources'])} files"
          + (f", skipped {len(payload['skipped'])}" if payload["skipped"] else "") + ")")
    return 0 if payload["rows"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
