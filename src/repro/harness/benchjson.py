"""Canonicalize pytest-benchmark JSON files into one BENCH_ci.json.

CI produces one ``--benchmark-json`` file per smoke job (verifier throughput,
topology sweep, cross-family generalization, ...), each in pytest-benchmark's
verbose machine-specific format.  To make the performance trajectory of the
repository diffable across commits, this module merges them into a single
``BENCH_ci.json`` with a *stable* schema — a flat list of metric rows::

    {
      "version": 1,
      "commit": "<sha>",
      "rows": [
        {"benchmark": "<test name>", "metric": "<metric>",
         "value": <float>, "unit": "<unit>", "commit": "<sha>"},
        ...
      ]
    }

Every benchmark contributes its measured runtime (``stats.mean``) plus every
*scalar* ``extra_info`` entry (certificates/sec, ticks/sec, grid wall-clock,
...).  Non-scalar extras — per-family row dumps, spec lists — stay in the raw
per-job artifacts; the canonical file is for trajectories, so it keeps only
numbers.  Rows are sorted by (benchmark, metric) so the output is
byte-deterministic for a given input set.

Beyond pytest-benchmark files, the merger also flattens
:class:`~repro.harness.store.RunStore` directories (``--store DIR``): every
scalar metric of every :class:`~repro.harness.store.RunRecord` becomes one
canonical row whose benchmark name is ``<experiment>:<cell key>`` — the
experiment layer and the perf trajectory read the *same* store instead of
keeping private result shapes.

Two run stores — e.g. the same sweep at two commits — can be compared
cell-by-cell with ``--store-diff A B``: records are matched on their cell key
(:meth:`~repro.harness.spec.ScenarioSpec.key` plus the run-time-knob
fingerprint), and the report names, per cell and per metric, the expected
value (store A), the got value (store B), the delta, and the ``--atol``
tolerance under which they were compared — so a CI physics-drift failure is
diagnosable straight from the job log.  The exit status is ``diff``-like: 0
when the stores agree, 1 when they differ.

Usage (what the CI trajectory job runs)::

    python -m repro.harness.benchjson --commit "$GITHUB_SHA" \
        --out BENCH_ci.json bench-verifier.json bench-topology.json ...
    python -m repro.harness.benchjson --validate BENCH_ci.json
    python -m repro.harness.benchjson --store-diff runs/old runs/new --atol 1e-12
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.harness.store import RECORDS_FILENAME, RunStore, validate_schema
from repro.telemetry.log import console

__all__ = ["canonical_rows", "store_rows", "merge_bench_files", "store_diff",
           "format_store_diff", "validate_bench_payload", "BENCH_PAYLOAD_SCHEMA",
           "main"]

SCHEMA_VERSION = 1

#: The stable schema of the canonical payload (validated in CI alongside the
#: RunRecord schema of :mod:`repro.harness.store`).
BENCH_PAYLOAD_SCHEMA = {
    "type": "object",
    "required": ["version", "commit", "rows"],
    "properties": {
        "version": {"type": "integer"},
        "commit": {"type": "string", "minLength": 1},
        "sources": {"type": "array", "items": {"type": "string"}},
        "skipped": {"type": "array", "items": {"type": "string"}},
        "rows": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["benchmark", "metric", "value", "unit", "commit"],
                "properties": {
                    "benchmark": {"type": "string", "minLength": 1},
                    "metric": {"type": "string", "minLength": 1},
                    "value": {"type": "number"},
                    "unit": {"type": "string"},
                    "commit": {"type": "string"},
                },
            },
        },
    },
}

#: Units of the well-known extra_info metrics; anything else numeric defaults
#: to a dimensionless unit so the schema never gains surprise fields.
METRIC_UNITS = {
    "runtime_s": "s",
    "wall_clock_s": "s",
    "grid_wall_clock_s": "s",
    "certificates": "count",
    "certificates_per_sec": "1/s",
    "ticks": "count",
    "ticks_per_sec": "1/s",
    "cells_per_sec": "1/s",
    "n_jobs": "count",
    "speedup": "x",
}


def _unit_for(metric: str) -> str:
    if metric in METRIC_UNITS:
        return METRIC_UNITS[metric]
    if metric.endswith("_s"):
        return "s"
    if metric.endswith("_per_sec"):
        return "1/s"
    return ""


def canonical_rows(bench_payload: Dict, commit: str) -> List[Dict]:
    """Flatten one pytest-benchmark payload into canonical metric rows."""
    rows: List[Dict] = []

    def add(benchmark: str, metric: str, value) -> None:
        rows.append({
            "benchmark": benchmark,
            "metric": metric,
            "value": float(value),
            "unit": _unit_for(metric),
            "commit": commit,
        })

    for bench in bench_payload.get("benchmarks", []):
        name = bench.get("name", "unknown")
        stats = bench.get("stats", {})
        if "mean" in stats:
            add(name, "runtime_s", stats["mean"])
        for metric, value in (bench.get("extra_info") or {}).items():
            # Only scalars enter the trajectory; bool is excluded because it
            # is an int subclass but not a measurement.
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                add(name, metric, value)
    return rows


def store_rows(store: RunStore, commit: str) -> List[Dict]:
    """Flatten a run store's records into canonical metric rows.

    One row per scalar metric per record; the benchmark name is
    ``<experiment>:<cell key>`` so every cell keeps a stable identity across
    commits (the key is deterministic for a given scenario + knobs).
    """
    rows: List[Dict] = []
    for record in store.records():
        benchmark = f"{record.experiment or 'run'}:{record.key}"
        for metric, value in record.row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                rows.append({
                    "benchmark": benchmark,
                    "metric": metric,
                    "value": float(value),
                    "unit": _unit_for(metric),
                    "commit": commit,
                })
    return rows


def merge_bench_files(paths: Sequence[Path], commit: str,
                      stores: Sequence[Path] = ()) -> Dict:
    """Merge pytest-benchmark JSON files (and run stores) into the canonical payload.

    Missing or unparsable files are skipped (and recorded under ``skipped``)
    rather than failing the merge, so a partially-failed CI run still uploads
    the trajectory of the jobs that did finish.
    """
    rows: List[Dict] = []
    merged: List[str] = []
    skipped: List[str] = []
    for path in paths:
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            skipped.append(str(path))
            continue
        rows.extend(canonical_rows(payload, commit))
        merged.append(str(path))
    for path in stores:
        path = Path(path)
        # A missing or record-less store is a skip, not a silent zero-row
        # source (RunStore would otherwise mkdir the typo'd path).
        if not (path / RECORDS_FILENAME).is_file():
            skipped.append(str(path))
            continue
        try:
            rows.extend(store_rows(RunStore(path), commit))
        except (OSError, ValueError):
            skipped.append(str(path))
            continue
        merged.append(str(path))
    rows.sort(key=lambda row: (row["benchmark"], row["metric"]))
    return {
        "version": SCHEMA_VERSION,
        "commit": commit,
        "sources": merged,
        "skipped": skipped,
        "rows": rows,
    }


def _scalar_metrics(row: Dict) -> Dict[str, float]:
    return {metric: float(value) for metric, value in row.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)}


def store_diff(store_a: RunStore, store_b: RunStore, atol: float = 0.0) -> Dict:
    """Cell-by-cell comparison of two run stores, keyed by record key.

    The key — :meth:`ScenarioSpec.key() <repro.harness.spec.ScenarioSpec.key>`
    plus the run-time-knob fingerprint — identifies one cell exactly, so two
    stores of the same sweep at different commits line up cell for cell.
    Returns ``added`` / ``removed`` key lists (cells only in B / only in A)
    and ``changed`` metric rows (``{key, metric, a, b, delta}``) for every
    scalar metric whose values differ by more than ``atol`` (default 0.0 —
    exact comparison); non-scalar row entries are compared by equality and
    reported with ``a``/``b`` verbatim and no delta.
    """
    records_a = store_a.load()
    records_b = store_b.load()
    added = sorted(set(records_b) - set(records_a))
    removed = sorted(set(records_a) - set(records_b))
    changed: List[Dict] = []
    for key in sorted(set(records_a) & set(records_b)):
        row_a, row_b = records_a[key].row, records_b[key].row
        scalars_a, scalars_b = _scalar_metrics(row_a), _scalar_metrics(row_b)
        for metric in sorted(set(row_a) | set(row_b)):
            if metric in scalars_a and metric in scalars_b:
                delta = scalars_b[metric] - scalars_a[metric]
                if abs(delta) > atol:
                    changed.append({"key": key, "metric": metric,
                                    "a": scalars_a[metric], "b": scalars_b[metric],
                                    "delta": delta})
            elif row_a.get(metric) != row_b.get(metric):
                changed.append({"key": key, "metric": metric,
                                "a": row_a.get(metric), "b": row_b.get(metric)})
    return {
        "added": added,
        "removed": removed,
        "changed": changed,
        "atol": atol,
        "n_cells_a": len(records_a),
        "n_cells_b": len(records_b),
        "identical": not (added or removed or changed),
    }


def format_store_diff(diff: Dict, label_a: str = "A", label_b: str = "B") -> str:
    """A human-readable rendering of one :func:`store_diff` report.

    Changed scalars print one ``expected ... got ...`` line per cell per
    metric — the diagnosable form a CI physics-drift failure needs — with the
    delta and the ``atol`` the comparison ran under.
    """
    atol = diff.get("atol", 0.0)
    lines = [f"{label_a}: {diff['n_cells_a']} cells, {label_b}: {diff['n_cells_b']} cells"
             + (f" (atol {atol:g})" if atol else "")]
    for key in diff["removed"]:
        lines.append(f"- only in {label_a}: {key}")
    for key in diff["added"]:
        lines.append(f"+ only in {label_b}: {key}")
    for entry in diff["changed"]:
        if "delta" in entry:
            lines.append(f"~ {entry['key']} :: {entry['metric']}: "
                         f"expected {entry['a']:g} got {entry['b']:g} "
                         f"(delta {entry['delta']:+g}, atol {atol:g})")
        else:
            lines.append(f"~ {entry['key']} :: {entry['metric']}: "
                         f"expected {entry['a']!r} got {entry['b']!r}")
    if diff["identical"]:
        lines.append("stores are identical")
    else:
        lines.append(f"{len(diff['removed'])} removed, {len(diff['added'])} added, "
                     f"{len(diff['changed'])} changed metric(s)")
    return "\n".join(lines)


def validate_bench_payload(payload: Dict) -> None:
    """Schema-check one canonical payload; raises ``ValueError`` on drift."""
    validate_schema(payload, BENCH_PAYLOAD_SCHEMA)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.benchjson",
        description="merge pytest-benchmark JSON files into a canonical BENCH_ci.json",
    )
    parser.add_argument("files", nargs="*", help="pytest-benchmark JSON files to merge")
    parser.add_argument("--store", action="append", default=[], metavar="DIR",
                        help="also flatten this run-store directory into canonical rows "
                             "(repeatable)")
    parser.add_argument("--commit", default="unknown", help="commit SHA stamped into every row")
    parser.add_argument("--out", default="BENCH_ci.json", help="output path")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check already-canonical payloads instead of merging")
    parser.add_argument("--store-diff", nargs=2, default=None, metavar=("A", "B"),
                        help="compare two run stores cell-by-cell (exit 1 when they "
                             "differ) instead of merging")
    parser.add_argument("--atol", type=float, default=0.0,
                        help="absolute tolerance for --store-diff scalar comparisons "
                             "(default 0.0: exact)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.store_diff is not None:
        if args.files or args.store or args.validate:
            parser.error("--store-diff takes exactly two run stores and no other inputs")
        path_a, path_b = (Path(raw) for raw in args.store_diff)
        for path in (path_a, path_b):
            if not (path / RECORDS_FILENAME).is_file():
                console(f"{path}: not a run store (no {RECORDS_FILENAME})")
                return 2
        diff = store_diff(RunStore(path_a), RunStore(path_b), atol=args.atol)
        console(format_store_diff(diff, label_a=str(path_a), label_b=str(path_b)))
        return 0 if diff["identical"] else 1

    if args.validate:
        if not args.files:
            parser.error("--validate needs at least one canonical JSON file "
                         "(a glob that matched nothing must not pass vacuously)")
        if args.store:
            parser.error("--validate checks canonical payloads; validate run stores "
                         "with 'python -m repro.harness.store' instead")
        status = 0
        for raw in args.files:
            path = Path(raw)
            try:
                payload = json.loads(path.read_text())
                validate_bench_payload(payload)
            except (OSError, json.JSONDecodeError, ValueError) as exc:
                console(f"{path}: INVALID: {exc}")
                status = 1
                continue
            console(f"{path}: valid ({len(payload['rows'])} rows, commit {payload['commit']})")
        return status

    if not args.files and not args.store:
        parser.error("nothing to merge: give bench JSON files and/or --store directories")
    payload = merge_bench_files([Path(p) for p in args.files], commit=args.commit,
                                stores=[Path(p) for p in args.store])
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    console(f"wrote {out} ({len(payload['rows'])} rows from {len(payload['sources'])} files"
            + (f", skipped {len(payload['skipped'])}" if payload["skipped"] else "") + ")")
    return 0 if payload["rows"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
