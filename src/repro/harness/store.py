"""Resumable run storage: one provenance-stamped record per completed cell.

A sweep that dies 80% through (preempted CI runner, OOM-killed pool, laptop
lid) should not have to recompute its first 80%.  :class:`RunStore` makes
every grid resumable by writing one :class:`RunRecord` — the full
:class:`~repro.harness.spec.ScenarioSpec`, the repository commit, the derived
per-hop RNG seeds, and the metrics row — to an append-only
``records.jsonl`` as each cell completes.  On ``--resume`` the registry skips
cells whose key is already present, and because every row (fresh or cached)
is canonicalized through JSON, serial, sharded, and interrupted-then-resumed
runs produce byte-identical rows.

The store is also the one result shape the reporting layers read:
:mod:`repro.harness.benchjson` flattens store records into canonical
``BENCH_ci.json`` rows, and :func:`RunStore.rows` feeds
:func:`repro.harness.reporting.format_rows` directly.

Records are validated against :data:`RUN_RECORD_SCHEMA` (a minimal JSON-schema
subset checked by :func:`validate_schema` — no external dependency), which CI
uses to schema-check both run stores and the canonical bench JSON::

    python -m repro.harness.store runs/topology_sweep

Records carry a ``schema_version``; readers reject any other version with a
pointed error, and stores written by an older checkout are upgraded in place
with::

    python -m repro.harness.store migrate runs/topology_sweep

Stores also accumulate observability artifacts (raw event traces inside rows,
``metrics.jsonl`` next to the records); ``python -m repro.harness.store
compact <store>`` applies a declared retention policy to them (see
:mod:`repro.obs.retention`) without ever touching the canonical ``tele_*``
summaries.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from functools import lru_cache
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.harness.jsonl import parse_jsonl_tolerant
from repro.telemetry.log import console

__all__ = [
    "RUN_RECORD_SCHEMA",
    "RunRecord",
    "RunStore",
    "SchemaVersionError",
    "canonical_json",
    "check_schema_version",
    "current_commit",
    "migrate_payload",
    "migrate_store",
    "parse_records",
    "validate_schema",
    "main",
]

#: Version history:
#:   v1 — PR 4 original shape (key/experiment/commit/spec/hop_seeds/row).
#:   v2 — adds ``producer`` provenance ("serial", "pool", "serve:<worker>",
#:        or "unknown" for migrated v1 records).
SCHEMA_VERSION = 2
RECORDS_FILENAME = "records.jsonl"

#: The schema every RunRecord (one line of ``records.jsonl``) must satisfy.
RUN_RECORD_SCHEMA = {
    "type": "object",
    "required": ["schema_version", "key", "experiment", "commit", "producer",
                 "spec", "hop_seeds", "row"],
    "properties": {
        "schema_version": {"type": "integer"},
        "key": {"type": "string", "minLength": 1},
        "experiment": {"type": "string"},
        "commit": {"type": "string", "minLength": 1},
        "producer": {"type": "string", "minLength": 1},
        "spec": {"type": ["object", "null"]},
        "hop_seeds": {"type": "object", "values": {"type": "integer"}},
        "row": {"type": "object"},
    },
}


class SchemaVersionError(ValueError):
    """A record's ``schema_version`` is not the one this checkout writes.

    Raised *before* field-level schema validation so the error says how to fix
    the mismatch (migrate the store, or update the checkout) rather than
    complaining about a missing field the old version never had.  Never
    swallowed by the torn-tail tolerance in :func:`parse_records` — a whole
    store of old records must not silently load as empty.
    """

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float)) and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def validate_schema(obj: object, schema: Dict, path: str = "$") -> None:
    """Check ``obj`` against a minimal JSON-schema subset; raise ``ValueError``.

    Supports ``type`` (name or list of names), ``required``, ``properties``,
    ``items``, ``values`` (schema applied to every dict value) and
    ``minLength`` — exactly what :data:`RUN_RECORD_SCHEMA` and the bench
    payload schema need, with no external dependency.
    """
    expected = schema.get("type")
    if expected is not None:
        names = [expected] if isinstance(expected, str) else list(expected)
        if not any(_TYPE_CHECKS[name](obj) for name in names):
            raise ValueError(f"{path}: expected {' or '.join(names)}, "
                             f"got {type(obj).__name__} ({obj!r:.80})")
    if isinstance(obj, str) and "minLength" in schema and len(obj) < schema["minLength"]:
        raise ValueError(f"{path}: string shorter than {schema['minLength']}")
    if isinstance(obj, dict):
        for name in schema.get("required", ()):
            if name not in obj:
                raise ValueError(f"{path}: missing required key {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in obj:
                validate_schema(obj[name], subschema, f"{path}.{name}")
        if "values" in schema:
            for name, value in obj.items():
                validate_schema(value, schema["values"], f"{path}.{name}")
    if isinstance(obj, list) and "items" in schema:
        for index, item in enumerate(obj):
            validate_schema(item, schema["items"], f"{path}[{index}]")


def canonical_json(obj):
    """Round-trip a value through JSON so fresh and cached rows are identical.

    Tuples become lists and non-string dict keys become strings — exactly the
    normalization a cached row undergoes — so comparing a freshly-computed row
    with its stored copy is byte-exact.
    """
    return json.loads(json.dumps(obj))


@lru_cache(maxsize=1)
def current_commit() -> str:
    """The commit stamped into records: ``GITHUB_SHA``, ``git rev-parse``, or ``unknown``."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                             text=True, timeout=10, cwd=Path(__file__).parent)
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def fingerprint(payload: Dict) -> str:
    """A short stable digest of the run-time knobs that are not spec identity."""
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return sha256(canonical.encode("utf-8")).hexdigest()[:12]


def check_schema_version(payload: Dict) -> None:
    """Reject any record version this checkout does not write, pointedly.

    Version problems get their own error class and message — "run the migrate
    subcommand" for an old store, "update the checkout" for a newer one —
    instead of a generic missing-field complaint from the schema validator.
    """
    version = payload.get("schema_version") if isinstance(payload, dict) else None
    if not isinstance(version, int) or isinstance(version, bool):
        return  # let validate_schema produce the field-level error
    if version < SCHEMA_VERSION:
        raise SchemaVersionError(
            f"record schema v{version} predates this checkout's v{SCHEMA_VERSION}; "
            f"upgrade the store in place with "
            f"`python -m repro.harness.store migrate <store>`")
    if version > SCHEMA_VERSION:
        raise SchemaVersionError(
            f"record schema v{version} is newer than this checkout's "
            f"v{SCHEMA_VERSION}; this store was written by a newer repro — "
            f"update the checkout to read it")


# ---------------------------------------------------------------------- #
# RunRecord
# ---------------------------------------------------------------------- #
@dataclass
class RunRecord:
    """One completed cell: spec identity, provenance, and its metrics row."""

    key: str
    row: Dict
    experiment: str = ""
    spec: Optional[Dict] = None
    hop_seeds: Dict[str, int] = field(default_factory=dict)
    commit: str = field(default_factory=current_commit)
    producer: str = "unknown"
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def for_task(cls, task, row: Dict, experiment: str = "",
                 producer: str = "unknown") -> "RunRecord":
        """Build the record for one completed task (ExperimentTask or any task
        type exposing ``cell_key()``; spec/hop-seeds are stamped when the task
        describes a scenario)."""
        spec = None
        hop_seeds: Dict[str, int] = {}
        scenario = getattr(task, "scenario", None)
        if callable(scenario):
            scenario = scenario()
            spec = scenario.to_json()
            # Local import: families is a topology-layer module and the store
            # must stay importable without it for spec-less task types.
            from repro.topology.families import topology_hop_seeds

            hop_seeds = topology_hop_seeds(scenario.topology, scenario.trace, scenario.seed)
        return cls(key=task.cell_key(), row=canonical_json(row), experiment=experiment,
                   spec=spec, hop_seeds=hop_seeds, producer=producer)

    def to_json(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "key": self.key,
            "experiment": self.experiment,
            "commit": self.commit,
            "producer": self.producer,
            "spec": self.spec,
            "hop_seeds": self.hop_seeds,
            "row": self.row,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "RunRecord":
        check_schema_version(payload)
        validate_schema(payload, RUN_RECORD_SCHEMA)
        return cls(key=payload["key"], row=payload["row"], experiment=payload["experiment"],
                   spec=payload["spec"], hop_seeds=payload["hop_seeds"],
                   commit=payload["commit"], producer=payload["producer"],
                   schema_version=payload["schema_version"])

    def validate(self) -> None:
        validate_schema(self.to_json(), RUN_RECORD_SCHEMA)


# ---------------------------------------------------------------------- #
# Record-file parsing (shared by RunStore.load and the validation CLI)
# ---------------------------------------------------------------------- #
def parse_records(text: str, source: str = "records") -> tuple:
    """Parse a ``records.jsonl`` body into ``(records, valid_bytes, torn)``.

    ``records`` maps key → last :class:`RunRecord`; ``valid_bytes`` is the
    byte length of the well-formed prefix.  Torn-tail tolerance is the shared
    :func:`~repro.harness.jsonl.parse_jsonl_tolerant` rule: a malformed chunk
    is tolerated only when nothing but whitespace follows it (``torn=True`` —
    the torn tail of an interrupted append); malformed content anywhere else
    raises.  A :class:`SchemaVersionError` always raises, even on the final
    line — a store full of old-version records must surface the migrate hint,
    not quietly load as empty and truncate the file.
    """
    parsed, valid_bytes, torn = parse_jsonl_tolerant(
        text, source=source, parse=RunRecord.from_json,
        intolerant=(SchemaVersionError,), label="run record")
    records: Dict[str, RunRecord] = {}
    for record in parsed:
        records[record.key] = record
    return records, valid_bytes, torn


# ---------------------------------------------------------------------- #
# RunStore
# ---------------------------------------------------------------------- #
class RunStore:
    """An append-only on-disk store of :class:`RunRecord`\\ s.

    The store is a directory holding one ``records.jsonl``; :meth:`put`
    appends and flushes one line per completed cell, so an interrupted sweep
    keeps everything finished before the interruption.  Re-putting a key is
    allowed (the reconciling serial retry of a broken pool re-emits rows);
    :meth:`load` keeps the *last* record per key.  Only the coordinating
    parent process writes — workers hand rows back over the pool — so no
    cross-process locking is needed.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.records_path = self.path / RECORDS_FILENAME
        self._records: Dict[str, RunRecord] = {}
        self._loaded = False

    # ------------------------------------------------------------------ #
    def load(self) -> Dict[str, RunRecord]:
        """Read (and cache) every record on disk, last record per key winning.

        A malformed *final* line is a torn append from a hard kill (SIGKILL /
        OOM mid-flush) — exactly the interruption the store exists to
        survive — so it is dropped and the file truncated back to the valid
        prefix (otherwise the next append would concatenate onto the torn
        line and corrupt a good record).  Malformed lines anywhere else mean
        real corruption and still raise.
        """
        if not self._loaded:
            self._records = {}
            if self.records_path.exists():
                records, valid_bytes, torn = parse_records(
                    self.records_path.read_text(), source=str(self.records_path))
                if torn:
                    with self.records_path.open("r+") as handle:
                        handle.truncate(valid_bytes)
                self._records = records
            self._loaded = True
        return dict(self._records)

    def get(self, key: str) -> Optional[RunRecord]:
        return self.load().get(key)

    def put(self, record: RunRecord) -> None:
        record.validate()
        self.load()
        with self.records_path.open("a") as handle:
            handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._records[record.key] = record

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.load())

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def keys(self) -> List[str]:
        return list(self.load())

    def records(self) -> List[RunRecord]:
        """Every (deduplicated) record in first-seen key order."""
        return list(self.load().values())

    def rows(self) -> List[Dict]:
        """The metrics rows of every record (reporting/benchjson input)."""
        return [record.row for record in self.records()]


# ---------------------------------------------------------------------- #
# Store migration (the `migrate` subcommand)
# ---------------------------------------------------------------------- #
def migrate_payload(payload: Dict) -> Dict:
    """Upgrade one raw record payload from any known older version.

    Returns a new payload at :data:`SCHEMA_VERSION`; already-current payloads
    come back unchanged (migration is idempotent).  Raises
    :class:`SchemaVersionError` for versions newer than this checkout and
    ``ValueError`` for payloads with no integer ``schema_version`` at all.
    """
    version = payload.get("schema_version") if isinstance(payload, dict) else None
    if not isinstance(version, int) or isinstance(version, bool):
        raise ValueError("payload has no integer schema_version; not a run record")
    if version > SCHEMA_VERSION:
        check_schema_version(payload)  # raises the pointed "newer" error
    upgraded = dict(payload)
    if version < 2:
        # v1 records predate producer provenance; "unknown" marks the gap
        # honestly rather than guessing serial vs pool after the fact.
        upgraded.setdefault("producer", "unknown")
    upgraded["schema_version"] = SCHEMA_VERSION
    return upgraded


def migrate_store(path: str | Path) -> tuple:
    """Upgrade every record in a store to :data:`SCHEMA_VERSION`, in place.

    Returns ``(n_records, n_upgraded, torn)``.  The rewrite is atomic
    (tmp file + ``os.replace``), preserves line order, and — like
    :meth:`RunStore.load` — drops a torn trailing chunk from an interrupted
    append.  Every rewritten line is validated against the current schema
    before the original file is replaced.
    """
    path = Path(path)
    records_path = path / RECORDS_FILENAME if path.is_dir() else path
    if not records_path.exists():
        raise FileNotFoundError(f"{records_path}: missing")
    lines = records_path.read_text().split("\n")
    out_lines: List[str] = []
    upgraded = 0
    torn = False
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if all(not rest.strip() for rest in lines[line_number:]):
                torn = True
                break
            raise ValueError(
                f"{records_path}:{line_number}: invalid JSON: {exc}") from exc
        was_current = isinstance(payload, dict) and \
            payload.get("schema_version") == SCHEMA_VERSION
        try:
            migrated = migrate_payload(payload)
            RunRecord.from_json(migrated)
        except ValueError as exc:
            raise ValueError(f"{records_path}:{line_number}: {exc}") from exc
        upgraded += not was_current
        out_lines.append(json.dumps(migrated, sort_keys=True))
    tmp_path = records_path.with_name(records_path.name + ".migrate-tmp")
    tmp_path.write_text("".join(line + "\n" for line in out_lines))
    os.replace(tmp_path, records_path)
    return len(out_lines), upgraded, torn


# ---------------------------------------------------------------------- #
# CLI — schema validation (used by the CI resume smoke job) + migrate
# ---------------------------------------------------------------------- #
def _iter_record_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        yield path / RECORDS_FILENAME if path.is_dir() else path


def _main_migrate(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.store migrate",
        description="upgrade run-store records to the current schema version, in place",
    )
    parser.add_argument("paths", nargs="+",
                        help="run-store directories or records.jsonl files")
    args = parser.parse_args(list(argv))

    status = 0
    for path in _iter_record_files(args.paths):
        try:
            total, upgraded, torn = migrate_store(path)
        except (FileNotFoundError, ValueError) as exc:
            console(f"{path}: MIGRATION FAILED: {exc}")
            status = 1
            continue
        if torn:
            console(f"{path}: torn trailing line (interrupted append) dropped")
        console(f"{path}: {total} records at schema v{SCHEMA_VERSION} "
                f"({upgraded} upgraded)")
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    # `migrate`/`compact` dispatch as leading subcommands so the original
    # positional validate usage (`python -m repro.harness.store <store>...`)
    # is unchanged.
    if argv[:1] == ["migrate"]:
        return _main_migrate(argv[1:])
    if argv[:1] == ["compact"]:
        # Local import: retention lives in the observability plane, and the
        # store must stay importable without it.
        from repro.obs.retention import main_compact

        return main_compact(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.harness.store",
        description="validate run-store records against the RunRecord schema "
                    "(`migrate <store>...` upgrades old stores in place; "
                    "`compact <store>` applies an observability retention "
                    "policy)",
    )
    parser.add_argument("paths", nargs="+",
                        help="run-store directories or records.jsonl files")
    args = parser.parse_args(argv)

    status = 0
    for path in _iter_record_files(args.paths):
        if not path.exists():
            console(f"{path}: missing")
            status = 1
            continue
        try:
            by_key, _valid_bytes, torn = parse_records(path.read_text(), source=str(path))
        except ValueError as exc:
            console(f"{path}: INVALID: {exc}")
            status = 1
            continue
        records = list(by_key.values())
        if not records:
            console(f"{path}: empty")
            status = 1
            continue
        if torn:
            console(f"{path}: torn trailing line (interrupted append) ignored")
        console(f"{path}: {len(records)} valid records "
                f"({sum(1 for r in records if r.spec is not None)} with scenario specs)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
