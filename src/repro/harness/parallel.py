"""Parallel experiment sharding: a process pool over (scheme, trace, seed) grids.

The benchmark harness evaluates Cartesian grids of (scheme × trace × seed)
cells; every cell is independent, so the grid shards naturally across worker
processes.  This module provides the three pieces the experiment drivers and
the CLI build on:

* :class:`ExperimentTask` — one picklable grid cell: which scheme to run, on
  which trace, with which :class:`~repro.harness.evaluate.EvaluationSettings`
  and seed, and whether to additionally compute QC_sat certificates.
* :func:`run_task` — the module-level worker: builds the controller (fetching
  the trained model from the per-process model zoo), runs the cell, and
  returns a plain-dict row, so nothing non-picklable crosses the process
  boundary.
* :class:`ParallelRunner` — shards a task list over a
  ``concurrent.futures.ProcessPoolExecutor`` and merges the rows back **in
  task order**, so serial (``n_jobs=1``) and parallel runs produce identical
  reports.

Determinism
-----------

Each task carries its own seeds (the link/noise seed inside ``settings`` and
the model-training seed) — worker identity never influences results, and rows
come back ordered by task index regardless of completion order.  Use
:func:`derive_seed` to derive stable per-cell seeds from a base seed and the
cell coordinates.  Learned models are trained in the parent process first
(the drivers call :func:`~repro.harness.models.get_trained_model` up front),
so forked workers inherit the warm model cache instead of retraining.

Usage::

    tasks = [ExperimentTask(scheme="cubic", trace=trace, settings=settings)
             for trace in traces]
    result = ParallelRunner(n_jobs=4).run(tasks)
    rows = result.rows           # one dict per task, in task order
    result.wall_clock_s          # grid wall-clock, recorded in bench JSON
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.monitor import QCRuntimeMonitor
from repro.harness.evaluate import (
    EvaluationSettings,
    evaluate_qcsat,
    run_scheme_on_trace,
    scheme_factory,
)
from repro.harness.spec import PROPERTY_FAMILIES, ScenarioSpec
from repro.harness.store import fingerprint
from repro.seeding import derive_seed
from repro.telemetry.events import DEFAULT_TELEMETRY, EventTrace, canonical_telemetry
from repro.telemetry.summary import summarize_events
from repro.workload.spec import DEFAULT_WORKLOAD
from repro.traces.trace import BandwidthTrace

__all__ = [
    "ExperimentTask",
    "GridResult",
    "ParallelRunner",
    "run_profiled",
    "run_task",
    "derive_seed",
    "PROPERTY_FAMILIES",
]


@dataclass(frozen=True)
class ExperimentTask:
    """One (scheme, trace, seed) cell of an experiment grid.

    For classical schemes leave ``model_kind`` as None; for learned schemes the
    worker fetches ``model_kind`` from the model zoo (instant when the parent
    trained it before forking).  With ``certify=True`` the cell additionally
    runs the verifier over every decision and reports QC_sat columns.

    ``monitor_threshold``/``monitor_family``/``monitor_components`` describe a
    :class:`repro.core.monitor.QCRuntimeMonitor` *declaratively*: the worker
    rebuilds the monitor (and its verifier closure) from the model zoo, so the
    task stays picklable and fallback grids shard like any other grid.  A
    threshold of 0.0 installs the monitor in record-only mode (the learned
    action is never vetoed), matching the figure-13 baseline.

    ``model_topologies`` selects the *training-time* scenario catalog of the
    learned model (topology family specs sampled per training episode; None
    keeps the preset's single-bottleneck training), independently of the
    *evaluation* topology carried by ``settings.topology`` — the axis pair the
    cross-family generalization grid sweeps.
    """

    scheme: str
    trace: BandwidthTrace
    settings: EvaluationSettings
    model_kind: Optional[str] = None
    training_steps: int = 800
    model_seed: int = 1
    lam: Optional[float] = None
    model_components: Optional[int] = None
    model_topologies: Optional[Tuple[str, ...]] = None
    certify: bool = False
    property_family: Optional[str] = None
    n_components: int = 50
    monitor_threshold: Optional[float] = None
    monitor_family: Optional[str] = None
    monitor_components: int = 10
    tags: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.certify and self.model_kind is None:
            raise ValueError("certify=True requires a learned model_kind")
        if self.model_topologies is not None:
            if self.model_kind is None:
                raise ValueError("model_topologies requires a learned model_kind")
            object.__setattr__(self, "model_topologies",
                               tuple(str(spec) for spec in self.model_topologies))
        for family in (self.property_family, self.monitor_family):
            if family is not None and family not in PROPERTY_FAMILIES:
                raise ValueError(f"unknown property family {family!r}; "
                                 f"known: {sorted(PROPERTY_FAMILIES)}")
        if self.monitor_threshold is not None:
            if self.model_kind is None:
                raise ValueError("a monitor spec requires a learned model_kind")
            if self.monitor_family is None:
                raise ValueError("a monitor spec requires monitor_family")
            if not 0.0 <= self.monitor_threshold <= 1.0:
                raise ValueError("monitor_threshold must be in [0, 1]")

    # ------------------------------------------------------------------ #
    # Scenario identity (the RunStore / registry currency)
    # ------------------------------------------------------------------ #
    def scenario(self) -> ScenarioSpec:
        """The declarative identity of this cell (scheme/trace/topology/seed/...)."""
        return ScenarioSpec(
            scheme=self.scheme,
            trace=self.trace.name,
            topology=self.settings.topology,
            workload=self.settings.workload,
            seed=self.settings.seed,
            model_kind=self.model_kind,
            model_topologies=self.model_topologies,
            property_family=self.property_family,
            certify=self.certify,
        )

    def cell_key(self) -> str:
        """The resumable-store key: scenario key + a digest of run-time knobs.

        The digest covers everything outside the scenario identity that can
        change the row — run length, buffer depth, noise/loss settings, the
        model's training budget/seed/overrides, certification and monitor
        knobs, and the tags — so a cached row is only ever reused for an
        *exactly* matching cell.
        """
        settings = self.settings
        extras = {
            "duration": settings.duration,
            "dt": settings.dt,
            "min_rtt": settings.min_rtt,
            "buffer_bdp": settings.buffer_bdp,
            "monitor_interval": settings.monitor_interval,
            "skip_seconds": settings.skip_seconds,
            "observation_noise": settings.observation_noise,
            "random_loss_rate": settings.random_loss_rate,
            "stochastic_loss": settings.stochastic_loss,
            "training_steps": self.training_steps,
            "model_seed": self.model_seed,
            "lam": self.lam,
            "model_components": self.model_components,
            "n_components": self.n_components,
            "monitor_threshold": self.monitor_threshold,
            "monitor_family": self.monitor_family,
            "monitor_components": self.monitor_components,
            "tags": dict(self.tags),
        }
        # Like the workload column in rows: the telemetry knob only enters the
        # digest when enabled, so every pre-telemetry store key — including the
        # committed golden stores — stays valid verbatim.
        if settings.telemetry != DEFAULT_TELEMETRY:
            extras["telemetry"] = canonical_telemetry(settings.telemetry)
        return f"{self.scenario().key()} #{fingerprint(extras)}"


@dataclass
class GridResult:
    """Rows for every task (in task order) plus grid-level accounting.

    ``n_cached`` counts rows served from a resumable run store rather than
    computed in this run (``wall_clock_s`` covers only the computed cells), so
    throughput aggregates can avoid dividing cached work by live wall-clock.
    """

    rows: List[Dict]
    wall_clock_s: float
    n_tasks: int
    n_jobs: int
    n_cached: int = 0

    def _check_columns(self, names: Sequence[str]) -> None:
        """Reject axis/column names no row carries (typos would silently match
        nothing and vanish into empty aggregates)."""
        if not self.rows:
            return
        valid = set()
        for row in self.rows:
            valid.update(row.keys())
        unknown = sorted(name for name in names if name not in valid)
        if unknown:
            raise ValueError(f"unknown grid column(s) {unknown}; "
                             f"valid columns: {sorted(valid)}")

    @staticmethod
    def _values_match(row_value, wanted) -> bool:
        """One value-equality rule for row selection: numeric values compare
        across int/float (a ``seeds=1`` override must match a row whose seed
        round-tripped through JSON as ``1.0``, and ``poisson(0.1)`` float rates
        select regardless of spelling), but bools never match their 0/1
        integer aliases (``certify=True`` must not select ``certify=1``)."""
        if isinstance(row_value, bool) != isinstance(wanted, bool):
            return False
        return row_value == wanted

    def select(self, **tags) -> List[Dict]:
        """Rows whose tag columns match every given key/value.

        Unknown column names raise (listing the valid ones) instead of
        silently selecting nothing.
        """
        self._check_columns(list(tags))
        return [row for row in self.rows
                if all(self._values_match(row.get(key), value)
                       for key, value in tags.items())]

    def aggregate(self, group_by: Sequence[str], metrics: Sequence[str]) -> List[Dict]:
        """Mean/std of ``metrics`` per distinct ``group_by`` tuple (in first-seen order)."""
        self._check_columns(list(group_by) + list(metrics))
        groups: Dict[tuple, List[Dict]] = {}
        order: List[tuple] = []
        for row in self.rows:
            key = tuple(row.get(column) for column in group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        aggregated = []
        for key in order:
            members = groups[key]
            entry = dict(zip(group_by, key))
            for metric in metrics:
                values = [row[metric] for row in members]
                entry[f"{metric}_mean"] = float(np.mean(values))
                entry[f"{metric}_std"] = float(np.std(values))
            entry["n_cells"] = len(members)
            aggregated.append(entry)
        return aggregated


def _task_model(task: ExperimentTask):
    # Imported here (not at module top) to keep the worker import graph slim
    # and avoid a models<->parallel cycle if the zoo ever grows runner hooks.
    from repro.harness.models import model_for_task

    return model_for_task(task)


def _embed_telemetry(row: Dict, trace: Optional[EventTrace],
                     settings: EvaluationSettings) -> None:
    """Fold a cell's telemetry into its row: summary scalars + raw events.

    The ``tele_*`` scalars flow into the RunRecord (and from there into
    BENCH_ci.json trajectory rows); the raw event list rides along as the
    non-scalar ``telemetry_events`` entry, which the bench layer excludes by
    construction.  Disabled telemetry adds nothing, keeping legacy row shapes.
    """
    if trace is None:
        return
    row["telemetry"] = canonical_telemetry(settings.telemetry)
    row.update(summarize_events(trace.events, duration=settings.duration))
    row["telemetry_events"] = trace.to_json()


def run_task(task: ExperimentTask) -> Dict:
    """Run one grid cell and return its report row (module-level: picklable)."""
    model = _task_model(task) if task.model_kind is not None else None
    row: Dict = {"scheme": task.scheme, "trace": task.trace.name, "seed": task.settings.seed,
                 "topology": task.settings.topology}
    # The workload column only appears for non-static cells, so legacy grids
    # (and their stored rows) keep their exact shape.
    if task.settings.workload != DEFAULT_WORKLOAD:
        row["workload"] = task.settings.workload
    row.update(task.tags)
    # One shared trace per cell: the monitor and the simulator emit into the
    # same stream, ordered by the simulator's tick clock.  None when off.
    telemetry = EventTrace.from_spec(task.settings.telemetry)

    if task.certify:
        properties = None
        if task.property_family is not None:
            properties = PROPERTY_FAMILIES[task.property_family]()
        qcsat = evaluate_qcsat(model, task.trace, task.settings, properties=properties,
                               n_components=task.n_components, scheme_name=task.scheme,
                               telemetry=telemetry)
        # The certified run doubles as a performance run, so certify rows carry
        # the empirical summary columns too (certified safety + performance in
        # one pass — what the generalization grids report per cell).
        if qcsat.summary is not None:
            row.update(qcsat.summary.as_dict())
        row.update({
            "qcsat": qcsat.mean,                  # per-trace mean over decisions
            "qcsat_decision_std": qcsat.std,      # per-trace std over decisions
            "n_decisions": qcsat.n_decisions,
            "n_applicable": qcsat.n_applicable,
            "n_certificates": qcsat.n_decisions * len(qcsat.property_names),
        })
        _embed_telemetry(row, telemetry, task.settings)
        return row

    monitor = None
    decision_filter = None
    if task.monitor_threshold is not None:
        monitor = QCRuntimeMonitor(
            model.make_verifier(n_components=task.monitor_components),
            PROPERTY_FAMILIES[task.monitor_family](),
            threshold=task.monitor_threshold,
            n_components=task.monitor_components,
            enabled=task.monitor_threshold > 0.0,
            telemetry=telemetry,
        )
        decision_filter = monitor.decision_filter
    if model is None:
        factory = scheme_factory(task.scheme)
    else:
        factory = scheme_factory(task.scheme, model=model,
                                 observation_noise=task.settings.observation_noise,
                                 decision_filter=decision_filter,
                                 monitor_interval=task.settings.monitor_interval,
                                 seed=task.settings.seed)
    result = run_scheme_on_trace(factory, task.trace, task.settings, scheme_name=task.scheme,
                                 telemetry=telemetry)
    row.update(result.summary.as_dict())
    if monitor is not None:
        row["fallback_fraction"] = monitor.fallback_fraction
        row["mean_qc"] = monitor.mean_qc
    _embed_telemetry(row, telemetry, task.settings)
    return row


def run_profiled(runner: Callable, task) -> Dict:
    """Run one cell under a fresh process-wide :class:`TickProfiler`.

    The ``--profile`` wrapper for pool workers: module-level (so a
    ``functools.partial`` of it pickles into the pool), it activates a
    profiler for the duration of one cell and hands back
    ``{"row": ..., "profile": ...}``.  The caller unwraps the row *before*
    canonicalization/storage, so profiled and unprofiled rows stay
    byte-identical — the profile report travels next to the row, never
    inside it.
    """
    from repro.telemetry.profiler import (TickProfiler, activate_profiler,
                                          deactivate_profiler)

    profiler = activate_profiler(TickProfiler())
    try:
        row = runner(task)
    finally:
        deactivate_profiler()
    return {"row": row, "profile": profiler.report()}


class ParallelRunner:
    """Shards independent experiment tasks across a process pool.

    ``n_jobs`` resolution: an explicit value wins; ``None`` reads the
    ``REPRO_JOBS`` environment variable (default 1, i.e. serial); any value
    <= 0 means "one worker per CPU".  With one job (or one task) everything
    runs in-process — no pool, no pickling — which is also the fallback when a
    pool cannot be created or a task does not survive the process boundary.
    """

    def __init__(self, n_jobs: Optional[int] = None):
        if n_jobs is None:
            n_jobs = int(os.environ.get("REPRO_JOBS", "1"))
        if n_jobs <= 0:
            n_jobs = os.cpu_count() or 1
        self.n_jobs = int(n_jobs)

    # ------------------------------------------------------------------ #
    def map(self, fn: Callable, items: Iterable,
            on_result: Optional[Callable[[int, object, object], None]] = None) -> List:
        """``[fn(x) for x in items]`` sharded over the pool, results in order.

        ``fn`` must be a module-level callable and every item picklable when
        the pool is used; the serial path has no such requirement.  Only pool
        *infrastructure* failures (unpicklable work, no fork permission, the
        pool dying mid-run) degrade to the serial path — an exception raised
        by ``fn`` itself propagates immediately, exactly as it would serially.

        ``on_result(index, item, result)`` is invoked for every result *in
        item order, as soon as it is available* — the hook the resumable
        :class:`~repro.harness.store.RunStore` uses to persist each cell
        incrementally.  It must be idempotent per index: when a dying pool
        degrades to the serial retry, already-notified prefixes are notified
        again.
        """
        items = list(items)
        if self.n_jobs <= 1 or len(items) <= 1:
            return self._serial(fn, items, on_result)
        if not self._picklable(fn, items):
            return self._serial(fn, items, on_result)
        # Prefer fork so workers inherit the parent's trained-model cache.
        context = get_context("fork") if "fork" in get_all_start_methods() else get_context()
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.n_jobs, len(items)),
                                       mp_context=context)
        except OSError:
            return self._serial(fn, items, on_result)
        try:
            # Executor.map submits eagerly, so worker spawn failures (fork
            # denied in sandboxes, process limits) raise OSError *here* —
            # before any task runs — and select the serial path.  An OSError
            # raised by a task itself surfaces later, from the result
            # iteration below, and propagates to the caller.
            results = pool.map(fn, items)
        except OSError:
            pool.shutdown(wait=False, cancel_futures=True)
            return self._serial(fn, items, on_result)
        try:
            with pool:
                collected = []
                for index, result in enumerate(results):
                    if on_result is not None:
                        on_result(index, items[index], result)
                    collected.append(result)
                return collected
        except (BrokenProcessPool, pickle.PicklingError):
            # The pool died mid-run (OOM, kill) or a straggler task defeated
            # the pre-flight pickle check; retry the whole grid serially
            # instead of failing the experiment.
            return self._serial(fn, items, on_result)

    @staticmethod
    def _serial(fn: Callable, items: List,
                on_result: Optional[Callable[[int, object, object], None]]) -> List:
        results = []
        for index, item in enumerate(items):
            result = fn(item)
            if on_result is not None:
                on_result(index, item, result)
            results.append(result)
        return results

    @staticmethod
    def _picklable(fn: Callable, items: List) -> bool:
        """Whether the work survives the process boundary.

        A cheap pre-flight: serializes the callable and one representative
        item (grids are homogeneous) rather than re-pickling the entire task
        list the pool is about to pickle anyway.  Heterogeneous stragglers
        that slip through are caught at result time and fall back serially.
        """
        try:
            pickle.dumps(fn)
            if items:
                pickle.dumps(items[0])
            return True
        except (pickle.PicklingError, AttributeError, TypeError):
            return False

    def run(self, tasks: Iterable, fn: Callable = run_task,
            on_result: Optional[Callable[[int, object, object], None]] = None) -> GridResult:
        """Run a grid of tasks through ``fn`` and merge the rows in task order.

        ``fn`` defaults to :func:`run_task` (ExperimentTask grids); other task
        types supply their own module-level worker (e.g.
        :func:`repro.harness.fairness.run_multiflow_task`).  ``on_result`` is
        forwarded to :meth:`map` (incremental per-cell persistence).
        """
        tasks = list(tasks)
        start = time.perf_counter()
        rows = self.map(fn, tasks, on_result=on_result)
        return GridResult(
            rows=rows,
            wall_clock_s=time.perf_counter() - start,
            n_tasks=len(tasks),
            n_jobs=self.n_jobs,
        )
