"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent across benchmarks and example scripts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.telemetry.log import console

__all__ = ["format_table", "format_rows", "print_experiment"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence], float_fmt: str = "{:.3f}") -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_fmt.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rendered_rows)
    return "\n".join([line, separator, body]) if body else "\n".join([line, separator])


def format_rows(rows: Sequence[Dict], columns: Sequence[str] | None = None, float_fmt: str = "{:.3f}") -> str:
    """Render a list of homogeneous dicts as a table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    table_rows = [[row.get(col, "") for col in columns] for row in rows]
    return format_table(columns, table_rows, float_fmt=float_fmt)


def print_experiment(title: str, result: Dict, columns: Sequence[str] | None = None) -> None:
    """Print an experiment result in the standard layout used by benchmarks."""
    console()
    console("=" * len(title))
    console(title)
    console("=" * len(title))
    rows = result.get("rows")
    if rows:
        console(format_rows(rows, columns=columns))
    for key, value in result.items():
        # "axes" (the registry's resolved axis dict) and "profile" (the
        # merged phase report, rendered as a table by `run --profile`) are
        # structured payloads, not scalar metrics — kept out of the standard
        # layout like the row dumps.
        if key in ("rows", "series", "curves", "steps", "series_mbps", "axes",
                   "profile"):
            continue
        console(f"{key}: {value}")
