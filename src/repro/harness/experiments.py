"""Experiment drivers — one function per figure/table of the evaluation.

Every driver accepts scale knobs (training steps, run duration, number of
traces, number of QC components) so the same code can run at CI scale inside
the benchmark suite or at larger scale from the example scripts.  Each driver
returns plain dictionaries / lists so the reporting module (and the
benchmarks) can render them as the rows/series the paper reports.

The grid-shaped drivers (``qcsat_buffers``, ``qcsat_robustness``,
``performance_sweep``, ``topology_sweep``, ``realworld_deployment``,
``fallback_runtime``) shard their (scheme × trace) cells through
:class:`repro.harness.parallel.ParallelRunner` and accept an ``n_jobs`` knob
(default 1 = serial; parallel and serial runs produce identical rows).  They also report the grid wall-clock — and, for the
certificate grids, certificates/sec — so the benchmark JSON captures
verification throughput alongside the figures.

Every grid-shaped experiment (``qcsat_buffers``, ``qcsat_robustness``,
``performance_sweep``, ``topology_sweep``, ``topology_generalization``,
``workload_stress``, ``realworld_deployment``, ``fallback_runtime``,
``friendliness``, ``fairness``) is additionally *declared* in
:data:`repro.harness.registry.REGISTRY` — named axes, a grid-expansion build
hook, and an aggregator — so they are reachable generically via
``python -m repro run <name> --set axis=value``, persist per-cell
:class:`~repro.harness.store.RunRecord`\\ s, resume interrupted sweeps, and
can be served to a lease-based worker fleet (``python -m repro serve``).
The driver functions of those experiments are thin shims over the registry
(rows are byte-identical through either entry point).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.properties import (
    deep_buffer_properties,
    robustness_properties,
    shallow_buffer_properties,
)
from repro.core.trainer import CanopyTrainer, TrainerConfig
from repro.core.config import CanopyConfig
from repro.harness.evaluate import (
    EvaluationSettings,
    certificates_for_decisions,
    default_model_kind,
    run_scheme_on_trace,
    scheme_factory,
)
from repro.harness.fairness import MultiFlowTask, run_multiflow_task
from repro.harness.models import get_trained_model
from repro.harness.parallel import ExperimentTask
from repro.harness.registry import REGISTRY
from repro.harness.spec import trace_subset
from repro.telemetry.events import canonical_telemetry
from repro.topology.families import canonical_topology, topology_family_specs
from repro.workload.spec import canonical_workload
from repro.traces.realworld import intercontinental_profiles, intracontinental_profiles
from repro.traces.synthetic import make_synthetic_trace

__all__ = [
    "motivation_noise",
    "motivation_bad_state",
    "qcsat_buffers",
    "certified_components",
    "qcsat_robustness",
    "performance_sweep",
    "topology_sweep",
    "topology_generalization",
    "workload_stress",
    "noise_sensitivity",
    "realworld_deployment",
    "fallback_runtime",
    "friendliness_grid",
    "fairness_grid",
    "sensitivity",
    "training_curves",
    "verification_overhead",
]

#: Default family catalog of the cross-family generalization grid (>= 3
#: families, kept multi-hop-light so the grid stays CI-affordable).
GENERALIZATION_FAMILIES = ("single_bottleneck", "chain(2)", "parking_lot(2)")

#: Label of the domain-randomized model trained on every family at once.
MIXED_TRAINING_LABEL = "mixed"


#: Backward-compatible alias — the one trace-suite resolver lives in
#: :func:`repro.harness.spec.trace_subset`.
_trace_subset = trace_subset


def _qc_grid_summary(figure: str, rows: List[Dict], grid) -> Dict:
    """Figure payload plus the certificate-throughput accounting shared by the
    QC_sat grids (certificates/sec and grid wall-clock land in the bench JSON)."""
    certificates = int(sum(cell["n_certificates"] for cell in grid.rows))
    return {
        "figure": figure,
        "rows": rows,
        "wall_clock_s": grid.wall_clock_s,
        "n_jobs": grid.n_jobs,
        "certificates": certificates,
        "certificates_per_sec": certificates / grid.wall_clock_s if grid.wall_clock_s > 0 else 0.0,
    }


# ---------------------------------------------------------------------- #
# Figure 1 — Orca vs Canopy under observation noise (motivation)
# ---------------------------------------------------------------------- #
def motivation_noise(
    training_steps: int = 400,
    duration: float = 12.0,
    noise: float = 0.05,
    seed: int = 1,
) -> Dict:
    """Sending rate of Orca and Canopy with and without ±5% delay noise (Fig. 1)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy = get_trained_model("canopy-robust", training_steps=training_steps, seed=seed)
    trace = make_synthetic_trace("step-12-48")
    settings_clean = EvaluationSettings(duration=duration, buffer_bdp=2.0, observation_noise=0.0, seed=seed)
    settings_noisy = EvaluationSettings(duration=duration, buffer_bdp=2.0, observation_noise=noise, seed=seed)

    rows = []
    series = {}
    for label, model, settings in (
        ("orca", orca, settings_clean),
        ("orca-noise", orca, settings_noisy),
        ("canopy", canopy, settings_clean),
        ("canopy-noise", canopy, settings_noisy),
    ):
        result = run_scheme_on_trace(
            scheme_factory(label, model=model, observation_noise=settings.observation_noise, seed=seed),
            trace, settings, scheme_name=label,
        )
        stats = result.simulation.stats_for(0)
        series[label] = {
            "time": stats.times.tolist(),
            "throughput_pps": (stats.acked / result.simulation.dt).tolist(),
            "cwnd": stats.cwnd.tolist(),
        }
        rows.append({"scheme": label, **result.summary.as_dict()})

    def _util(name: str) -> float:
        return next(r["utilization"] for r in rows if r["scheme"] == name)

    return {
        "figure": "1",
        "trace": trace.name,
        "rows": rows,
        "series": series,
        "orca_noise_drop": _util("orca") - _util("orca-noise"),
        "canopy_noise_drop": _util("canopy") - _util("canopy-noise"),
    }


# ---------------------------------------------------------------------- #
# Figure 2 — Orca entering bad states on a high-BDP path (motivation)
# ---------------------------------------------------------------------- #
def motivation_bad_state(
    training_steps: int = 400,
    duration: float = 15.0,
    seed: int = 1,
) -> Dict:
    """Orca vs Canopy (deep-buffer model) on a high-BDP trace (Fig. 2)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy = get_trained_model("canopy-deep", training_steps=training_steps, seed=seed)
    trace = make_synthetic_trace("square-48-96")
    settings = EvaluationSettings(duration=duration, buffer_bdp=5.0, min_rtt=0.08, seed=seed)

    rows = []
    series = {}
    for label, model in (("orca", orca), ("canopy", canopy)):
        result = run_scheme_on_trace(
            scheme_factory(label, model=model, seed=seed), trace, settings, scheme_name=label
        )
        stats = result.simulation.stats_for(0)
        decisions = result.decisions
        series[label] = {
            "time": stats.times.tolist(),
            "throughput_pps": (stats.acked / result.simulation.dt).tolist(),
            "cwnd": stats.cwnd.tolist(),
            "decision_time": [d.time for d in decisions],
            "cwnd_tcp": [d.cwnd_tcp for d in decisions],
            "cwnd_enforced": [d.cwnd_after for d in decisions],
        }
        rows.append({"scheme": label, **result.summary.as_dict()})
    return {"figure": "2", "trace": trace.name, "rows": rows, "series": series}


# ---------------------------------------------------------------------- #
# Figure 5 — QC_sat for the shallow/deep buffer properties
# ---------------------------------------------------------------------- #
#: The (property family, buffer depth, canopy model) cases of the Fig. 5 grid.
_QCSAT_BUFFER_CASES = (("shallow", 0.5, "canopy-shallow"), ("deep", 5.0, "canopy-deep"))


def _qcsat_buffers_aggregate(grid, axes: Dict, tasks: Sequence) -> Dict:
    # Mean/std across traces of the per-trace QC_sat means, per grid cell group.
    rows = grid.aggregate(group_by=["property_family", "trace_kind", "scheme"], metrics=["qcsat"])
    for row in rows:
        row["n_traces"] = row.pop("n_cells")
    return _qc_grid_summary("5", rows, grid)


@REGISTRY.register(
    "qcsat_buffers",
    axes={
        "training_steps": 400,
        "duration": 10.0,
        "n_components": 50,
        "n_synthetic": 3,
        "n_cellular": 2,
        "seeds": (1,),
    },
    aggregate=_qcsat_buffers_aggregate,
    description="QC_sat of Canopy vs Orca, shallow & deep buffer properties (Fig. 5)",
)
def _qcsat_buffers_build(axes: Dict) -> List[ExperimentTask]:
    tasks = []
    for family, buffer_bdp, canopy_kind in _QCSAT_BUFFER_CASES:
        for trace_kind, count in (("synthetic", axes["n_synthetic"]),
                                  ("cellular", axes["n_cellular"])):
            for seed in axes["seeds"]:
                settings = EvaluationSettings(duration=axes["duration"],
                                              buffer_bdp=buffer_bdp, seed=seed)
                for scheme_label, model_kind in (("canopy", canopy_kind), ("orca", "orca")):
                    for trace in _trace_subset(trace_kind, count):
                        tasks.append(ExperimentTask(
                            scheme=scheme_label, trace=trace, settings=settings,
                            model_kind=model_kind, training_steps=axes["training_steps"],
                            model_seed=seed,
                            certify=True, property_family=family,
                            n_components=axes["n_components"],
                            tags={"property_family": family, "trace_kind": trace_kind},
                        ))
    return tasks


def qcsat_buffers(
    training_steps: int = 400,
    duration: float = 10.0,
    n_components: int = 50,
    n_synthetic: int = 3,
    n_cellular: int = 2,
    seed: int = 1,
    n_jobs: int = 1,
) -> Dict:
    """Mean/std of QC_sat for Canopy vs Orca, shallow & deep properties (Fig. 5).

    Thin shim over the registered ``qcsat_buffers`` experiment — the registry
    pre-trains the models the pending cells name, shards the grid, and
    aggregates; rows are byte-identical to the historical bespoke driver.
    """
    return REGISTRY.run("qcsat_buffers", {
        "training_steps": training_steps,
        "duration": duration,
        "n_components": n_components,
        "n_synthetic": n_synthetic,
        "n_cellular": n_cellular,
        "seeds": (seed,),
    }, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Figures 6 & 8 — certified-component distributions
# ---------------------------------------------------------------------- #
def certified_components(
    model_kind: str = "canopy-shallow",
    property_family: str = "shallow",
    trace_name: str = "step-12-48",
    training_steps: int = 400,
    duration: float = 10.0,
    n_components: int = 50,
    max_steps: int = 50,
    buffer_bdp: float = 0.5,
    seed: int = 1,
) -> Dict:
    """Per-component output bounds over the first ``max_steps`` decisions (Figs. 6/8)."""
    families = {
        "shallow": shallow_buffer_properties(),
        "deep": deep_buffer_properties(),
        "robustness": robustness_properties(),
    }
    properties = families[property_family]
    model = get_trained_model(model_kind, training_steps=training_steps, seed=seed)
    trace = make_synthetic_trace(trace_name)
    settings = EvaluationSettings(duration=duration, buffer_bdp=buffer_bdp, seed=seed)

    run = run_scheme_on_trace(scheme_factory(model_kind, model=model, seed=seed), trace, settings,
                              scheme_name=model_kind)
    verifier = model.make_verifier(n_components=n_components)
    certificates = certificates_for_decisions(verifier, properties, run.decisions[:max_steps],
                                              n_components=n_components)

    steps = []
    for step_index, per_property in enumerate(certificates):
        for name, certificate in per_property.items():
            steps.append({
                "step": step_index,
                "property": name,
                "applicable": certificate.applicable,
                "feedback": certificate.feedback,
                "satisfied_fraction": certificate.satisfied_fraction,
                "output_bounds": certificate.output_bounds().tolist(),
            })
    mean_feedback = float(np.mean([s["feedback"] for s in steps])) if steps else 1.0
    return {
        "figure": "6/8",
        "model": model_kind,
        "trace": trace.name,
        "steps": steps,
        "mean_feedback": mean_feedback,
    }


# ---------------------------------------------------------------------- #
# Figure 7 — QC_sat for the robustness property
# ---------------------------------------------------------------------- #
def _qcsat_robustness_aggregate(grid, axes: Dict, tasks: Sequence) -> Dict:
    rows = grid.aggregate(group_by=["trace_kind", "scheme"], metrics=["qcsat"])
    for row in rows:
        row["n_traces"] = row.pop("n_cells")
    return _qc_grid_summary("7", rows, grid)


@REGISTRY.register(
    "qcsat_robustness",
    axes={
        "training_steps": 400,
        "duration": 10.0,
        "n_components": 50,
        "n_synthetic": 3,
        "n_cellular": 2,
        "noise": 0.05,
        "seeds": (1,),
    },
    aggregate=_qcsat_robustness_aggregate,
    description="QC_sat of Canopy-robust vs Orca under observation noise (Fig. 7)",
)
def _qcsat_robustness_build(axes: Dict) -> List[ExperimentTask]:
    tasks = []
    for trace_kind, count in (("synthetic", axes["n_synthetic"]),
                              ("cellular", axes["n_cellular"])):
        for seed in axes["seeds"]:
            settings = EvaluationSettings(duration=axes["duration"], buffer_bdp=2.0,
                                          observation_noise=axes["noise"], seed=seed)
            for scheme_label, model_kind in (("canopy", "canopy-robust"), ("orca", "orca")):
                for trace in _trace_subset(trace_kind, count):
                    tasks.append(ExperimentTask(
                        scheme=scheme_label, trace=trace, settings=settings,
                        model_kind=model_kind, training_steps=axes["training_steps"],
                        model_seed=seed,
                        certify=True, property_family="robustness",
                        n_components=axes["n_components"],
                        tags={"trace_kind": trace_kind},
                    ))
    return tasks


def qcsat_robustness(
    training_steps: int = 400,
    duration: float = 10.0,
    n_components: int = 50,
    n_synthetic: int = 3,
    n_cellular: int = 2,
    noise: float = 0.05,
    seed: int = 1,
    n_jobs: int = 1,
) -> Dict:
    """QC_sat of Canopy-robust vs Orca for P5 on 2 BDP buffers (Fig. 7).

    Thin shim over the registered ``qcsat_robustness`` experiment.
    """
    return REGISTRY.run("qcsat_robustness", {
        "training_steps": training_steps,
        "duration": duration,
        "n_components": n_components,
        "n_synthetic": n_synthetic,
        "n_cellular": n_cellular,
        "noise": noise,
        "seeds": (seed,),
    }, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Figures 9, 10 — empirical performance sweeps
# ---------------------------------------------------------------------- #
def _performance_sweep_labels(axes: Dict) -> Dict[str, Optional[str]]:
    return {
        "canopy": axes["canopy_kind"],
        "orca": "orca",
        "cubic": None,
        "vegas": None,
        "bbr": None,
    }


def _performance_sweep_aggregate(grid, axes: Dict, tasks: Sequence) -> Dict:
    scheme_kinds = _performance_sweep_labels(axes)
    topologies = list(axes["topologies"])
    rows = []
    for topology in topologies:
        for trace_kind in ("synthetic", "cellular"):
            for label in scheme_kinds:
                cells = grid.select(topology=topology, trace_kind=trace_kind, scheme=label)
                row = {
                    "trace_kind": trace_kind,
                    "scheme": label,
                    "utilization": float(np.mean([c["utilization"] for c in cells])),
                    "avg_delay_ms": float(np.mean([c["avg_queuing_delay_ms"] for c in cells])),
                    "p95_delay_ms": float(np.mean([c["p95_queuing_delay_ms"] for c in cells])),
                    "loss_rate": float(np.mean([c["loss_rate"] for c in cells])),
                    "n_traces": len(cells),
                }
                if len(topologies) > 1:
                    row = {"topology": topology, **row}
                rows.append(row)
    figure = "9" if axes["buffer_bdp"] <= 1.0 else "10"
    return {"figure": figure, "buffer_bdp": axes["buffer_bdp"], "rows": rows,
            "topologies": topologies,
            "wall_clock_s": grid.wall_clock_s, "n_jobs": grid.n_jobs}


@REGISTRY.register(
    "performance_sweep",
    axes={
        "buffer_bdp": 1.0,
        "canopy_kind": "canopy-shallow",
        "training_steps": 400,
        "duration": 15.0,
        "n_synthetic": 3,
        "n_cellular": 2,
        "seeds": (1,),
        "topologies": ("single_bottleneck",),
    },
    aggregate=_performance_sweep_aggregate,
    description="utilization vs delay for every scheme (Fig. 9 shallow / Fig. 10 deep)",
)
def _performance_sweep_build(axes: Dict) -> List[ExperimentTask]:
    scheme_kinds = _performance_sweep_labels(axes)
    tasks = []
    for topology in axes["topologies"]:
        for trace_kind, count in (("synthetic", axes["n_synthetic"]),
                                  ("cellular", axes["n_cellular"])):
            for seed in axes["seeds"]:
                settings = EvaluationSettings(duration=axes["duration"],
                                              buffer_bdp=axes["buffer_bdp"],
                                              topology=topology, seed=seed)
                for trace in _trace_subset(trace_kind, count):
                    for label, model_kind in scheme_kinds.items():
                        tasks.append(ExperimentTask(
                            scheme=label, trace=trace, settings=settings,
                            model_kind=model_kind, training_steps=axes["training_steps"],
                            model_seed=seed,
                            tags={"trace_kind": trace_kind},
                        ))
    return tasks


def performance_sweep(
    buffer_bdp: float = 1.0,
    canopy_kind: str = "canopy-shallow",
    training_steps: int = 400,
    duration: float = 15.0,
    n_synthetic: int = 3,
    n_cellular: int = 2,
    seed: int = 1,
    n_jobs: int = 1,
    topologies: Sequence[str] = ("single_bottleneck",),
) -> Dict:
    """Utilization vs avg/p95 delay for all schemes (Fig. 9 shallow, Fig. 10 deep).

    ``topologies`` adds a topology axis to the grid: every (trace, scheme)
    cell is replicated per family spec, and — when more than one family is
    swept — the report rows carry a ``topology`` column.  The default single
    family reproduces the paper's single-bottleneck figures unchanged.  Thin
    shim over the registered ``performance_sweep`` experiment.
    """
    return REGISTRY.run("performance_sweep", {
        "buffer_bdp": buffer_bdp,
        "canopy_kind": canopy_kind,
        "training_steps": training_steps,
        "duration": duration,
        "n_synthetic": n_synthetic,
        "n_cellular": n_cellular,
        "seeds": (seed,),
        "topologies": tuple(topologies),
    }, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Topology-family sweep — multi-bottleneck scenarios (beyond the paper)
# ---------------------------------------------------------------------- #
def _topology_sweep_labels(axes: Dict) -> Dict[str, Optional[str]]:
    scheme_kinds: Dict[str, Optional[str]] = {name: None for name in axes["schemes"]}
    if axes["canopy_kind"]:
        scheme_kinds["canopy"] = axes["canopy_kind"]
    return scheme_kinds


def _topology_sweep_aggregate(grid, axes: Dict, tasks: Sequence) -> Dict:
    n_seeds = max(len(axes["seeds"]), 1)
    rows = []
    for family in axes["families"]:
        for label in _topology_sweep_labels(axes):
            cells = grid.select(topology=family, scheme=label)
            rows.append({
                "topology": family,
                "scheme": label,
                "utilization": float(np.mean([c["utilization"] for c in cells])),
                "avg_delay_ms": float(np.mean([c["avg_queuing_delay_ms"] for c in cells])),
                "p95_delay_ms": float(np.mean([c["p95_queuing_delay_ms"] for c in cells])),
                "loss_rate": float(np.mean([c["loss_rate"] for c in cells])),
                "n_traces": len(cells) // n_seeds,
                "n_cells": len(cells),
            })
    # Derived from the settings the tasks actually ran with, so the reported
    # tick throughput stays in sync with the simulated work; cells served
    # from a resume store did not tick this run, so the throughput only
    # counts the computed fraction (all cells share one duration/dt).
    ticks = sum(int(round(task.settings.duration / task.settings.dt)) for task in tasks)
    computed = grid.n_tasks - grid.n_cached
    ticks_computed = ticks * computed // grid.n_tasks if grid.n_tasks else 0
    return {
        "figure": "topology",
        "families": list(axes["families"]),
        "rows": rows,
        "wall_clock_s": grid.wall_clock_s,
        "n_jobs": grid.n_jobs,
        "ticks": ticks,
        "ticks_per_sec": (ticks_computed / grid.wall_clock_s
                          if grid.wall_clock_s > 0 and computed > 0 else 0.0),
    }


@REGISTRY.register(
    "topology_sweep",
    axes={
        "families": tuple(topology_family_specs()),
        "schemes": ("cubic", "vegas", "bbr"),
        "canopy_kind": None,
        "training_steps": 400,
        "duration": 10.0,
        "n_synthetic": 2,
        "buffer_bdp": 1.0,
        "seeds": (1,),
    },
    aggregate=_topology_sweep_aggregate,
    description="every scheme on every topology family (+ per-family rows and ticks/sec)",
)
def _topology_sweep_build(axes: Dict) -> List[ExperimentTask]:
    scheme_kinds = _topology_sweep_labels(axes)
    traces = trace_subset("synthetic", axes["n_synthetic"])
    tasks = []
    for family in axes["families"]:
        for seed in axes["seeds"]:
            settings = EvaluationSettings(duration=axes["duration"],
                                          buffer_bdp=axes["buffer_bdp"],
                                          topology=family, seed=seed)
            for trace in traces:
                for label, model_kind in scheme_kinds.items():
                    tasks.append(ExperimentTask(
                        scheme=label, trace=trace, settings=settings,
                        model_kind=model_kind, training_steps=axes["training_steps"],
                        model_seed=seed,
                    ))
    return tasks


def topology_sweep(
    families: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = ("cubic", "vegas", "bbr"),
    canopy_kind: Optional[str] = None,
    training_steps: int = 400,
    duration: float = 10.0,
    n_synthetic: int = 2,
    buffer_bdp: float = 1.0,
    seed: int = 1,
    n_jobs: int = 1,
) -> Dict:
    """Every scheme on every topology family (chains, parking lots, dumbbells).

    The paper evaluates a single shared bottleneck; this sweep drives the same
    schemes over the multi-bottleneck family catalog — per-hop buffers,
    parking-lot cross traffic, dumbbell bursts — and reports per-family
    utilization/delay rows plus the simulator tick throughput (grid ticks per
    wall-clock second, recorded in the bench JSON).

    ``canopy_kind`` optionally adds a learned scheme (trained up front so pool
    workers inherit the warm model cache) under the label ``canopy``.  Thin
    shim over the registered ``topology_sweep`` experiment (``python -m repro
    run topology_sweep --set seeds=0..4 --resume`` is the generic front door).
    """
    overrides: Dict[str, object] = {
        "schemes": tuple(schemes),
        "canopy_kind": canopy_kind,
        "training_steps": training_steps,
        "duration": duration,
        "n_synthetic": n_synthetic,
        "buffer_bdp": buffer_bdp,
        "seeds": (seed,),
    }
    if families is not None:
        overrides["families"] = tuple(families)
    return REGISTRY.run("topology_sweep", overrides, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Cross-family generalization — train on topologies, certify everywhere
# ---------------------------------------------------------------------- #
def _generalization_catalogs(families: Sequence[str], include_mixed: bool) -> Dict[str, tuple]:
    """Validate the family axis and derive one training catalog per model."""
    families = list(families)
    if len(families) < 2:
        raise ValueError("topology_generalization needs at least 2 families")
    if len(set(families)) != len(families):
        raise ValueError("topology_generalization families must be unique")
    if MIXED_TRAINING_LABEL in families:
        raise ValueError(f"{MIXED_TRAINING_LABEL!r} is reserved for the mixed model")
    # One catalog per trained model: each family alone, plus the mixed model.
    catalogs: Dict[str, tuple] = {family: (family,) for family in families}
    if include_mixed:
        catalogs[MIXED_TRAINING_LABEL] = tuple(families)
    return catalogs


def _generalization_property_families(axes: Dict) -> List[str]:
    """The property-family product axis, normalized to a list (a plain string
    from the driver shims is one family)."""
    value = axes["property_family"]
    return [value] if isinstance(value, str) else list(value)


def _topology_generalization_aggregate(grid, axes: Dict, tasks: Sequence) -> Dict:
    families = list(axes["families"])
    catalogs = _generalization_catalogs(families, axes["include_mixed"])
    property_families = _generalization_property_families(axes)
    sweep_properties = len(property_families) > 1
    n_seeds = max(len(axes["seeds"]), 1)

    def cells_for(property_family, train_label, eval_family):
        # Grouped through the task list (rows come back in task order) rather
        # than a property_family tag: tags enter the cell fingerprint, so a
        # tag would stop a product-axis run from reusing cells cached by a
        # single-family run of the same store.  The scenario key already
        # carries the family, so store cells never collide.
        return [grid.rows[index] for index, task in enumerate(tasks)
                if task.property_family == property_family
                and task.tags["train_family"] == train_label
                and task.tags["eval_family"] == eval_family]

    rows = []
    for property_family in property_families:
        for train_label in catalogs:
            for eval_family in families:
                cells = cells_for(property_family, train_label, eval_family)
                row = {
                    "train_family": train_label,
                    "eval_family": eval_family,
                    "qcsat": float(np.mean([c["qcsat"] for c in cells])),
                    "qcsat_std": float(np.std([c["qcsat"] for c in cells])),
                    "utilization": float(np.mean([c["utilization"] for c in cells])),
                    "avg_delay_ms": float(np.mean([c["avg_queuing_delay_ms"] for c in cells])),
                    "p95_delay_ms": float(np.mean([c["p95_queuing_delay_ms"] for c in cells])),
                    "loss_rate": float(np.mean([c["loss_rate"] for c in cells])),
                    "n_traces": len(cells) // n_seeds,
                    "n_cells": len(cells),
                }
                if sweep_properties:
                    row = {"property_family": property_family, **row}
                rows.append(row)
    certificates = int(sum(cell["n_certificates"] for cell in grid.rows))
    # Cells served from a resume store did not certify anything this run, and
    # per-cell certificate counts vary, so no throughput is claimed unless
    # every cell was computed live.
    live = grid.wall_clock_s > 0 and grid.n_cached == 0
    return {
        "figure": "topology_generalization",
        "families": families,
        "train_families": list(catalogs),
        "model_kind": axes["model_kind"],
        # Backward shape: a single family reports as the plain string it
        # always did; a swept product axis reports the list.
        "property_family": (property_families[0] if not sweep_properties
                            else property_families),
        "rows": rows,
        "wall_clock_s": grid.wall_clock_s,
        "n_jobs": grid.n_jobs,
        "certificates": certificates,
        "certificates_per_sec": certificates / grid.wall_clock_s if live else 0.0,
    }


@REGISTRY.register(
    "topology_generalization",
    axes={
        "families": GENERALIZATION_FAMILIES,
        "model_kind": "canopy-shallow",
        # A sequence axis: --set property_family=shallow,deep certifies both
        # families within one grid (and one resumable store).
        "property_family": ("shallow",),
        "include_mixed": True,
        "training_steps": 300,
        "duration": 8.0,
        "n_components": 10,
        "trace": ("synthetic",),
        "n_traces": 2,
        "buffer_bdp": 1.0,
        "seeds": (1,),
    },
    aggregate=_topology_generalization_aggregate,
    description="(train-family x eval-family) certified-safety + performance grid",
)
def _topology_generalization_build(axes: Dict) -> List[ExperimentTask]:
    families = list(axes["families"])
    catalogs = _generalization_catalogs(families, axes["include_mixed"])
    property_families = _generalization_property_families(axes)
    tasks = []
    for property_family in property_families:
        for train_label, catalog in catalogs.items():
            for eval_family in families:
                for seed in axes["seeds"]:
                    settings = EvaluationSettings(duration=axes["duration"],
                                                  buffer_bdp=axes["buffer_bdp"],
                                                  topology=eval_family, seed=seed)
                    for trace_kind in axes["trace"]:
                        for trace in trace_subset(trace_kind, axes["n_traces"]):
                            # Tags stay exactly the pre-product pair: the
                            # property family lives in the scenario key (and
                            # task.property_family, which the aggregator
                            # groups on), so single-family rows — and their
                            # cached store cells — are byte-identical whether
                            # or not the product axis sweeps.
                            tasks.append(ExperimentTask(
                                scheme="canopy", trace=trace, settings=settings,
                                model_kind=axes["model_kind"],
                                training_steps=axes["training_steps"], model_seed=seed,
                                model_topologies=catalog,
                                certify=True, property_family=property_family,
                                n_components=axes["n_components"],
                                tags={"train_family": train_label,
                                      "eval_family": eval_family},
                            ))
    return tasks


def topology_generalization(
    families: Optional[Sequence[str]] = None,
    model_kind: str = "canopy-shallow",
    property_family: str = "shallow",
    include_mixed: bool = True,
    training_steps: int = 300,
    duration: float = 8.0,
    n_components: int = 10,
    n_synthetic: int = 2,
    buffer_bdp: float = 1.0,
    seed: int = 1,
    n_jobs: int = 1,
) -> Dict:
    """The (train-family × eval-family) certified-safety + performance grid.

    One model is trained per topology family (its training episodes sample
    that family only) plus, with ``include_mixed``, one domain-randomized
    ``mixed`` model whose episodes sample uniformly across *all* families.
    Every model is then evaluated — with ``certify=True`` — on every family,
    so each grid row carries both QC_sat (certified safety) and the empirical
    utilization/delay/loss of the same run.  Cells shard through
    :class:`ParallelRunner`; serial and parallel runs produce identical rows.

    Thin shim over the registered ``topology_generalization`` experiment:
    the generic front door scales the grid with no code change, e.g.
    ``python -m repro run topology_generalization --set seeds=0..2 --set
    trace=cellular --jobs 4``.
    """
    overrides: Dict[str, object] = {
        "model_kind": model_kind,
        "property_family": property_family,
        "include_mixed": include_mixed,
        "training_steps": training_steps,
        "duration": duration,
        "n_components": n_components,
        "n_traces": n_synthetic,
        "buffer_bdp": buffer_bdp,
        "seeds": (seed,),
    }
    if families is not None:
        overrides["families"] = tuple(families)
    return REGISTRY.run("topology_generalization", overrides, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Workload stress — scheme x topology-family x workload certified grid
# ---------------------------------------------------------------------- #
def _workload_stress_aggregate(grid, axes: Dict, tasks: Sequence) -> Dict:
    n_seeds = max(len(axes["seeds"]), 1)
    rows = []
    for scheme in axes["schemes"]:
        for family in axes["topology"]:
            for workload in axes["workload"]:
                cells = grid.select(scheme=scheme, topology=canonical_topology(family),
                                    workload=canonical_workload(workload))
                row = {
                    "scheme": scheme,
                    "topology": canonical_topology(family),
                    "workload": canonical_workload(workload),
                    "utilization": float(np.mean([c["utilization"] for c in cells])),
                    "avg_delay_ms": float(np.mean([c["avg_queuing_delay_ms"] for c in cells])),
                    "p95_delay_ms": float(np.mean([c["p95_queuing_delay_ms"] for c in cells])),
                    "loss_rate": float(np.mean([c["loss_rate"] for c in cells])),
                    "n_traces": len(cells) // n_seeds,
                    "n_cells": len(cells),
                }
                if all("qcsat" in c for c in cells):
                    row["qcsat"] = float(np.mean([c["qcsat"] for c in cells]))
                    row["qcsat_std"] = float(np.std([c["qcsat"] for c in cells]))
                rows.append(row)
    certificates = int(sum(cell.get("n_certificates", 0) for cell in grid.rows))
    live = grid.wall_clock_s > 0 and grid.n_cached == 0
    return {
        "figure": "workload_stress",
        "schemes": list(axes["schemes"]),
        "topologies": [canonical_topology(f) for f in axes["topology"]],
        "workloads": [canonical_workload(w) for w in axes["workload"]],
        "property_family": axes["property_family"],
        "rows": rows,
        "wall_clock_s": grid.wall_clock_s,
        "n_jobs": grid.n_jobs,
        "certificates": certificates,
        "certificates_per_sec": certificates / grid.wall_clock_s if live else 0.0,
    }


@REGISTRY.register(
    "workload_stress",
    axes={
        "schemes": ("canopy-shallow",),
        "topology": ("single_bottleneck", "fan_in(3)", "shared_segment"),
        "workload": ("static", "responsive(cubic)", "poisson(0.25)"),
        "property_family": "shallow",
        "training_steps": 200,
        "duration": 6.0,
        "n_components": 8,
        "n_traces": 1,
        "buffer_bdp": 1.0,
        "seeds": (1,),
        # "off" keeps every pre-telemetry cell key (and the committed golden
        # store) intact; --set telemetry=on(10) turns on event tracing.
        "telemetry": "off",
    },
    aggregate=_workload_stress_aggregate,
    description="scheme x topology-family x workload certified stress grid "
                "(incast, responsive contention, churn)",
)
def _workload_stress_build(axes: Dict) -> List[ExperimentTask]:
    traces = trace_subset("synthetic", axes["n_traces"])
    tasks = []
    for scheme in axes["schemes"]:
        model_kind = default_model_kind(scheme)
        for family in axes["topology"]:
            for workload in axes["workload"]:
                for seed in axes["seeds"]:
                    # Canonicalized up front so the report rows, the aggregate
                    # selectors, and the scenario keys all carry one spelling.
                    settings = EvaluationSettings(
                        duration=axes["duration"], buffer_bdp=axes["buffer_bdp"],
                        topology=canonical_topology(family),
                        workload=canonical_workload(workload),
                        telemetry=canonical_telemetry(axes["telemetry"]), seed=seed)
                    for trace in traces:
                        tasks.append(ExperimentTask(
                            scheme=scheme, trace=trace, settings=settings,
                            model_kind=model_kind,
                            training_steps=axes["training_steps"], model_seed=seed,
                            # Classical schemes stress-test uncertified; every
                            # learned cell carries its QC_sat certificates.
                            certify=model_kind is not None,
                            property_family=(axes["property_family"]
                                             if model_kind is not None else None),
                            n_components=axes["n_components"],
                            tags={"workload": canonical_workload(workload)},
                        ))
    return tasks


def workload_stress(
    schemes: Sequence[str] = ("canopy-shallow",),
    topologies: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    property_family: str = "shallow",
    training_steps: int = 200,
    duration: float = 6.0,
    n_components: int = 8,
    n_traces: int = 1,
    buffer_bdp: float = 1.0,
    seed: int = 1,
    n_jobs: int = 1,
    telemetry: str = "off",
) -> Dict:
    """The (scheme × topology family × workload) certified stress grid.

    Opens the scenario classes the paper cannot express: incast storms
    (``fan_in(n)`` + a responsive workload bringing several flows up at
    once), certified safety *under churn* (``poisson(λ)`` arrivals and
    departures mid-run), and learned-vs-classical contention on shared
    segments.  Learned schemes run with ``certify=True``, so every cell
    carries QC_sat next to the empirical utilization/delay/loss of the same
    contended run.  Thin shim over the registered ``workload_stress``
    experiment — ``python -m repro run workload_stress --set
    workload=poisson(0.1) --set topology=fan_in(3) --jobs 2 --resume`` is the
    generic front door.
    """
    overrides: Dict[str, object] = {
        "schemes": tuple(schemes),
        "property_family": property_family,
        "training_steps": training_steps,
        "duration": duration,
        "n_components": n_components,
        "n_traces": n_traces,
        "buffer_bdp": buffer_bdp,
        "seeds": (seed,),
    }
    if topologies is not None:
        overrides["topology"] = tuple(topologies)
    if workloads is not None:
        overrides["workload"] = tuple(workloads)
    return REGISTRY.run("workload_stress", overrides, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Figure 11 — robustness to observation noise
# ---------------------------------------------------------------------- #
def noise_sensitivity(
    training_steps: int = 400,
    duration: float = 12.0,
    noise: float = 0.05,
    n_traces: int = 3,
    seed: int = 1,
) -> Dict:
    """Percentage change of metrics when ±5% delay noise is added (Fig. 11)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy = get_trained_model("canopy-robust", training_steps=training_steps, seed=seed)
    traces = _trace_subset("synthetic", n_traces)
    rows = []
    for scheme_label, model in (("orca", orca), ("canopy", canopy)):
        changes = {"utilization": [], "avg_delay": [], "p95_delay": []}
        for trace in traces:
            base_settings = EvaluationSettings(duration=duration, buffer_bdp=2.0, seed=seed)
            noisy_settings = EvaluationSettings(duration=duration, buffer_bdp=2.0,
                                                observation_noise=noise, seed=seed)
            base = run_scheme_on_trace(scheme_factory(scheme_label, model=model, seed=seed),
                                       trace, base_settings, scheme_name=scheme_label).summary
            noisy = run_scheme_on_trace(
                scheme_factory(scheme_label, model=model, observation_noise=noise, seed=seed),
                trace, noisy_settings, scheme_name=scheme_label).summary

            def pct(new: float, old: float) -> float:
                return 100.0 * (new - old) / old if old > 0 else 0.0

            changes["utilization"].append(pct(noisy.utilization, base.utilization))
            changes["avg_delay"].append(pct(noisy.avg_queuing_delay_ms, base.avg_queuing_delay_ms))
            changes["p95_delay"].append(pct(noisy.p95_queuing_delay_ms, base.p95_queuing_delay_ms))
        rows.append({
            "scheme": scheme_label,
            "utilization_change_pct": float(np.mean(changes["utilization"])),
            "avg_delay_change_pct": float(np.mean(changes["avg_delay"])),
            "p95_delay_change_pct": float(np.mean(changes["p95_delay"])),
            "max_abs_utilization_change_pct": float(np.max(np.abs(changes["utilization"]))),
        })
    return {"figure": "11", "noise": noise, "rows": rows}


# ---------------------------------------------------------------------- #
# Figure 12 — wide-area ("real world") deployment
# ---------------------------------------------------------------------- #
#: The fixed scheme → model-kind map of the Fig. 12 deployment grid.
_REALWORLD_SCHEME_KINDS: Dict[str, Optional[str]] = {
    "canopy-shallow": "canopy-shallow",
    "canopy-deep": "canopy-deep",
    "orca": "orca",
    "cubic": None,
}


def _realworld_categories(axes: Dict) -> Dict[str, list]:
    return {
        "intra": intracontinental_profiles()[: axes["profiles_per_category"]],
        "inter": intercontinental_profiles()[: axes["profiles_per_category"]],
    }


def _realworld_deployment_aggregate(grid, axes: Dict, tasks: Sequence) -> Dict:
    rows = []
    for category, profiles in _realworld_categories(axes).items():
        normalized: Dict[str, Dict[str, List[float]]] = {
            name: {"throughput": [], "delay": []} for name in _REALWORLD_SCHEME_KINDS
        }
        for profile in profiles:
            cells = {cell["scheme"]: cell
                     for cell in grid.select(category=category, path=profile.region)}
            max_throughput = max(c["throughput_mbps"] for c in cells.values()) or 1.0
            min_delay = min(c["avg_rtt_ms"] for c in cells.values()) or 1.0
            for name, cell in cells.items():
                normalized[name]["throughput"].append(cell["throughput_mbps"] / max_throughput)
                normalized[name]["delay"].append(cell["avg_rtt_ms"] / max(min_delay, 1e-6))
        for name, values in normalized.items():
            rows.append({
                "category": category,
                "scheme": name,
                "normalized_throughput": float(np.mean(values["throughput"])),
                "normalized_delay": float(np.mean(values["delay"])),
                "n_paths": len(values["throughput"]),
            })
    return {"figure": "12", "rows": rows,
            "wall_clock_s": grid.wall_clock_s, "n_jobs": grid.n_jobs}


@REGISTRY.register(
    "realworld_deployment",
    axes={
        "training_steps": 400,
        "duration": 12.0,
        "profiles_per_category": 2,
        "seeds": (1,),
    },
    aggregate=_realworld_deployment_aggregate,
    description="normalized throughput/delay over emulated WAN paths (Fig. 12)",
)
def _realworld_deployment_build(axes: Dict) -> List[ExperimentTask]:
    tasks = []
    for category, profiles in _realworld_categories(axes).items():
        for profile in profiles:
            trace = profile.make_trace(duration=axes["duration"])
            for seed in axes["seeds"]:
                settings = EvaluationSettings(
                    duration=axes["duration"], min_rtt=profile.min_rtt_s,
                    buffer_bdp=profile.buffer_bdp,
                    random_loss_rate=profile.loss_rate, seed=seed,
                )
                for label, model_kind in _REALWORLD_SCHEME_KINDS.items():
                    tasks.append(ExperimentTask(
                        scheme=label, trace=trace, settings=settings,
                        model_kind=model_kind, training_steps=axes["training_steps"],
                        model_seed=seed,
                        tags={"category": category, "path": profile.region},
                    ))
    return tasks


def realworld_deployment(
    training_steps: int = 400,
    duration: float = 12.0,
    profiles_per_category: int = 2,
    seed: int = 1,
    n_jobs: int = 1,
) -> Dict:
    """Normalized throughput/delay over emulated WAN paths (Fig. 12).

    Every (scheme, path) cell runs independently on the pool; the per-path
    normalization (best throughput / lowest delay across schemes) happens at
    merge time on the collected rows.  Thin shim over the registered
    ``realworld_deployment`` experiment.
    """
    return REGISTRY.run("realworld_deployment", {
        "training_steps": training_steps,
        "duration": duration,
        "profiles_per_category": profiles_per_category,
        "seeds": (seed,),
    }, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Figure 13 — runtime fallback guided by QC_sat
# ---------------------------------------------------------------------- #
#: The (buffer family, buffer depth, canopy model) cases of the fallback grid.
_FALLBACK_CASES = (("shallow", 1.0, "canopy-shallow"), ("deep", 5.0, "canopy-deep"))


def _fallback_runtime_aggregate(grid, axes: Dict, tasks: Sequence) -> Dict:
    rows = []
    for family, _buffer_bdp, _canopy_kind in _FALLBACK_CASES:
        for scheme_label in ("orca", "canopy"):
            for threshold in axes["thresholds"]:
                cells = grid.select(buffer_family=family, scheme=scheme_label,
                                    threshold=threshold)
                rows.append({
                    "buffer_family": family,
                    "scheme": scheme_label,
                    "threshold": threshold,
                    "utilization": float(np.mean([c["utilization"] for c in cells])),
                    "avg_delay_ms": float(np.mean([c["avg_queuing_delay_ms"] for c in cells])),
                    "p95_delay_ms": float(np.mean([c["p95_queuing_delay_ms"] for c in cells])),
                    "fallback_fraction": float(np.mean([c["fallback_fraction"] for c in cells])),
                })
    return {"figure": "13", "rows": rows,
            "wall_clock_s": grid.wall_clock_s, "n_jobs": grid.n_jobs}


@REGISTRY.register(
    "fallback_runtime",
    axes={
        "training_steps": 400,
        "duration": 12.0,
        "thresholds": (0.0, 0.5, 0.8),
        "n_components": 10,
        "n_traces": 2,
        "seeds": (1,),
        # "off" keeps every pre-telemetry cell key intact; --set telemetry=on
        # records the qc_decision / fallback_enter / fallback_exit stream the
        # `python -m repro trace` fallback timeline renders.
        "telemetry": "off",
    },
    aggregate=_fallback_runtime_aggregate,
    description="QC_sat-guided runtime fallback grid (Fig. 13)",
)
def _fallback_runtime_build(axes: Dict) -> List[ExperimentTask]:
    traces = trace_subset("synthetic", axes["n_traces"])
    tasks = []
    for family, buffer_bdp, canopy_kind in _FALLBACK_CASES:
        for seed in axes["seeds"]:
            settings = EvaluationSettings(duration=axes["duration"],
                                          buffer_bdp=buffer_bdp, seed=seed,
                                          telemetry=canonical_telemetry(axes["telemetry"]))
            for scheme_label, model_kind in (("orca", "orca"), ("canopy", canopy_kind)):
                for threshold in axes["thresholds"]:
                    for trace in traces:
                        tasks.append(ExperimentTask(
                            scheme=scheme_label, trace=trace, settings=settings,
                            model_kind=model_kind, training_steps=axes["training_steps"],
                            model_seed=seed,
                            monitor_threshold=threshold, monitor_family=family,
                            monitor_components=axes["n_components"],
                            tags={"buffer_family": family, "threshold": threshold},
                        ))
    return tasks


def fallback_runtime(
    training_steps: int = 400,
    duration: float = 12.0,
    thresholds: Sequence[float] = (0.0, 0.5, 0.8),
    n_components: int = 10,
    n_traces: int = 2,
    seed: int = 1,
    n_jobs: int = 1,
) -> Dict:
    """Performance of Orca and Canopy with the QC_sat-guided fallback (Fig. 13).

    Every (family, scheme, threshold, trace) cell carries a *declarative*
    monitor spec — the worker rebuilds the ``QCRuntimeMonitor`` (verifier
    closure and all) from the model zoo — so the grid shards through
    :class:`ParallelRunner` like any other.  Thin shim over the registered
    ``fallback_runtime`` experiment.
    """
    return REGISTRY.run("fallback_runtime", {
        "training_steps": training_steps,
        "duration": duration,
        "thresholds": tuple(thresholds),
        "n_components": n_components,
        "n_traces": n_traces,
        "seeds": (seed,),
    }, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Figures 14 & 15 — TCP friendliness and fairness convergence (multi-flow)
# ---------------------------------------------------------------------- #
#: The (buffer family, scheme label, model kind, buffer depth) cases of Fig. 14.
_FRIENDLINESS_CASES = (
    ("shallow", "canopy", "canopy-shallow", 1.0),
    ("shallow", "orca", "orca", 1.0),
    ("shallow", "cubic", None, 1.0),
    ("deep", "canopy", "canopy-deep", 5.0),
    ("deep", "orca", "orca", 5.0),
    ("deep", "cubic", None, 5.0),
)


@REGISTRY.register(
    "friendliness",
    axes={
        "flows": (1, 2, 4),
        "rtts_ms": (20.0, 50.0, 100.0),
        "training_steps": 400,
        "duration": 15.0,
        "seed": 1,
    },
    runner=run_multiflow_task,
    description="throughput ratio vs competing CUBIC flows and RTTs (Fig. 14)",
)
def _friendliness_build(axes: Dict) -> List[MultiFlowTask]:
    tasks = []
    for family, scheme, model_kind, buffer_bdp in _FRIENDLINESS_CASES:
        for n_cubic in axes["flows"]:
            tasks.append(MultiFlowTask(
                mode="friendliness", scheme=scheme, value=n_cubic,
                model_kind=model_kind, training_steps=axes["training_steps"],
                model_seed=axes["seed"], buffer_bdp=buffer_bdp,
                duration=axes["duration"], tags={"buffer_family": family}))
    for family, scheme, model_kind, buffer_bdp in _FRIENDLINESS_CASES:
        if family != "shallow":
            continue
        for rtt_ms in axes["rtts_ms"]:
            tasks.append(MultiFlowTask(
                mode="rtt_friendliness", scheme=scheme, value=rtt_ms,
                model_kind=model_kind, training_steps=axes["training_steps"],
                model_seed=axes["seed"], buffer_bdp=buffer_bdp,
                duration=axes["duration"], tags={"buffer_family": family}))
    return tasks


def friendliness_grid(
    flows: Sequence[int] = (1, 2, 4),
    rtts_ms: Sequence[float] = (20.0, 50.0, 100.0),
    training_steps: int = 400,
    duration: float = 15.0,
    seed: int = 1,
    n_jobs: int = 1,
) -> Dict:
    """TCP friendliness against competing CUBIC flows and across RTTs (Fig. 14).

    Thin shim over the registered ``friendliness`` experiment: every sweep
    point is a declarative :class:`~repro.harness.fairness.MultiFlowTask`, so
    the grid shards, persists, and resumes like any other.
    """
    return REGISTRY.run("friendliness", {
        "flows": tuple(flows),
        "rtts_ms": tuple(rtts_ms),
        "training_steps": training_steps,
        "duration": duration,
        "seed": seed,
    }, n_jobs=n_jobs)


@REGISTRY.register(
    "fairness",
    axes={
        "schemes": ("cubic", "orca", "canopy-shallow", "canopy-deep"),
        "n_flows": 3,
        "join_interval": 12.0,
        "bandwidth_mbps": 48.0,
        "min_rtt": 0.02,
        "buffer_bdp": 1.0,
        "training_steps": 400,
        "seed": 1,
    },
    runner=run_multiflow_task,
    description="fairness convergence of homogeneous flows joining over time (Fig. 15)",
)
def _fairness_build(axes: Dict) -> List[MultiFlowTask]:
    return [
        MultiFlowTask(
            mode="fairness_convergence", scheme=scheme, value=axes["n_flows"],
            model_kind=default_model_kind(scheme), training_steps=axes["training_steps"],
            model_seed=axes["seed"], join_interval=axes["join_interval"],
            bandwidth_mbps=axes["bandwidth_mbps"], min_rtt=axes["min_rtt"],
            buffer_bdp=axes["buffer_bdp"])
        for scheme in axes["schemes"]
    ]


def fairness_grid(
    schemes: Sequence[str] = ("cubic", "orca", "canopy-shallow", "canopy-deep"),
    n_flows: int = 3,
    join_interval: float = 12.0,
    training_steps: int = 400,
    seed: int = 1,
    n_jobs: int = 1,
) -> Dict:
    """Fairness convergence of homogeneous flows joining over time (Fig. 15).

    Thin shim over the registered ``fairness`` experiment.
    """
    return REGISTRY.run("fairness", {
        "schemes": tuple(schemes),
        "n_flows": n_flows,
        "join_interval": join_interval,
        "training_steps": training_steps,
        "seed": seed,
    }, n_jobs=n_jobs)


# ---------------------------------------------------------------------- #
# Figure 16 — sensitivity to N and λ
# ---------------------------------------------------------------------- #
def sensitivity(
    n_values: Sequence[int] = (1, 5, 10),
    lambda_values: Sequence[float] = (0.25, 0.5, 0.75),
    training_steps: int = 300,
    duration: float = 10.0,
    n_traces: int = 2,
    seed: int = 1,
) -> Dict:
    """Performance of Canopy-shallow for different N and λ (Fig. 16)."""
    traces = _trace_subset("synthetic", n_traces)
    settings = EvaluationSettings(duration=duration, buffer_bdp=1.0, seed=seed)
    rows = []

    configurations = [("N", n, 0.25) for n in n_values] + [("lambda", 5, lam) for lam in lambda_values]
    seen = set()
    for axis, n_components, lam in configurations:
        key = (n_components, lam)
        if key in seen:
            continue
        seen.add(key)
        model = get_trained_model("canopy-shallow", training_steps=training_steps, seed=seed,
                                  lam=lam, n_components=n_components)
        summaries = []
        for trace in traces:
            result = run_scheme_on_trace(scheme_factory("canopy", model=model, seed=seed),
                                         trace, settings, scheme_name="canopy")
            summaries.append(result.summary.as_dict())
        rows.append({
            "label": f"N{n_components}-lam{lam:g}",
            "n_components": n_components,
            "lambda": lam,
            "utilization": float(np.mean([s["utilization"] for s in summaries])),
            "avg_delay_ms": float(np.mean([s["avg_queuing_delay_ms"] for s in summaries])),
            "p95_delay_ms": float(np.mean([s["p95_queuing_delay_ms"] for s in summaries])),
        })
    return {"figure": "16", "rows": rows}


# ---------------------------------------------------------------------- #
# Figure 17 — training curves (appendix A.1)
# ---------------------------------------------------------------------- #
def training_curves(training_steps: int = 400, seed: int = 1) -> Dict:
    """Raw / verifier / total reward over training for Orca and Canopy (Fig. 17)."""
    canopy = get_trained_model("canopy-shallow", training_steps=training_steps, seed=seed)
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    curves = {
        "canopy": {k: v.tolist() for k, v in canopy.training.reward_curves().items()},
        "orca": {k: v.tolist() for k, v in orca.training.reward_curves().items()},
    }
    return {
        "figure": "17",
        "curves": curves,
        "final": {
            "canopy": canopy.training.final_metrics(),
            "orca": orca.training.final_metrics(),
        },
    }


# ---------------------------------------------------------------------- #
# Table 4 — training overhead of verification (appendix A.2)
# ---------------------------------------------------------------------- #
def verification_overhead(
    n_values: Sequence[int] = (1, 5, 10),
    training_steps: int = 150,
    seed: int = 1,
) -> Dict:
    """Environment-step rate with and without in-loop verification (Table 4)."""
    rows = []

    orca_config = CanopyConfig.orca_baseline(seed=seed)
    orca_trainer = CanopyTrainer(orca_config, TrainerConfig(
        total_steps=training_steps, log_every=training_steps,
        use_verifier_reward=False, verifier_every=10 ** 9,
    ))
    orca_result = orca_trainer.train()
    rows.append({"scheme": "orca", "n_components": 0, "steps_per_second": orca_result.steps_per_second,
                 "verifier_seconds": orca_result.verifier_seconds})

    for n in n_values:
        config = CanopyConfig.shallow(n_components=n, seed=seed)
        trainer = CanopyTrainer(config, TrainerConfig(total_steps=training_steps, log_every=training_steps))
        result = trainer.train()
        rows.append({"scheme": f"canopy-N{n}", "n_components": n,
                     "steps_per_second": result.steps_per_second,
                     "verifier_seconds": result.verifier_seconds})
    return {"table": "4", "rows": rows}
