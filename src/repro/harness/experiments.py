"""Experiment drivers — one function per figure/table of the evaluation.

Every driver accepts scale knobs (training steps, run duration, number of
traces, number of QC components) so the same code can run at CI scale inside
the benchmark suite or at larger scale from the example scripts.  Each driver
returns plain dictionaries / lists so the reporting module (and the
benchmarks) can render them as the rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.monitor import QCRuntimeMonitor
from repro.core.properties import (
    PropertySet,
    deep_buffer_properties,
    robustness_properties,
    shallow_buffer_properties,
)
from repro.core.trainer import CanopyTrainer, TrainerConfig
from repro.core.config import CanopyConfig
from repro.harness.evaluate import (
    EvaluationSettings,
    certificates_for_decisions,
    evaluate_qcsat,
    run_scheme_on_trace,
    scheme_factory,
)
from repro.harness.models import TrainedModel, get_trained_model
from repro.traces.cellular import cellular_trace_suite
from repro.traces.realworld import WANProfile, intercontinental_profiles, intracontinental_profiles
from repro.traces.synthetic import make_synthetic_trace, synthetic_trace_suite
from repro.traces.trace import BandwidthTrace

__all__ = [
    "motivation_noise",
    "motivation_bad_state",
    "qcsat_buffers",
    "certified_components",
    "qcsat_robustness",
    "performance_sweep",
    "noise_sensitivity",
    "realworld_deployment",
    "fallback_runtime",
    "sensitivity",
    "training_curves",
    "verification_overhead",
]


def _trace_subset(kind: str, count: int) -> List[BandwidthTrace]:
    if kind == "synthetic":
        return synthetic_trace_suite(subset=count)
    if kind == "cellular":
        return cellular_trace_suite()[:count]
    raise ValueError(f"unknown trace kind {kind!r}")


# ---------------------------------------------------------------------- #
# Figure 1 — Orca vs Canopy under observation noise (motivation)
# ---------------------------------------------------------------------- #
def motivation_noise(
    training_steps: int = 400,
    duration: float = 12.0,
    noise: float = 0.05,
    seed: int = 1,
) -> Dict:
    """Sending rate of Orca and Canopy with and without ±5% delay noise (Fig. 1)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy = get_trained_model("canopy-robust", training_steps=training_steps, seed=seed)
    trace = make_synthetic_trace("step-12-48")
    settings_clean = EvaluationSettings(duration=duration, buffer_bdp=2.0, observation_noise=0.0, seed=seed)
    settings_noisy = EvaluationSettings(duration=duration, buffer_bdp=2.0, observation_noise=noise, seed=seed)

    rows = []
    series = {}
    for label, model, settings in (
        ("orca", orca, settings_clean),
        ("orca-noise", orca, settings_noisy),
        ("canopy", canopy, settings_clean),
        ("canopy-noise", canopy, settings_noisy),
    ):
        result = run_scheme_on_trace(
            scheme_factory(label, model=model, observation_noise=settings.observation_noise, seed=seed),
            trace, settings, scheme_name=label,
        )
        stats = result.simulation.stats_for(0)
        series[label] = {
            "time": stats.times.tolist(),
            "throughput_pps": (stats.acked / result.simulation.dt).tolist(),
            "cwnd": stats.cwnd.tolist(),
        }
        rows.append({"scheme": label, **result.summary.as_dict()})

    def _util(name: str) -> float:
        return next(r["utilization"] for r in rows if r["scheme"] == name)

    return {
        "figure": "1",
        "trace": trace.name,
        "rows": rows,
        "series": series,
        "orca_noise_drop": _util("orca") - _util("orca-noise"),
        "canopy_noise_drop": _util("canopy") - _util("canopy-noise"),
    }


# ---------------------------------------------------------------------- #
# Figure 2 — Orca entering bad states on a high-BDP path (motivation)
# ---------------------------------------------------------------------- #
def motivation_bad_state(
    training_steps: int = 400,
    duration: float = 15.0,
    seed: int = 1,
) -> Dict:
    """Orca vs Canopy (deep-buffer model) on a high-BDP trace (Fig. 2)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy = get_trained_model("canopy-deep", training_steps=training_steps, seed=seed)
    trace = make_synthetic_trace("square-48-96")
    settings = EvaluationSettings(duration=duration, buffer_bdp=5.0, min_rtt=0.08, seed=seed)

    rows = []
    series = {}
    for label, model in (("orca", orca), ("canopy", canopy)):
        result = run_scheme_on_trace(
            scheme_factory(label, model=model, seed=seed), trace, settings, scheme_name=label
        )
        stats = result.simulation.stats_for(0)
        decisions = result.decisions
        series[label] = {
            "time": stats.times.tolist(),
            "throughput_pps": (stats.acked / result.simulation.dt).tolist(),
            "cwnd": stats.cwnd.tolist(),
            "decision_time": [d.time for d in decisions],
            "cwnd_tcp": [d.cwnd_tcp for d in decisions],
            "cwnd_enforced": [d.cwnd_after for d in decisions],
        }
        rows.append({"scheme": label, **result.summary.as_dict()})
    return {"figure": "2", "trace": trace.name, "rows": rows, "series": series}


# ---------------------------------------------------------------------- #
# Figure 5 — QC_sat for the shallow/deep buffer properties
# ---------------------------------------------------------------------- #
def qcsat_buffers(
    training_steps: int = 400,
    duration: float = 10.0,
    n_components: int = 50,
    n_synthetic: int = 3,
    n_cellular: int = 2,
    seed: int = 1,
) -> Dict:
    """Mean/std of QC_sat for Canopy vs Orca, shallow & deep properties (Fig. 5)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy_shallow = get_trained_model("canopy-shallow", training_steps=training_steps, seed=seed)
    canopy_deep = get_trained_model("canopy-deep", training_steps=training_steps, seed=seed)

    cases = [
        ("shallow", shallow_buffer_properties(), 0.5, canopy_shallow),
        ("deep", deep_buffer_properties(), 5.0, canopy_deep),
    ]
    rows = []
    for family, properties, buffer_bdp, canopy_model in cases:
        for trace_kind, count in (("synthetic", n_synthetic), ("cellular", n_cellular)):
            traces = _trace_subset(trace_kind, count)
            settings = EvaluationSettings(duration=duration, buffer_bdp=buffer_bdp, seed=seed)
            for scheme_label, model in (("canopy", canopy_model), ("orca", orca)):
                values = []
                for trace in traces:
                    qcsat = evaluate_qcsat(model, trace, settings, properties=properties,
                                           n_components=n_components, scheme_name=scheme_label)
                    values.append(qcsat.mean)
                rows.append({
                    "property_family": family,
                    "trace_kind": trace_kind,
                    "scheme": scheme_label,
                    "qcsat_mean": float(np.mean(values)),
                    "qcsat_std": float(np.std(values)),
                    "n_traces": len(traces),
                })
    return {"figure": "5", "rows": rows}


# ---------------------------------------------------------------------- #
# Figures 6 & 8 — certified-component distributions
# ---------------------------------------------------------------------- #
def certified_components(
    model_kind: str = "canopy-shallow",
    property_family: str = "shallow",
    trace_name: str = "step-12-48",
    training_steps: int = 400,
    duration: float = 10.0,
    n_components: int = 50,
    max_steps: int = 50,
    buffer_bdp: float = 0.5,
    seed: int = 1,
) -> Dict:
    """Per-component output bounds over the first ``max_steps`` decisions (Figs. 6/8)."""
    families = {
        "shallow": shallow_buffer_properties(),
        "deep": deep_buffer_properties(),
        "robustness": robustness_properties(),
    }
    properties = families[property_family]
    model = get_trained_model(model_kind, training_steps=training_steps, seed=seed)
    trace = make_synthetic_trace(trace_name)
    settings = EvaluationSettings(duration=duration, buffer_bdp=buffer_bdp, seed=seed)

    run = run_scheme_on_trace(scheme_factory(model_kind, model=model, seed=seed), trace, settings,
                              scheme_name=model_kind)
    verifier = model.make_verifier(n_components=n_components)
    certificates = certificates_for_decisions(verifier, properties, run.decisions[:max_steps],
                                              n_components=n_components)

    steps = []
    for step_index, per_property in enumerate(certificates):
        for name, certificate in per_property.items():
            steps.append({
                "step": step_index,
                "property": name,
                "applicable": certificate.applicable,
                "feedback": certificate.feedback,
                "satisfied_fraction": certificate.satisfied_fraction,
                "output_bounds": certificate.output_bounds().tolist(),
            })
    mean_feedback = float(np.mean([s["feedback"] for s in steps])) if steps else 1.0
    return {
        "figure": "6/8",
        "model": model_kind,
        "trace": trace.name,
        "steps": steps,
        "mean_feedback": mean_feedback,
    }


# ---------------------------------------------------------------------- #
# Figure 7 — QC_sat for the robustness property
# ---------------------------------------------------------------------- #
def qcsat_robustness(
    training_steps: int = 400,
    duration: float = 10.0,
    n_components: int = 50,
    n_synthetic: int = 3,
    n_cellular: int = 2,
    noise: float = 0.05,
    seed: int = 1,
) -> Dict:
    """QC_sat of Canopy-robust vs Orca for P5 on 2 BDP buffers (Fig. 7)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy = get_trained_model("canopy-robust", training_steps=training_steps, seed=seed)
    properties = robustness_properties()
    rows = []
    for trace_kind, count in (("synthetic", n_synthetic), ("cellular", n_cellular)):
        traces = _trace_subset(trace_kind, count)
        settings = EvaluationSettings(duration=duration, buffer_bdp=2.0, observation_noise=noise, seed=seed)
        for scheme_label, model in (("canopy", canopy), ("orca", orca)):
            values = []
            for trace in traces:
                qcsat = evaluate_qcsat(model, trace, settings, properties=properties,
                                       n_components=n_components, scheme_name=scheme_label)
                values.append(qcsat.mean)
            rows.append({
                "trace_kind": trace_kind,
                "scheme": scheme_label,
                "qcsat_mean": float(np.mean(values)),
                "qcsat_std": float(np.std(values)),
                "n_traces": len(traces),
            })
    return {"figure": "7", "rows": rows}


# ---------------------------------------------------------------------- #
# Figures 9, 10 — empirical performance sweeps
# ---------------------------------------------------------------------- #
def performance_sweep(
    buffer_bdp: float = 1.0,
    canopy_kind: str = "canopy-shallow",
    training_steps: int = 400,
    duration: float = 15.0,
    n_synthetic: int = 3,
    n_cellular: int = 2,
    seed: int = 1,
) -> Dict:
    """Utilization vs avg/p95 delay for all schemes (Fig. 9 shallow, Fig. 10 deep)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy = get_trained_model(canopy_kind, training_steps=training_steps, seed=seed)
    schemes = {
        "canopy": scheme_factory("canopy", model=canopy, seed=seed),
        "orca": scheme_factory("orca", model=orca, seed=seed),
        "cubic": scheme_factory("cubic"),
        "vegas": scheme_factory("vegas"),
        "bbr": scheme_factory("bbr"),
    }
    rows = []
    for trace_kind, count in (("synthetic", n_synthetic), ("cellular", n_cellular)):
        traces = _trace_subset(trace_kind, count)
        settings = EvaluationSettings(duration=duration, buffer_bdp=buffer_bdp, seed=seed)
        per_scheme: Dict[str, List[Dict]] = {name: [] for name in schemes}
        for trace in traces:
            for name, factory in schemes.items():
                result = run_scheme_on_trace(factory, trace, settings, scheme_name=name)
                per_scheme[name].append(result.summary.as_dict())
        for name, summaries in per_scheme.items():
            rows.append({
                "trace_kind": trace_kind,
                "scheme": name,
                "utilization": float(np.mean([s["utilization"] for s in summaries])),
                "avg_delay_ms": float(np.mean([s["avg_queuing_delay_ms"] for s in summaries])),
                "p95_delay_ms": float(np.mean([s["p95_queuing_delay_ms"] for s in summaries])),
                "loss_rate": float(np.mean([s["loss_rate"] for s in summaries])),
                "n_traces": len(summaries),
            })
    figure = "9" if buffer_bdp <= 1.0 else "10"
    return {"figure": figure, "buffer_bdp": buffer_bdp, "rows": rows}


# ---------------------------------------------------------------------- #
# Figure 11 — robustness to observation noise
# ---------------------------------------------------------------------- #
def noise_sensitivity(
    training_steps: int = 400,
    duration: float = 12.0,
    noise: float = 0.05,
    n_traces: int = 3,
    seed: int = 1,
) -> Dict:
    """Percentage change of metrics when ±5% delay noise is added (Fig. 11)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy = get_trained_model("canopy-robust", training_steps=training_steps, seed=seed)
    traces = _trace_subset("synthetic", n_traces)
    rows = []
    for scheme_label, model in (("orca", orca), ("canopy", canopy)):
        changes = {"utilization": [], "avg_delay": [], "p95_delay": []}
        for trace in traces:
            base_settings = EvaluationSettings(duration=duration, buffer_bdp=2.0, seed=seed)
            noisy_settings = EvaluationSettings(duration=duration, buffer_bdp=2.0,
                                                observation_noise=noise, seed=seed)
            base = run_scheme_on_trace(scheme_factory(scheme_label, model=model, seed=seed),
                                       trace, base_settings, scheme_name=scheme_label).summary
            noisy = run_scheme_on_trace(
                scheme_factory(scheme_label, model=model, observation_noise=noise, seed=seed),
                trace, noisy_settings, scheme_name=scheme_label).summary

            def pct(new: float, old: float) -> float:
                return 100.0 * (new - old) / old if old > 0 else 0.0

            changes["utilization"].append(pct(noisy.utilization, base.utilization))
            changes["avg_delay"].append(pct(noisy.avg_queuing_delay_ms, base.avg_queuing_delay_ms))
            changes["p95_delay"].append(pct(noisy.p95_queuing_delay_ms, base.p95_queuing_delay_ms))
        rows.append({
            "scheme": scheme_label,
            "utilization_change_pct": float(np.mean(changes["utilization"])),
            "avg_delay_change_pct": float(np.mean(changes["avg_delay"])),
            "p95_delay_change_pct": float(np.mean(changes["p95_delay"])),
            "max_abs_utilization_change_pct": float(np.max(np.abs(changes["utilization"]))),
        })
    return {"figure": "11", "noise": noise, "rows": rows}


# ---------------------------------------------------------------------- #
# Figure 12 — wide-area ("real world") deployment
# ---------------------------------------------------------------------- #
def realworld_deployment(
    training_steps: int = 400,
    duration: float = 12.0,
    profiles_per_category: int = 2,
    seed: int = 1,
) -> Dict:
    """Normalized throughput/delay over emulated WAN paths (Fig. 12)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy_shallow = get_trained_model("canopy-shallow", training_steps=training_steps, seed=seed)
    canopy_deep = get_trained_model("canopy-deep", training_steps=training_steps, seed=seed)
    schemes = {
        "canopy-shallow": scheme_factory("canopy-shallow", model=canopy_shallow, seed=seed),
        "canopy-deep": scheme_factory("canopy-deep", model=canopy_deep, seed=seed),
        "orca": scheme_factory("orca", model=orca, seed=seed),
        "cubic": scheme_factory("cubic"),
    }
    categories = {
        "intra": intracontinental_profiles()[:profiles_per_category],
        "inter": intercontinental_profiles()[:profiles_per_category],
    }
    rows = []
    for category, profiles in categories.items():
        normalized: Dict[str, Dict[str, List[float]]] = {name: {"throughput": [], "delay": []} for name in schemes}
        for profile in profiles:
            trace = profile.make_trace(duration=duration)
            settings = EvaluationSettings(
                duration=duration, min_rtt=profile.min_rtt_s, buffer_bdp=profile.buffer_bdp,
                random_loss_rate=profile.loss_rate, seed=seed,
            )
            summaries = {}
            for name, factory in schemes.items():
                summaries[name] = run_scheme_on_trace(factory, trace, settings, scheme_name=name).summary
            max_throughput = max(s.throughput_mbps for s in summaries.values()) or 1.0
            min_delay = min(s.avg_rtt_ms for s in summaries.values()) or 1.0
            for name, summary in summaries.items():
                normalized[name]["throughput"].append(summary.throughput_mbps / max_throughput)
                normalized[name]["delay"].append(summary.avg_rtt_ms / max(min_delay, 1e-6))
        for name, values in normalized.items():
            rows.append({
                "category": category,
                "scheme": name,
                "normalized_throughput": float(np.mean(values["throughput"])),
                "normalized_delay": float(np.mean(values["delay"])),
                "n_paths": len(values["throughput"]),
            })
    return {"figure": "12", "rows": rows}


# ---------------------------------------------------------------------- #
# Figure 13 — runtime fallback guided by QC_sat
# ---------------------------------------------------------------------- #
def fallback_runtime(
    training_steps: int = 400,
    duration: float = 12.0,
    thresholds: Sequence[float] = (0.0, 0.5, 0.8),
    n_components: int = 10,
    n_traces: int = 2,
    seed: int = 1,
) -> Dict:
    """Performance of Orca and Canopy with the QC_sat-guided fallback (Fig. 13)."""
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    canopy_shallow = get_trained_model("canopy-shallow", training_steps=training_steps, seed=seed)
    canopy_deep = get_trained_model("canopy-deep", training_steps=training_steps, seed=seed)
    cases = [
        ("shallow", 1.0, shallow_buffer_properties(), canopy_shallow),
        ("deep", 5.0, deep_buffer_properties(), canopy_deep),
    ]
    traces = _trace_subset("synthetic", n_traces)
    rows = []
    for family, buffer_bdp, properties, canopy_model in cases:
        settings = EvaluationSettings(duration=duration, buffer_bdp=buffer_bdp, seed=seed)
        for scheme_label, model in (("orca", orca), ("canopy", canopy_model)):
            for threshold in thresholds:
                summaries = []
                fallback_fractions = []
                for trace in traces:
                    monitor = QCRuntimeMonitor(
                        model.make_verifier(n_components=n_components), properties,
                        threshold=threshold, n_components=n_components,
                        enabled=threshold > 0.0,
                    )
                    factory = scheme_factory(scheme_label, model=model,
                                             decision_filter=monitor.decision_filter, seed=seed)
                    result = run_scheme_on_trace(factory, trace, settings, scheme_name=scheme_label)
                    summaries.append(result.summary.as_dict())
                    fallback_fractions.append(monitor.fallback_fraction)
                rows.append({
                    "buffer_family": family,
                    "scheme": scheme_label,
                    "threshold": threshold,
                    "utilization": float(np.mean([s["utilization"] for s in summaries])),
                    "avg_delay_ms": float(np.mean([s["avg_queuing_delay_ms"] for s in summaries])),
                    "p95_delay_ms": float(np.mean([s["p95_queuing_delay_ms"] for s in summaries])),
                    "fallback_fraction": float(np.mean(fallback_fractions)),
                })
    return {"figure": "13", "rows": rows}


# ---------------------------------------------------------------------- #
# Figure 16 — sensitivity to N and λ
# ---------------------------------------------------------------------- #
def sensitivity(
    n_values: Sequence[int] = (1, 5, 10),
    lambda_values: Sequence[float] = (0.25, 0.5, 0.75),
    training_steps: int = 300,
    duration: float = 10.0,
    n_traces: int = 2,
    seed: int = 1,
) -> Dict:
    """Performance of Canopy-shallow for different N and λ (Fig. 16)."""
    traces = _trace_subset("synthetic", n_traces)
    settings = EvaluationSettings(duration=duration, buffer_bdp=1.0, seed=seed)
    rows = []

    configurations = [("N", n, 0.25) for n in n_values] + [("lambda", 5, lam) for lam in lambda_values]
    seen = set()
    for axis, n_components, lam in configurations:
        key = (n_components, lam)
        if key in seen:
            continue
        seen.add(key)
        model = get_trained_model("canopy-shallow", training_steps=training_steps, seed=seed,
                                  lam=lam, n_components=n_components)
        summaries = []
        for trace in traces:
            result = run_scheme_on_trace(scheme_factory("canopy", model=model, seed=seed),
                                         trace, settings, scheme_name="canopy")
            summaries.append(result.summary.as_dict())
        rows.append({
            "label": f"N{n_components}-lam{lam:g}",
            "n_components": n_components,
            "lambda": lam,
            "utilization": float(np.mean([s["utilization"] for s in summaries])),
            "avg_delay_ms": float(np.mean([s["avg_queuing_delay_ms"] for s in summaries])),
            "p95_delay_ms": float(np.mean([s["p95_queuing_delay_ms"] for s in summaries])),
        })
    return {"figure": "16", "rows": rows}


# ---------------------------------------------------------------------- #
# Figure 17 — training curves (appendix A.1)
# ---------------------------------------------------------------------- #
def training_curves(training_steps: int = 400, seed: int = 1) -> Dict:
    """Raw / verifier / total reward over training for Orca and Canopy (Fig. 17)."""
    canopy = get_trained_model("canopy-shallow", training_steps=training_steps, seed=seed)
    orca = get_trained_model("orca", training_steps=training_steps, seed=seed)
    curves = {
        "canopy": {k: v.tolist() for k, v in canopy.training.reward_curves().items()},
        "orca": {k: v.tolist() for k, v in orca.training.reward_curves().items()},
    }
    return {
        "figure": "17",
        "curves": curves,
        "final": {
            "canopy": canopy.training.final_metrics(),
            "orca": orca.training.final_metrics(),
        },
    }


# ---------------------------------------------------------------------- #
# Table 4 — training overhead of verification (appendix A.2)
# ---------------------------------------------------------------------- #
def verification_overhead(
    n_values: Sequence[int] = (1, 5, 10),
    training_steps: int = 150,
    seed: int = 1,
) -> Dict:
    """Environment-step rate with and without in-loop verification (Table 4)."""
    rows = []

    orca_config = CanopyConfig.orca_baseline(seed=seed)
    orca_trainer = CanopyTrainer(orca_config, TrainerConfig(
        total_steps=training_steps, log_every=training_steps,
        use_verifier_reward=False, verifier_every=10 ** 9,
    ))
    orca_result = orca_trainer.train()
    rows.append({"scheme": "orca", "n_components": 0, "steps_per_second": orca_result.steps_per_second,
                 "verifier_seconds": orca_result.verifier_seconds})

    for n in n_values:
        config = CanopyConfig.shallow(n_components=n, seed=seed)
        trainer = CanopyTrainer(config, TrainerConfig(total_steps=training_steps, log_every=training_steps))
        result = trainer.train()
        rows.append({"scheme": f"canopy-N{n}", "n_components": n,
                     "steps_per_second": result.steps_per_second,
                     "verifier_seconds": result.verifier_seconds})
    return {"table": "4", "rows": rows}
