"""Evaluation harness regenerating the paper's tables and figures.

* :mod:`repro.harness.models` — trains (and caches) the Canopy / Orca models
  used across experiments.
* :mod:`repro.harness.evaluate` — runs a congestion-control scheme over a
  trace and computes the empirical metrics and QC_sat.
* :mod:`repro.harness.experiments` — one driver function per figure/table of
  the single-flow evaluation (Figures 1, 2, 5–13, 16, 17 and Table 4).
* :mod:`repro.harness.parallel` — :class:`~repro.harness.parallel.ParallelRunner`,
  which shards (scheme × trace × seed) experiment grids across a process pool
  with deterministic seeding and in-order merged reporting.
* :mod:`repro.harness.fairness` — the multi-flow friendliness and fairness
  experiments (Figures 14 and 15).
* :mod:`repro.harness.reporting` — plain-text rendering of result tables.
"""

from repro.harness.evaluate import (
    EvaluationSettings,
    QCSatResult,
    SchemeResult,
    evaluate_qcsat,
    run_scheme_on_trace,
    run_schemes_sharded,
    scheme_factory,
)
from repro.harness.models import TrainedModel, get_trained_model, clear_model_cache
from repro.harness.checkpoints import SavedModel, load_model, save_model
from repro.harness.parallel import ExperimentTask, GridResult, ParallelRunner, derive_seed

__all__ = [
    "SavedModel",
    "save_model",
    "load_model",
    "EvaluationSettings",
    "QCSatResult",
    "SchemeResult",
    "evaluate_qcsat",
    "run_scheme_on_trace",
    "run_schemes_sharded",
    "scheme_factory",
    "TrainedModel",
    "get_trained_model",
    "clear_model_cache",
    "ExperimentTask",
    "GridResult",
    "ParallelRunner",
    "derive_seed",
]
