"""Evaluation harness regenerating the paper's tables and figures.

* :mod:`repro.harness.models` — trains (and caches) the Canopy / Orca models
  used across experiments.
* :mod:`repro.harness.evaluate` — runs a congestion-control scheme over a
  trace and computes the empirical metrics and QC_sat.
* :mod:`repro.harness.experiments` — one driver function per figure/table of
  the single-flow evaluation (Figures 1, 2, 5–13, 16, 17 and Table 4).
* :mod:`repro.harness.spec` — :class:`~repro.harness.spec.ScenarioSpec`, the
  declarative scenario identity (scheme × trace × topology × seed × model ×
  property family × certify) with canonical string/JSON round-trips — the
  single currency flowing through tasks, shard keys, run records, and CLI
  flags.
* :mod:`repro.harness.registry` — the declarative experiment registry
  (named axes → grid expansion → per-cell runner → aggregators) behind
  ``python -m repro run``.
* :mod:`repro.harness.store` — the resumable
  :class:`~repro.harness.store.RunStore` writing one provenance-stamped
  :class:`~repro.harness.store.RunRecord` per completed cell.
* :mod:`repro.harness.parallel` — :class:`~repro.harness.parallel.ParallelRunner`,
  which shards (scheme × trace × seed) experiment grids across a process pool
  with deterministic seeding and in-order merged reporting.
* :mod:`repro.harness.fairness` — the multi-flow friendliness and fairness
  experiments (Figures 14 and 15).
* :mod:`repro.harness.reporting` — plain-text rendering of result tables.
"""

from repro.harness.evaluate import (
    EvaluationSettings,
    QCSatResult,
    SchemeResult,
    evaluate_qcsat,
    run_scheme_on_trace,
    run_schemes_sharded,
    scheme_factory,
)
from repro.harness.models import TrainedModel, get_trained_model, clear_model_cache
from repro.harness.checkpoints import SavedModel, load_model, save_model
from repro.harness.parallel import ExperimentTask, GridResult, ParallelRunner, derive_seed
# REGISTRY lazily imports repro.harness.experiments on first lookup, so the
# built-in experiments are always available without this package import
# paying for the experiment drivers.
from repro.harness.registry import REGISTRY, run_experiment
from repro.harness.spec import ScenarioSpec
from repro.harness.store import RunRecord, RunStore

__all__ = [
    "SavedModel",
    "save_model",
    "load_model",
    "EvaluationSettings",
    "QCSatResult",
    "SchemeResult",
    "evaluate_qcsat",
    "run_scheme_on_trace",
    "run_schemes_sharded",
    "scheme_factory",
    "TrainedModel",
    "get_trained_model",
    "clear_model_cache",
    "ExperimentTask",
    "GridResult",
    "ParallelRunner",
    "derive_seed",
    "ScenarioSpec",
    "RunRecord",
    "RunStore",
    "REGISTRY",
    "run_experiment",
]
