"""Training and caching of the learned models used across experiments.

The paper trains three Canopy models (shallow-buffer, deep-buffer, robustness)
and an Orca baseline.  Every experiment driver needs one or more of them, so
this module trains each model once per process at a configurable (CI-scale)
budget and memoizes the result.  Models are identified by
``(kind, training_steps, seed)``; the default budget is intentionally small —
large enough for the qualitative trends of the paper (Canopy's verifier reward
rises, Orca's does not; QC_sat ordering) to emerge, small enough for the whole
benchmark suite to run in minutes.

With ``REPRO_MODEL_ZOO`` set to a directory, the in-process cache is backed by
a **content-addressed on-disk zoo**: every freshly-trained model is published
(atomically, first writer wins) under a digest of its full cache identity, and
:func:`model_for_task` consults the zoo before training.  N serve workers —
or entirely separate processes pointed at the same directory — therefore
share one training run per cache key.  A zoo-loaded
:class:`~repro.harness.checkpoints.SavedModel` evaluates byte-identically to
the :class:`TrainedModel` it was published from: the actor weights round-trip
exactly through ``.npz`` (float64, uncompressed) and both policies clip the
actor output to the same ``[-1, 1]`` action box.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CanopyConfig
from repro.core.properties import PropertySet
from repro.core.trainer import CanopyTrainer, TrainerConfig, TrainingResult
from repro.core.verifier import Verifier, VerifierConfig
from repro.harness.checkpoints import SavedModel, load_model, publish_model
from repro.harness.store import fingerprint
from repro.orca.observations import ObservationConfig
from repro.telemetry import log

__all__ = ["TrainedModel", "get_trained_model", "model_for_task", "clear_model_cache",
           "DEFAULT_TRAINING_STEPS", "MODEL_KINDS", "ZOO_ENV", "zoo_digest", "zoo_root"]

#: Environment variable naming the shared on-disk model-zoo directory.
ZOO_ENV = "REPRO_MODEL_ZOO"

DEFAULT_TRAINING_STEPS = 800

MODEL_KINDS = ("canopy-shallow", "canopy-deep", "canopy-robust", "orca")


@dataclass
class TrainedModel:
    """A trained policy plus everything needed to evaluate it."""

    kind: str
    config: CanopyConfig
    training: TrainingResult

    @property
    def policy(self) -> Callable[[np.ndarray], np.ndarray]:
        return self.training.policy()

    @property
    def actor(self):
        return self.training.agent.actor

    @property
    def properties(self) -> PropertySet:
        return self.config.properties

    @property
    def observation_config(self) -> ObservationConfig:
        return self.config.observation

    def make_verifier(self, n_components: int = 50) -> Verifier:
        return Verifier(self.actor, self.observation_config, VerifierConfig(n_components=n_components))


def _make_config(kind: str, lam: float | None, n_components: int | None, seed: int,
                 topologies: Tuple[str, ...] | None = None) -> CanopyConfig:
    if kind == "canopy-shallow":
        config = CanopyConfig.shallow(seed=seed)
    elif kind == "canopy-deep":
        config = CanopyConfig.deep(seed=seed)
    elif kind == "canopy-robust":
        config = CanopyConfig.robustness(seed=seed)
    elif kind == "orca":
        config = CanopyConfig.orca_baseline(seed=seed)
    else:
        raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")
    if lam is not None:
        config = config.with_lambda(lam)
    if n_components is not None:
        config = config.with_components(n_components)
    if topologies is not None:
        config = config.with_topologies(topologies)
    return config


_CACHE: Dict[Tuple, TrainedModel] = {}

#: Zoo checkpoints already loaded this process (SavedModel handles).
_DISK_CACHE: Dict[Tuple, SavedModel] = {}


def _normalize_identity(kind: str, training_steps: int, seed: int,
                        lam: float | None, n_components: int | None,
                        topologies: Sequence[str] | None) -> Tuple:
    """The one cache/zoo identity for a model, shared by every lookup path."""
    topologies = tuple(str(spec) for spec in topologies) if topologies is not None else None
    if topologies == ("single_bottleneck",):
        # Every preset trains on single_bottleneck by default, so an explicit
        # single-bottleneck catalog shares the preset's cache entry instead of
        # retraining a bit-identical model under a second key.
        topologies = None
    return (kind, training_steps, seed, lam, n_components, topologies)


# ---------------------------------------------------------------------- #
# Content-addressed on-disk zoo (REPRO_MODEL_ZOO)
# ---------------------------------------------------------------------- #
def zoo_root() -> Optional[Path]:
    """The shared zoo directory, or None when ``REPRO_MODEL_ZOO`` is unset."""
    raw = os.environ.get(ZOO_ENV)
    return Path(raw) if raw else None


def zoo_digest(kind: str, training_steps: int = DEFAULT_TRAINING_STEPS,
               seed: int = 1, lam: float | None = None,
               n_components: int | None = None,
               topologies: Sequence[str] | None = None) -> str:
    """The content address of one model identity: readable prefix + digest.

    The digest covers the *full* normalized cache key (including λ,
    component-count and training-topology overrides), so two models that
    could ever train differently never share a checkpoint directory.
    """
    kind, training_steps, seed, lam, n_components, topologies = \
        _normalize_identity(kind, training_steps, seed, lam, n_components, topologies)
    digest = fingerprint({
        "kind": kind, "training_steps": training_steps, "seed": seed,
        "lam": lam, "n_components": n_components,
        "topologies": list(topologies) if topologies is not None else None,
    })
    return f"{kind}-s{training_steps}-r{seed}-{digest}"


def _zoo_load(key: Tuple) -> Optional[SavedModel]:
    root = zoo_root()
    if root is None:
        return None
    if key in _DISK_CACHE:
        return _DISK_CACHE[key]
    directory = root / zoo_digest(*key)
    if not (directory / "model.json").exists():
        return None
    model = load_model(directory, "model")
    _DISK_CACHE[key] = model
    log.debug("zoo_hit", logger="harness", kind=key[0], checkpoint=str(directory))
    return model


def _zoo_publish(model: "TrainedModel", key: Tuple) -> None:
    root = zoo_root()
    if root is None:
        return
    directory = publish_model(model, root / zoo_digest(*key), name="model")
    log.debug("zoo_publish", logger="harness", kind=key[0], checkpoint=str(directory))


def get_trained_model(
    kind: str,
    training_steps: int = DEFAULT_TRAINING_STEPS,
    seed: int = 1,
    lam: float | None = None,
    n_components: int | None = None,
    topologies: Sequence[str] | None = None,
) -> TrainedModel:
    """Train (or fetch a cached) model of the requested kind.

    Args:
        kind: One of :data:`MODEL_KINDS`.
        training_steps: Number of environment (monitor-interval) steps.
        seed: Seed for the environment and networks.
        lam: Override of the verifier-reward weight λ (None keeps the preset).
        n_components: Override of the number of QC partitions N.
        topologies: Override of the training-scenario catalog — topology
            family specs sampled per episode (None keeps the preset's
            single-bottleneck training; several specs train a
            domain-randomized model).
    """
    key = _normalize_identity(kind, training_steps, seed, lam, n_components, topologies)
    kind, training_steps, seed, lam, n_components, topologies = key
    if key in _CACHE:
        return _CACHE[key]
    config = _make_config(kind, lam, n_components, seed, topologies)
    trainer_config = TrainerConfig(
        total_steps=training_steps,
        log_every=max(10, training_steps // 20),
        use_verifier_reward=(kind != "orca"),
    )
    trainer = CanopyTrainer(config, trainer_config)
    training = trainer.train()
    model = TrainedModel(kind=kind, config=config, training=training)
    _CACHE[key] = model
    _zoo_publish(model, key)
    return model


def model_for_task(task):
    """The zoo model a task names (``ExperimentTask``, ``MultiFlowTask``, ...).

    One definition of the task→model mapping, shared by pool workers
    (:func:`repro.harness.parallel.run_task`) and the registry's pre-training
    pass, so a task's model identity cannot drift between the pre-training
    parent and the forked workers.  Task types without the optional override
    fields (``lam``/``model_components``/``model_topologies``) get the zoo
    defaults.

    Resolution order: in-process cache, then the ``REPRO_MODEL_ZOO`` on-disk
    zoo (returning a :class:`~repro.harness.checkpoints.SavedModel`, which
    evaluates byte-identically), then a fresh training run (which publishes
    to the zoo when one is configured).  Callers that need the training
    history (``.training``) must go through :func:`get_trained_model`
    directly — evaluation-side callers only need the policy/verifier surface
    both model types share.
    """
    if task.model_kind is None:
        raise ValueError("task has no learned model (model_kind is None)")
    key = _normalize_identity(
        task.model_kind,
        task.training_steps,
        task.model_seed,
        getattr(task, "lam", None),
        getattr(task, "model_components", None),
        getattr(task, "model_topologies", None),
    )
    if key in _CACHE:
        return _CACHE[key]
    saved = _zoo_load(key)
    if saved is not None:
        return saved
    return get_trained_model(key[0], training_steps=key[1], seed=key[2],
                             lam=key[3], n_components=key[4], topologies=key[5])


def clear_model_cache() -> None:
    """Drop every cached model handle (in-memory and loaded-from-zoo)."""
    _CACHE.clear()
    _DISK_CACHE.clear()
