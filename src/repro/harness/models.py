"""Training and caching of the learned models used across experiments.

The paper trains three Canopy models (shallow-buffer, deep-buffer, robustness)
and an Orca baseline.  Every experiment driver needs one or more of them, so
this module trains each model once per process at a configurable (CI-scale)
budget and memoizes the result.  Models are identified by
``(kind, training_steps, seed)``; the default budget is intentionally small —
large enough for the qualitative trends of the paper (Canopy's verifier reward
rises, Orca's does not; QC_sat ordering) to emerge, small enough for the whole
benchmark suite to run in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.core.config import CanopyConfig
from repro.core.properties import PropertySet
from repro.core.trainer import CanopyTrainer, TrainerConfig, TrainingResult
from repro.core.verifier import Verifier, VerifierConfig
from repro.orca.observations import ObservationConfig

__all__ = ["TrainedModel", "get_trained_model", "model_for_task", "clear_model_cache",
           "DEFAULT_TRAINING_STEPS", "MODEL_KINDS"]

DEFAULT_TRAINING_STEPS = 800

MODEL_KINDS = ("canopy-shallow", "canopy-deep", "canopy-robust", "orca")


@dataclass
class TrainedModel:
    """A trained policy plus everything needed to evaluate it."""

    kind: str
    config: CanopyConfig
    training: TrainingResult

    @property
    def policy(self) -> Callable[[np.ndarray], np.ndarray]:
        return self.training.policy()

    @property
    def actor(self):
        return self.training.agent.actor

    @property
    def properties(self) -> PropertySet:
        return self.config.properties

    @property
    def observation_config(self) -> ObservationConfig:
        return self.config.observation

    def make_verifier(self, n_components: int = 50) -> Verifier:
        return Verifier(self.actor, self.observation_config, VerifierConfig(n_components=n_components))


def _make_config(kind: str, lam: float | None, n_components: int | None, seed: int,
                 topologies: Tuple[str, ...] | None = None) -> CanopyConfig:
    if kind == "canopy-shallow":
        config = CanopyConfig.shallow(seed=seed)
    elif kind == "canopy-deep":
        config = CanopyConfig.deep(seed=seed)
    elif kind == "canopy-robust":
        config = CanopyConfig.robustness(seed=seed)
    elif kind == "orca":
        config = CanopyConfig.orca_baseline(seed=seed)
    else:
        raise ValueError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")
    if lam is not None:
        config = config.with_lambda(lam)
    if n_components is not None:
        config = config.with_components(n_components)
    if topologies is not None:
        config = config.with_topologies(topologies)
    return config


_CACHE: Dict[Tuple, TrainedModel] = {}


def get_trained_model(
    kind: str,
    training_steps: int = DEFAULT_TRAINING_STEPS,
    seed: int = 1,
    lam: float | None = None,
    n_components: int | None = None,
    topologies: Sequence[str] | None = None,
) -> TrainedModel:
    """Train (or fetch a cached) model of the requested kind.

    Args:
        kind: One of :data:`MODEL_KINDS`.
        training_steps: Number of environment (monitor-interval) steps.
        seed: Seed for the environment and networks.
        lam: Override of the verifier-reward weight λ (None keeps the preset).
        n_components: Override of the number of QC partitions N.
        topologies: Override of the training-scenario catalog — topology
            family specs sampled per episode (None keeps the preset's
            single-bottleneck training; several specs train a
            domain-randomized model).
    """
    topologies = tuple(str(spec) for spec in topologies) if topologies is not None else None
    if topologies == ("single_bottleneck",):
        # Every preset trains on single_bottleneck by default, so an explicit
        # single-bottleneck catalog shares the preset's cache entry instead of
        # retraining a bit-identical model under a second key.
        topologies = None
    key = (kind, training_steps, seed, lam, n_components, topologies)
    if key in _CACHE:
        return _CACHE[key]
    config = _make_config(kind, lam, n_components, seed, topologies)
    trainer_config = TrainerConfig(
        total_steps=training_steps,
        log_every=max(10, training_steps // 20),
        use_verifier_reward=(kind != "orca"),
    )
    trainer = CanopyTrainer(config, trainer_config)
    training = trainer.train()
    model = TrainedModel(kind=kind, config=config, training=training)
    _CACHE[key] = model
    return model


def model_for_task(task) -> TrainedModel:
    """The zoo model a task names (``ExperimentTask``, ``MultiFlowTask``, ...).

    One definition of the task→model mapping, shared by pool workers
    (:func:`repro.harness.parallel.run_task`) and the registry's pre-training
    pass, so a task's model identity cannot drift between the pre-training
    parent and the forked workers.  Task types without the optional override
    fields (``lam``/``model_components``/``model_topologies``) get the zoo
    defaults.
    """
    if task.model_kind is None:
        raise ValueError("task has no learned model (model_kind is None)")
    return get_trained_model(
        task.model_kind,
        training_steps=task.training_steps,
        seed=task.model_seed,
        lam=getattr(task, "lam", None),
        n_components=getattr(task, "model_components", None),
        topologies=getattr(task, "model_topologies", None),
    )


def clear_model_cache() -> None:
    """Drop every cached model (used by tests that need fresh training)."""
    _CACHE.clear()
