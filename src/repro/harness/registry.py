"""The experiment registry: declarative experiments over named axes.

Historically every experiment was a bespoke ~100-line driver function in
:mod:`repro.harness.experiments` that hand-rolled the same four steps:
pre-train models, expand a Cartesian grid into tasks, shard it through
:class:`~repro.harness.parallel.ParallelRunner`, and aggregate the rows.
The registry factors that shape out.  An :class:`Experiment` is:

* **named axes** — a dict of axis name → default value.  Sequence-valued
  axes are grid axes, scalars are run-time knobs; either can be overridden
  from the CLI (``--set seeds=0..9 --set trace=cellular``) or from code,
  and an unknown axis name raises immediately with the list of valid ones
  (typos can no longer vanish into a silently-unchanged grid).
* a **build** hook — axes → the task list (``ExperimentTask``,
  ``MultiFlowTask``, or anything with a ``cell_key()``),
* an optional **setup** hook — pre-trains models in-process so forked pool
  workers inherit the warm zoo cache,
* an **aggregate** hook — ``(grid, axes, tasks) -> result dict`` (defaults
  to the plain rows + grid accounting).

:meth:`ExperimentRegistry.run` executes an experiment with optional
:class:`~repro.harness.store.RunStore` persistence: every completed cell is
written incrementally, ``resume=True`` skips cells whose key is already
stored, and every row — fresh or cached — is canonicalized through JSON, so
serial, sharded (``n_jobs``), and interrupted-then-resumed runs produce
byte-identical rows.

Registering a new experiment is ~20 lines (see
``examples/custom_experiment.py``)::

    from repro.harness.registry import REGISTRY

    @REGISTRY.register("buffer_sweep", axes={"buffers": (0.5, 1.0), ...})
    def _build(axes):
        return [ExperimentTask(...) for ... in axes["buffers"]]

    result = REGISTRY.run("buffer_sweep", {"buffers": "0.25,4.0"}, n_jobs=4)
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.harness.parallel import GridResult, ParallelRunner, run_profiled, run_task
from repro.harness.spec import coerce_scalar
from repro.harness.store import RunRecord, RunStore, canonical_json
from repro.telemetry import log

__all__ = [
    "Experiment",
    "ExperimentPlan",
    "ExperimentRegistry",
    "REGISTRY",
    "pretrain_models",
    "register",
    "run_experiment",
    "experiment_names",
    "parse_set_overrides",
]

def default_aggregate(grid: GridResult, axes: Dict, tasks: Sequence) -> Dict:
    """Plain rows plus grid accounting — enough for most custom experiments."""
    return {"rows": grid.rows, "wall_clock_s": grid.wall_clock_s, "n_jobs": grid.n_jobs}


@dataclass(frozen=True)
class Experiment:
    """One declarative experiment definition (see the module docstring)."""

    name: str
    build: Callable[[Dict], Sequence]
    axes: Mapping[str, object] = field(default_factory=dict)
    aggregate: Callable[[GridResult, Dict, Sequence], Dict] = default_aggregate
    setup: Optional[Callable[[Dict], None]] = None
    runner: Callable = run_task
    description: str = ""


# ---------------------------------------------------------------------- #
# Axis override parsing / coercion
# ---------------------------------------------------------------------- #
def parse_set_overrides(pairs: Sequence[str]) -> Dict[str, str]:
    """Parse repeated ``--set axis=value`` flags into an override dict."""
    overrides: Dict[str, str] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(f"malformed --set {pair!r}; expected axis=value")
        if name in overrides:
            raise ValueError(f"duplicate --set for axis {name!r}")
        overrides[name] = value.strip()
    return overrides


def _element_template(default: Sequence):
    for element in default:
        return element
    return ""


def _coerce_sequence(value: str, default: Sequence):
    template = _element_template(default)
    # Ranges expand for both int- and float-typed axes (cast to the axis
    # type), so `--set thresholds=0..1` is not rejected just because the
    # defaults happen to be floats.  Endpoints are always whole numbers.
    ranged = isinstance(template, (int, float)) and not isinstance(template, bool)
    elements: List = []
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        start, sep, stop = part.partition("..")
        if sep and ranged and "." not in start and "." not in stop:
            first, last = int(start), int(stop)
            step = 1 if last >= first else -1
            elements.extend(type(template)(element)
                            for element in range(first, last + step, step))
        else:
            elements.append(coerce_scalar(part, template))
    if not elements:
        raise ValueError(f"empty sequence for axis override {value!r}")
    return tuple(elements)


def coerce_axis_value(name: str, value: object, default: object):
    """Coerce one override to its axis's shape, using the default as template.

    String overrides (from ``--set``) are parsed by
    :func:`repro.harness.spec.coerce_scalar` — the one scalar-coercion rule
    of the repo, so int/float/bool handling matches everywhere; sequence axes
    split on commas, with ``a..b`` expanding to an inclusive whole-number
    range cast to the axis's element type.  Typed overrides (from the driver
    shims) pass through, normalized to tuples for sequence axes.
    """
    is_sequence_axis = isinstance(default, (tuple, list))
    if isinstance(value, str):
        try:
            return _coerce_sequence(value, default) if is_sequence_axis \
                else coerce_scalar(value, default)
        except ValueError as exc:
            raise ValueError(f"axis {name!r}: cannot parse {value!r}: {exc}") from exc
    if is_sequence_axis:
        if isinstance(value, (tuple, list)):
            return tuple(value)
        return (value,)
    return value


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
def pretrain_models(tasks: Sequence) -> None:
    """Train (in-process) every distinct model the given tasks name.

    Runs in the coordinating parent before the pool (or the serve daemon's
    worker fleet) forks, so workers inherit the warm zoo cache instead of
    retraining — and, on resume, only the models the *pending* cells actually
    need are trained.  With ``REPRO_MODEL_ZOO`` set, each freshly-trained
    model is also published to the on-disk zoo (see
    :mod:`repro.harness.models`), so even workers spawned later — or entirely
    separate processes sharing the zoo directory — reuse one training run per
    cache key.
    """
    # Imported lazily so the registry stays importable without the trainer stack.
    from repro.harness.models import model_for_task

    seen = set()
    for task in tasks:
        if getattr(task, "model_kind", None) is None:
            continue
        identity = (task.model_kind, task.training_steps, task.model_seed,
                    getattr(task, "lam", None), getattr(task, "model_components", None),
                    getattr(task, "model_topologies", None))
        if identity in seen:
            continue
        seen.add(identity)
        model_for_task(task)


@dataclass(frozen=True)
class ExperimentPlan:
    """One resolved experiment invocation: the grid, before any execution.

    The plan is the shared contract between the in-process runner
    (:meth:`ExperimentRegistry.run`) and the lease-based serve daemon
    (:mod:`repro.serve.daemon`): both expand the same axes into the same task
    list with the same cell keys, so a cell computed under either path lands
    in the store under the same identity with a byte-identical row.
    """

    experiment: Experiment
    axes: Dict
    tasks: List
    keys: List[str]


class ExperimentRegistry:
    """Name → :class:`Experiment` mapping with a store-aware generic runner.

    The process-wide :data:`REGISTRY` lazily imports
    :mod:`repro.harness.experiments` on first lookup so the built-in
    experiments are always available without dragging the full experiment
    stack into lightweight imports of this module.
    """

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def _load_builtins(self) -> None:
        global _BUILTINS_LOADED
        if self is not REGISTRY or _BUILTINS_LOADED:
            return
        _BUILTINS_LOADED = True
        import repro.harness.experiments  # noqa: F401  (registers into REGISTRY)

    # ------------------------------------------------------------------ #
    def register(self, name: str, axes: Optional[Mapping[str, object]] = None,
                 setup: Optional[Callable[[Dict], None]] = None,
                 aggregate: Optional[Callable[[GridResult, Dict, Sequence], Dict]] = None,
                 runner: Callable = run_task,
                 description: str = ""):
        """Decorator registering a build hook as an experiment.

        Re-registering a name replaces the previous definition (latest wins),
        so example scripts and notebooks can be re-imported freely.
        """
        def decorator(build: Callable[[Dict], Sequence]) -> Callable[[Dict], Sequence]:
            doc_lines = (build.__doc__ or "").strip().splitlines()
            self._experiments[name] = Experiment(
                name=name,
                build=build,
                axes=dict(axes or {}),
                aggregate=aggregate or default_aggregate,
                setup=setup,
                runner=runner,
                description=description or (doc_lines[0] if doc_lines else ""),
            )
            return build

        return decorator

    def get(self, name: str) -> Experiment:
        self._load_builtins()
        try:
            return self._experiments[name]
        except KeyError:
            raise ValueError(f"no experiment named {name!r}; "
                             f"known: {', '.join(self.names())}") from None

    def names(self) -> List[str]:
        self._load_builtins()
        return sorted(self._experiments)

    def describe(self) -> List[Dict[str, object]]:
        """One row per experiment (name, description, axes with defaults)."""
        return [{"experiment": exp.name, "description": exp.description,
                 "axes": {axis: default for axis, default in exp.axes.items()}}
                for exp in (self._experiments[name] for name in self.names())]

    # ------------------------------------------------------------------ #
    def resolve_axes(self, name: str, overrides: Optional[Mapping[str, object]] = None) -> Dict:
        """Defaults merged with coerced overrides; unknown axis names raise."""
        experiment = self.get(name)
        axes = dict(experiment.axes)
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(axes))
        if unknown:
            raise ValueError(f"unknown axis name(s) {unknown} for experiment {name!r}; "
                             f"valid axes: {sorted(axes)}")
        for axis, value in overrides.items():
            axes[axis] = coerce_axis_value(axis, value, experiment.axes[axis])
        return axes

    def plan(self, name: str,
             overrides: Optional[Mapping[str, object]] = None) -> ExperimentPlan:
        """Resolve axes and expand the grid without running anything.

        Both :meth:`run` and the serve daemon start from the same plan, which
        is what guarantees their cell identities (and therefore store keys)
        agree.
        """
        experiment = self.get(name)
        axes = self.resolve_axes(name, overrides)
        tasks = list(experiment.build(axes))
        return ExperimentPlan(experiment=experiment, axes=axes, tasks=tasks,
                              keys=[task.cell_key() for task in tasks])

    def finalize(self, plan: ExperimentPlan, rows: List[Optional[Dict]],
                 wall_clock_s: float, n_jobs: int, n_cached: int) -> Dict:
        """Aggregate completed rows into the experiment's result dict.

        ``rows`` must be in plan-task order.  Shared by :meth:`run` and the
        serve daemon so a served sweep reports the identical result shape
        (aggregated rows, figure id, axes echo, cache accounting) as an
        in-process one.
        """
        grid = GridResult(
            rows=rows,
            wall_clock_s=wall_clock_s,
            n_tasks=len(plan.tasks),
            n_jobs=n_jobs,
            n_cached=n_cached,
        )
        result = plan.experiment.aggregate(grid, plan.axes, plan.tasks)
        result["experiment"] = plan.experiment.name
        result["axes"] = {axis: list(value) if isinstance(value, tuple) else value
                          for axis, value in plan.axes.items()}
        result["cached_cells"] = n_cached
        result["computed_cells"] = len(plan.tasks) - n_cached
        return result

    def run(self, name: str, overrides: Optional[Mapping[str, object]] = None,
            n_jobs: int = 1, store: Optional[RunStore] = None,
            resume: bool = False, profile: bool = False) -> Dict:
        """Run one experiment end to end, optionally persisted and resumable.

        With a ``store``, every completed cell is written incrementally (an
        interrupted run keeps its finished cells); with ``resume=True``,
        cells whose key the store already holds are served from disk instead
        of recomputed.  Rows — cached or fresh — are canonicalized through
        JSON, so serial, sharded, and resumed runs are byte-identical.

        ``profile=True`` runs every cell (serial or pooled) under a
        :class:`~repro.telemetry.profiler.TickProfiler` and returns the
        merged phase report under ``result["profile"]``; with a ``store`` it
        also streams one cumulative metric frame per cell into the store's
        ``metrics.jsonl`` (same stream the serve daemon writes).  Profiling
        is wall-clock observability only: rows and cell keys are identical
        with it on or off.
        """
        plan = self.plan(name, overrides)
        experiment, axes, tasks, keys = plan.experiment, plan.axes, plan.tasks, plan.keys

        cached: Dict[str, Dict] = {}
        if store is not None and resume:
            records = store.load()
            cached = {key: records[key].row for key in keys if key in records}

        pending = [(index, task) for index, task in enumerate(tasks)
                   if keys[index] not in cached]
        rows: List[Optional[Dict]] = [cached.get(key) for key in keys]
        # Model training is the dominant cost of learned grids, so it is
        # driven by the *pending* cells only: a fully-cached --resume trains
        # nothing, a 95%-done resume trains just the models its remaining
        # cells name.  The setup hook (for anything beyond training) is
        # likewise skipped when no cell needs computing.
        log.info("experiment_start", logger="harness", experiment=name,
                 cells=len(tasks), cached=len(cached), pending=len(pending),
                 n_jobs=n_jobs)
        if pending:
            if experiment.setup is not None:
                experiment.setup(axes)
            pretrain_models([task for _, task in pending])

        runner = ParallelRunner(n_jobs)
        producer = "serial" if runner.n_jobs <= 1 else "pool"

        map_fn = experiment.runner
        profile_reports: List[Dict] = []
        sampler = metrics_journal = None
        if profile:
            # Imported lazily so the registry stays importable without the
            # observability plane.
            from repro.obs.metrics import MetricsJournal, MetricsSampler

            map_fn = functools.partial(run_profiled, experiment.runner)
            sampler = MetricsSampler("run")
            if store is not None:
                metrics_journal = MetricsJournal(store.path)

        def on_result(pending_index: int, task, row) -> None:
            if profile:
                # Unwrap before canonicalization: the profile report rides
                # next to the row, never inside it, so profiled rows stay
                # byte-identical to unprofiled ones.
                report, row = row["profile"], row["row"]
                profile_reports.append(report)
                sampler.absorb_report(report)
                sampler.note_cell_done(row)
                if metrics_journal is not None:
                    metrics_journal.append(sampler.sample(current_key=task.cell_key()))
            row = canonical_json(row)
            rows[pending[pending_index][0]] = row
            if store is not None:
                store.put(RunRecord.for_task(task, row, experiment=name,
                                             producer=producer))
            log.debug("cell_done", logger="harness", experiment=name,
                      key=task.cell_key())

        start = time.perf_counter()
        runner.map(map_fn, [task for _, task in pending], on_result=on_result)
        wall_clock_s = time.perf_counter() - start
        log.info("experiment_done", logger="harness", experiment=name,
                 computed=len(pending), cached=len(cached),
                 wall_clock_s=wall_clock_s)
        result = self.finalize(plan, rows, wall_clock_s, runner.n_jobs, len(cached))
        if profile:
            from repro.obs.aggregate import merge_phase_reports

            result["profile"] = merge_phase_reports(profile_reports)
        return result


#: Whether the built-in experiments module has been imported into REGISTRY.
_BUILTINS_LOADED = False

#: The process-wide registry every built-in experiment registers into.
REGISTRY = ExperimentRegistry()

#: Module-level conveniences mirroring the registry instance.
register = REGISTRY.register
run_experiment = REGISTRY.run
experiment_names = REGISTRY.names
