"""Declarative scenario specifications — the single currency of the harness.

Every layer of the experiment stack — training configs, evaluation sweeps,
the CLI, :class:`~repro.harness.parallel.ParallelRunner` shard keys, and the
bench JSON — talks about "a scenario": which scheme runs on which trace over
which topology family under which seed, backed by which trained model, and
whether the run is certified against which property family.
:class:`ScenarioSpec` captures that tuple once, as a frozen, hashable value
with canonical string and JSON round-trips:

* ``spec.key()`` / ``str(spec)`` — the canonical one-line form
  (``scheme=cubic trace=step-12-48 topology=chain(3) seed=7 ...``), parsed
  back by :meth:`ScenarioSpec.parse`.  This is the
  :class:`~repro.harness.store.RunStore` key prefix and the identity that
  flows through grids, CLI flags, and bench rows.
* ``spec.to_json()`` / :meth:`ScenarioSpec.from_json` — the structured form
  stamped into every :class:`~repro.harness.store.RunRecord`.

The module also owns the *string-spec parsing* shared by the CLI, the
benchmarks, and the experiment registry, so family/trace lists are parsed in
exactly one place:

* :func:`parse_topologies` — a comma-separated topology family list,
  validated through :func:`repro.topology.families.parse_topology`;
* :func:`resolve_trace` / :func:`trace_subset` — trace names and trace-kind
  suites (``synthetic`` / ``cellular``) resolved to
  :class:`~repro.traces.trace.BandwidthTrace` objects;
* :data:`PROPERTY_FAMILIES` — the property families reconstructable by name
  inside worker processes (re-exported by :mod:`repro.harness.parallel`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from dataclasses import replace as _dataclass_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.properties import (
    PropertySet,
    deep_buffer_properties,
    robustness_properties,
    shallow_buffer_properties,
)
from repro.seeding import derive_seed
from repro.topology.families import DEFAULT_TOPOLOGY, canonical_topology, parse_topology
from repro.workload.spec import DEFAULT_WORKLOAD, canonical_workload
from repro.traces.cellular import CELLULAR_TRACE_NAMES, cellular_trace_suite, make_cellular_trace
from repro.traces.synthetic import (
    SYNTHETIC_TRACE_NAMES,
    make_synthetic_trace,
    synthetic_trace_suite,
)
from repro.traces.trace import BandwidthTrace

__all__ = [
    "PROPERTY_FAMILIES",
    "TRACE_KINDS",
    "ScenarioSpec",
    "coerce_scalar",
    "parse_bool",
    "parse_topologies",
    "resolve_trace",
    "trace_names",
    "trace_subset",
]

#: Property families reconstructable by name inside worker processes.
PROPERTY_FAMILIES: Dict[str, Callable[[], PropertySet]] = {
    "shallow": shallow_buffer_properties,
    "deep": deep_buffer_properties,
    "robustness": robustness_properties,
}

#: Trace kinds understood by :func:`trace_subset` (grid axes sweep these).
TRACE_KINDS = ("synthetic", "cellular")


# ---------------------------------------------------------------------- #
# Shared string-spec parsing (the one copy the CLI and benchmarks use)
# ---------------------------------------------------------------------- #
_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")


def parse_bool(raw: str) -> bool:
    """The one truthy/falsy-word vocabulary shared by spec and axis parsing."""
    lowered = raw.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    raise ValueError(f"expected a boolean "
                     f"({'/'.join(_TRUE_WORDS + _FALSE_WORDS)}), got {raw!r}")


def coerce_scalar(value: str, template: object):
    """Parse one scalar string by the *template's* type — the single coercion
    rule shared by registry axis overrides (``--set``) and spec surfaces.

    Booleans use :func:`parse_bool`'s vocabulary.  Integer templates accept
    integral float spellings (``"2.0"`` → ``2`` — what a float-formatted axis
    sweep hands back) but reject fractional values with a pointed error
    instead of ``int('0.5')``'s bare ``ValueError``.  Float templates accept
    plain integers (``"2"`` → ``2.0``).  A ``None`` template maps the word
    ``"none"`` to ``None`` and leaves anything else a string.
    """
    if isinstance(template, bool):
        return parse_bool(value)
    if isinstance(template, int):
        try:
            return int(value)
        except ValueError:
            pass
        try:
            as_float = float(value)
        except ValueError:
            raise ValueError(f"expected an integer, got {value!r}") from None
        if not as_float.is_integer():
            raise ValueError(f"expected an integer, got the fractional value {value!r} "
                             "(this axis is integer-typed)")
        return int(as_float)
    if isinstance(template, float):
        try:
            return float(value)
        except ValueError:
            raise ValueError(f"expected a number, got {value!r}") from None
    if template is None and value.lower() == "none":
        return None
    return value


def parse_topologies(raw: str | Sequence[str]) -> Tuple[str, ...]:
    """Parse a comma-separated topology family list into validated specs.

    Accepts either one ``"a,b,c"`` string (CLI flags, ``REPRO_BENCH_*``
    environment variables) or an already-split sequence; every entry is
    validated through :func:`repro.topology.families.parse_topology` so
    malformed specs fail here rather than deep inside a worker.
    """
    if isinstance(raw, str):
        parts = [part.strip() for part in raw.split(",")]
    else:
        parts = [str(part).strip() for part in raw]
    specs = tuple(part for part in parts if part)
    if not specs:
        raise ValueError(f"no topology family specs in {raw!r}")
    for spec in specs:
        parse_topology(spec)
    return specs


def trace_names() -> List[str]:
    """Every trace name :func:`resolve_trace` can rebuild."""
    return list(SYNTHETIC_TRACE_NAMES) + list(CELLULAR_TRACE_NAMES)


def resolve_trace(name: str) -> BandwidthTrace:
    """Rebuild a named trace (the inverse of carrying ``trace.name`` in a spec)."""
    if name in SYNTHETIC_TRACE_NAMES:
        return make_synthetic_trace(name)
    if name in CELLULAR_TRACE_NAMES:
        return make_cellular_trace(name)
    raise ValueError(f"unknown trace {name!r}; known traces: {', '.join(trace_names())}")


def trace_subset(kind: str, count: int) -> List[BandwidthTrace]:
    """The first ``count`` traces of one kind (``synthetic`` or ``cellular``)."""
    if kind == "synthetic":
        return synthetic_trace_suite(subset=count)
    if kind == "cellular":
        return cellular_trace_suite()[:count]
    raise ValueError(f"unknown trace kind {kind!r}; known: {TRACE_KINDS}")


# ---------------------------------------------------------------------- #
# ScenarioSpec
# ---------------------------------------------------------------------- #
#: key() token names, in canonical order, mapped to their dataclass fields.
_KEY_TOKENS = (
    ("scheme", "scheme"),
    ("trace", "trace"),
    ("topology", "topology"),
    ("workload", "workload"),
    ("seed", "seed"),
    ("model", "model_kind"),
    ("train", "model_topologies"),
    ("family", "property_family"),
    ("certify", "certify"),
)
_TOKEN_FIELDS = {token: field for token, field in _KEY_TOKENS}


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: the identity of a single experiment cell.

    ``trace`` is a trace *name* (resolvable via :func:`resolve_trace` when the
    name is from the bundled suites) and ``topology`` a family spec, so the
    whole value is plain strings/ints and travels freely through CLI flags,
    process pools, and JSON.  ``workload`` is a workload spec (who shares the
    network, and when; ``static`` = the legacy single-flow run).
    ``model_kind``/``model_topologies`` identify the learned model backing the
    scheme (``None`` for classical schemes), with ``model_topologies`` naming
    the *training-time* scenario catalog — independent of the evaluation-side
    ``topology``.  ``certify`` marks a certified run over ``property_family``.
    """

    scheme: str
    trace: str
    topology: str = DEFAULT_TOPOLOGY
    workload: str = DEFAULT_WORKLOAD
    seed: int = 1
    model_kind: Optional[str] = None
    model_topologies: Optional[Tuple[str, ...]] = None
    property_family: Optional[str] = None
    certify: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", int(self.seed))
        if self.model_topologies is not None:
            object.__setattr__(self, "model_topologies", tuple(
                canonical_topology(spec)
                for spec in parse_topologies(self.model_topologies)))
        # Canonicalize the family and workload specs (fails fast on malformed
        # ones): "chain( 3 )" == "chain(3)" and "chain" == "chain(2)" name the
        # same topology, "responsive(cubic:1)" == "responsive(cubic)" the same
        # workload, so they must share one key (and contain no whitespace).
        object.__setattr__(self, "topology", canonical_topology(self.topology))
        object.__setattr__(self, "workload", canonical_workload(self.workload))
        for label, value in (("scheme", self.scheme), ("trace", self.trace),
                             ("model_kind", self.model_kind)):
            if value is not None and (not value or any(c in value for c in " \t\n=")):
                raise ValueError(f"{label} {value!r} must be non-empty and contain "
                                 "no whitespace or '=' (it travels in canonical keys)")
        if self.property_family is not None and self.property_family not in PROPERTY_FAMILIES:
            raise ValueError(f"unknown property family {self.property_family!r}; "
                             f"known: {sorted(PROPERTY_FAMILIES)}")
        if self.certify and self.model_kind is None:
            raise ValueError("certify=True requires a learned model_kind")
        if self.model_topologies is not None and self.model_kind is None:
            raise ValueError("model_topologies requires a learned model_kind")

    # ------------------------------------------------------------------ #
    # Canonical string form
    # ------------------------------------------------------------------ #
    def key(self) -> str:
        """The canonical one-line form; ``parse(spec.key()) == spec``.

        Optional fields are emitted only when set, so keys stay short for the
        common classical-scheme cells.
        """
        tokens = [f"scheme={self.scheme}", f"trace={self.trace}",
                  f"topology={self.topology}"]
        # The static workload is elided so every pre-workload key — and hence
        # every existing run-store cell — keeps its exact identity.
        if self.workload != DEFAULT_WORKLOAD:
            tokens.append(f"workload={self.workload}")
        tokens.append(f"seed={self.seed}")
        if self.model_kind is not None:
            tokens.append(f"model={self.model_kind}")
        if self.model_topologies is not None:
            tokens.append(f"train={','.join(self.model_topologies)}")
        if self.property_family is not None:
            tokens.append(f"family={self.property_family}")
        if self.certify:
            tokens.append("certify=1")
        return " ".join(tokens)

    def __str__(self) -> str:
        return self.key()

    @classmethod
    def parse(cls, text: str) -> "ScenarioSpec":
        """Parse the canonical ``key=value`` form back into a spec."""
        values: Dict[str, object] = {}
        for token in text.split():
            name, _, raw = token.partition("=")
            if not _ or name not in _TOKEN_FIELDS:
                raise ValueError(f"malformed scenario token {token!r}; "
                                 f"expected <key>=<value> with key in "
                                 f"{[t for t, _f in _KEY_TOKENS]}")
            field_name = _TOKEN_FIELDS[name]
            if field_name in values:
                raise ValueError(f"duplicate scenario token {name!r} in {text!r}")
            if field_name == "seed":
                values[field_name] = int(raw)
            elif field_name == "model_topologies":
                values[field_name] = parse_topologies(raw)
            elif field_name == "certify":
                try:
                    values[field_name] = parse_bool(raw)
                except ValueError:
                    raise ValueError(f"certify must be boolean-like, got {raw!r}") from None
            else:
                values[field_name] = raw
        for required in ("scheme", "trace"):
            if required not in values:
                raise ValueError(f"scenario spec {text!r} is missing {required}=...")
        return cls(**values)

    def replace(self, **axes) -> "ScenarioSpec":
        """A copy with the given fields changed, re-validated and re-canonical.

        Accepts dataclass field names *and* the ``key()`` token aliases
        (``model`` → ``model_kind``, ``train`` → ``model_topologies``,
        ``family`` → ``property_family``), so callers can speak either the
        canonical-key vocabulary or the field vocabulary.  Unknown names raise
        with the valid list.  The copy runs ``__post_init__`` again, so the
        result is canonicalized (topology/workload spellings collapse) and
        cross-field constraints (``certify`` needs a model, ...) still hold —
        ``spec.replace(**changes).key()`` is always a parseable canonical key.
        """
        field_names = {spec_field.name for spec_field in fields(self)}
        changes: Dict[str, object] = {}
        for name, value in axes.items():
            field_name = _TOKEN_FIELDS.get(name, name)
            if field_name not in field_names:
                valid = sorted(field_names | set(_TOKEN_FIELDS))
                raise ValueError(f"unknown scenario field {name!r}; valid: {valid}")
            if field_name in changes:
                raise ValueError(f"scenario field {field_name!r} set twice "
                                 f"(field name and token alias)")
            changes[field_name] = value
        return _dataclass_replace(self, **changes)

    # ------------------------------------------------------------------ #
    # JSON form
    # ------------------------------------------------------------------ #
    def to_json(self) -> Dict[str, object]:
        """A JSON-safe dict; :meth:`from_json` round-trips it exactly."""
        payload: Dict[str, object] = {
            "scheme": self.scheme,
            "trace": self.trace,
            "topology": self.topology,
            "workload": self.workload,
            "seed": self.seed,
            "model_kind": self.model_kind,
            "model_topologies": (list(self.model_topologies)
                                 if self.model_topologies is not None else None),
            "property_family": self.property_family,
            "certify": self.certify,
        }
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields {unknown}; known: {sorted(known)}")
        values = dict(payload)
        if values.get("model_topologies") is not None:
            values["model_topologies"] = tuple(values["model_topologies"])
        return cls(**values)

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def derived_seed(self, *coordinates) -> int:
        """A stable per-cell seed derived from the canonical key (plus extras).

        Same convention as :func:`repro.seeding.derive_seed`: the value
        depends only on *what* the spec names, never on which worker runs it.
        """
        return derive_seed(self.seed, self.key(), *coordinates)

    def resolve(self) -> BandwidthTrace:
        """The concrete trace this spec names (bundled suites only)."""
        return resolve_trace(self.trace)
