"""Multi-flow experiments: friendliness (Fig. 14) and fairness (Fig. 15).

Friendliness runs the scheme under test against an increasing number of
competing CUBIC flows (and, separately, against one CUBIC flow while the
propagation delay varies), reporting the ratio of the scheme's throughput to
the average CUBIC throughput.  Fairness starts homogeneous flows of the same
scheme staggered in time and reports per-flow throughput convergence plus
Jain's index.

The point functions (:func:`friendliness`, :func:`rtt_friendliness`,
:func:`fairness_convergence`) take scheme-factory closures and run serially.
For grids, :class:`MultiFlowTask` describes one sweep point *declaratively*
(scheme label + model kind instead of a factory closure), so
:func:`run_multiflow_grid` can shard the points across a
:class:`~repro.harness.parallel.ParallelRunner` process pool — every worker
rebuilds its factory from the model zoo, and rows come back in task order,
identical for serial and parallel runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cc.base import CongestionController
from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.link import BottleneckLink
from repro.cc.metrics import jain_fairness_index, throughput_ratio
from repro.cc.netsim import NetworkSimulator
from repro.traces.trace import BandwidthTrace, pps_to_mbps

__all__ = [
    "friendliness",
    "rtt_friendliness",
    "fairness_convergence",
    "MultiFlowTask",
    "run_multiflow_task",
    "run_multiflow_grid",
]

#: Sweep modes understood by :class:`MultiFlowTask`.
MULTIFLOW_MODES = ("friendliness", "rtt_friendliness", "fairness_convergence")


def _flow_throughput_mbps(simulator: NetworkSimulator, flow_id: int, start: float, dt: float) -> float:
    stats = simulator.stats[flow_id]
    mask = stats.times >= start
    acked = stats.acked[mask]
    if acked.size == 0:
        return 0.0
    return pps_to_mbps(acked.sum() / (acked.size * dt))


def friendliness(
    scheme_factory: Callable[[], CongestionController],
    scheme_name: str,
    competing_flows: Sequence[int] = (1, 2, 4),
    bandwidth_mbps: float = 48.0,
    min_rtt: float = 0.02,
    buffer_bdp: float = 1.0,
    duration: float = 20.0,
    dt: float = 0.01,
    skip_seconds: float = 2.0,
    seed: int = 3,
) -> Dict:
    """Throughput ratio of the scheme to competing CUBIC flows (Fig. 14)."""
    rows: List[Dict] = []
    for n_cubic in competing_flows:
        trace = BandwidthTrace.constant(bandwidth_mbps, duration=duration)
        link = BottleneckLink(trace, min_rtt=min_rtt, buffer_bdp=buffer_bdp, seed=seed)
        flows = [Flow(0, scheme_factory())]
        flows.extend(Flow(i + 1, CubicController()) for i in range(n_cubic))
        simulator = NetworkSimulator(link, flows, dt=dt)
        simulator.run(duration)
        scheme_throughput = _flow_throughput_mbps(simulator, 0, skip_seconds, dt)
        cubic_throughputs = [
            _flow_throughput_mbps(simulator, i + 1, skip_seconds, dt) for i in range(n_cubic)
        ]
        rows.append({
            "scheme": scheme_name,
            "competing_cubic_flows": n_cubic,
            "scheme_throughput_mbps": scheme_throughput,
            "mean_cubic_throughput_mbps": float(np.mean(cubic_throughputs)),
            "throughput_ratio": throughput_ratio(scheme_throughput, cubic_throughputs),
        })
    return {"figure": "14", "mode": "flow-count", "rows": rows}


def rtt_friendliness(
    scheme_factory: Callable[[], CongestionController],
    scheme_name: str,
    rtts_ms: Sequence[float] = (20.0, 50.0, 100.0),
    bandwidth_mbps: float = 48.0,
    buffer_bdp: float = 1.0,
    duration: float = 20.0,
    dt: float = 0.01,
    skip_seconds: float = 2.0,
    seed: int = 3,
) -> Dict:
    """Throughput ratio against one CUBIC flow while the propagation delay varies."""
    rows: List[Dict] = []
    for rtt_ms in rtts_ms:
        trace = BandwidthTrace.constant(bandwidth_mbps, duration=duration)
        link = BottleneckLink(trace, min_rtt=rtt_ms / 1000.0, buffer_bdp=buffer_bdp, seed=seed)
        flows = [Flow(0, scheme_factory()), Flow(1, CubicController())]
        simulator = NetworkSimulator(link, flows, dt=dt)
        simulator.run(duration)
        scheme_throughput = _flow_throughput_mbps(simulator, 0, skip_seconds, dt)
        cubic_throughput = _flow_throughput_mbps(simulator, 1, skip_seconds, dt)
        rows.append({
            "scheme": scheme_name,
            "rtt_ms": rtt_ms,
            "scheme_throughput_mbps": scheme_throughput,
            "cubic_throughput_mbps": cubic_throughput,
            "throughput_ratio": throughput_ratio(scheme_throughput, [cubic_throughput]),
        })
    return {"figure": "14", "mode": "rtt", "rows": rows}


def fairness_convergence(
    scheme_factory: Callable[[], CongestionController],
    scheme_name: str,
    n_flows: int = 3,
    join_interval: float = 12.0,
    bandwidth_mbps: float = 48.0,
    min_rtt: float = 0.02,
    buffer_bdp: float = 1.0,
    duration: Optional[float] = None,
    dt: float = 0.01,
    seed: int = 3,
) -> Dict:
    """Homogeneous flows joining every ``join_interval`` seconds (Fig. 15)."""
    duration = duration if duration is not None else n_flows * join_interval + join_interval
    trace = BandwidthTrace.constant(bandwidth_mbps, duration=duration)
    link = BottleneckLink(trace, min_rtt=min_rtt, buffer_bdp=buffer_bdp, seed=seed)
    flows = [Flow(i, scheme_factory(), start_time=i * join_interval) for i in range(n_flows)]
    simulator = NetworkSimulator(link, flows, dt=dt)
    simulator.run(duration)

    # Per-flow throughput time series (1-second buckets) for the convergence
    # plot.  Keys are stringified flow ids so the row shape is JSON-stable —
    # identical whether it comes from run_multiflow_grid directly or from a
    # registry run store (which round-trips rows through JSON).
    bucket = 1.0
    n_buckets = int(duration / bucket)
    series: Dict[str, List[float]] = {}
    for flow_id in range(n_flows):
        stats = simulator.stats[flow_id]
        per_bucket = []
        for b in range(n_buckets):
            mask = (stats.times >= b * bucket) & (stats.times < (b + 1) * bucket)
            per_bucket.append(pps_to_mbps(stats.acked[mask].sum() / bucket))
        series[str(flow_id)] = per_bucket

    # Fairness over the final window where every flow is active.
    final_start = (n_flows - 1) * join_interval + 2.0
    final_throughputs = [
        _flow_throughput_mbps(simulator, flow_id, final_start, dt) for flow_id in range(n_flows)
    ]
    return {
        "figure": "15",
        "scheme": scheme_name,
        "series_mbps": series,
        "final_throughputs_mbps": final_throughputs,
        "jain_index": jain_fairness_index(final_throughputs),
    }


# ---------------------------------------------------------------------- #
# Declarative multi-flow grids (sharded through ParallelRunner)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class MultiFlowTask:
    """One picklable sweep point of a friendliness/fairness grid.

    ``mode`` selects the experiment and ``value`` is that mode's swept knob:
    the number of competing CUBIC flows (``friendliness``), the propagation
    RTT in milliseconds (``rtt_friendliness``), or the number of homogeneous
    flows (``fairness_convergence``).  ``model_kind`` is None for classical
    schemes; learned schemes are rebuilt from the model zoo inside the worker
    (instant when the parent trained them before forking), so no verifier or
    policy closure ever crosses the process boundary.
    """

    mode: str
    scheme: str
    value: float
    model_kind: Optional[str] = None
    training_steps: int = 800
    model_seed: int = 1
    bandwidth_mbps: float = 48.0
    min_rtt: float = 0.02
    buffer_bdp: float = 1.0
    #: None = the mode's own default (20 s for the friendliness modes; the
    #: join-schedule-derived length for fairness_convergence).
    duration: Optional[float] = None
    join_interval: float = 12.0
    seed: int = 3
    tags: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in MULTIFLOW_MODES:
            raise ValueError(f"unknown multi-flow mode {self.mode!r}; known: {MULTIFLOW_MODES}")
        if self.value <= 0:
            raise ValueError("value must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive")

    def cell_key(self) -> str:
        """The resumable-store key of this sweep point (see
        :meth:`repro.harness.parallel.ExperimentTask.cell_key`)."""
        from repro.harness.store import fingerprint

        extras = {
            # The exact swept value lives in the fingerprint — the %g display
            # below is lossy (6 significant digits) and must not be identity.
            "value": self.value,
            "model_kind": self.model_kind,
            "training_steps": self.training_steps,
            "model_seed": self.model_seed,
            "bandwidth_mbps": self.bandwidth_mbps,
            "min_rtt": self.min_rtt,
            "buffer_bdp": self.buffer_bdp,
            "duration": self.duration,
            "join_interval": self.join_interval,
            "tags": dict(self.tags),
        }
        return (f"multiflow={self.mode} scheme={self.scheme} value={self.value:g} "
                f"seed={self.seed} #{fingerprint(extras)}")


def _task_scheme_factory(task: MultiFlowTask) -> Callable[[], CongestionController]:
    # Imported lazily: the zoo pulls in the trainer stack, which multi-flow
    # grids over classical schemes never need.
    from repro.harness.evaluate import scheme_factory

    if task.model_kind is None:
        return scheme_factory(task.scheme)
    from repro.harness.models import get_trained_model

    model = get_trained_model(task.model_kind, training_steps=task.training_steps,
                              seed=task.model_seed)
    return scheme_factory(task.scheme, model=model, seed=task.seed)


def run_multiflow_task(task: MultiFlowTask) -> Dict:
    """Run one sweep point and return its report row (module-level: picklable)."""
    factory = _task_scheme_factory(task)
    row: Dict = {"mode": task.mode, "scheme": task.scheme, "value": task.value}
    row.update(task.tags)
    if task.mode == "friendliness":
        duration = task.duration if task.duration is not None else 20.0
        result = friendliness(factory, task.scheme, competing_flows=(int(task.value),),
                              bandwidth_mbps=task.bandwidth_mbps, min_rtt=task.min_rtt,
                              buffer_bdp=task.buffer_bdp, duration=duration, seed=task.seed)
        row.update(result["rows"][0])
    elif task.mode == "rtt_friendliness":
        duration = task.duration if task.duration is not None else 20.0
        result = rtt_friendliness(factory, task.scheme, rtts_ms=(task.value,),
                                  bandwidth_mbps=task.bandwidth_mbps,
                                  buffer_bdp=task.buffer_bdp, duration=duration,
                                  seed=task.seed)
        row.update(result["rows"][0])
    else:  # fairness_convergence
        result = fairness_convergence(factory, task.scheme, n_flows=int(task.value),
                                      join_interval=task.join_interval,
                                      bandwidth_mbps=task.bandwidth_mbps, min_rtt=task.min_rtt,
                                      buffer_bdp=task.buffer_bdp, duration=task.duration,
                                      seed=task.seed)
        row.update({
            "jain_index": result["jain_index"],
            "final_throughputs_mbps": result["final_throughputs_mbps"],
            "series_mbps": result["series_mbps"],
        })
    return row


def run_multiflow_grid(tasks: Sequence[MultiFlowTask], n_jobs: int = 1):
    """Shard a multi-flow task grid over a process pool.

    Returns a :class:`~repro.harness.parallel.GridResult` whose rows are in
    task order (serial and parallel runs are identical).
    """
    # Imported lazily to keep fairness importable without the harness stack.
    from repro.harness.parallel import ParallelRunner

    return ParallelRunner(n_jobs).run(tasks, fn=run_multiflow_task)
