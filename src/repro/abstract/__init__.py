"""Abstract interpretation substrate for Canopy.

This package implements the box (hyper-interval) abstract domain used by the
Canopy verifier (Section 3.2 of the paper), together with sound abstract
transformers for every operation appearing in the Orca controller pipeline:
affine layers, ReLU, tanh, element-wise arithmetic and the ``2^(2a) * cwnd``
post-network computation (Eq. 1).

The key objects are:

* :class:`repro.abstract.interval.Interval` — a scalar/vector interval with
  sound arithmetic.
* :class:`repro.abstract.box.Box` — the (center, deviation) representation of
  an ``m``-dimensional hyper-interval used for abstract states ``s#``.
* :mod:`repro.abstract.transformers` — sound lifted counterparts ``f#`` of the
  concrete operations ``f``.
* :func:`repro.abstract.propagate.propagate_mlp` — interval bound propagation
  (IBP) through a :class:`repro.nn.mlp.MLP`.
"""

from repro.abstract.box import Box
from repro.abstract.interval import Interval
from repro.abstract.propagate import propagate_mlp, propagate_sequential

__all__ = [
    "Box",
    "Interval",
    "propagate_mlp",
    "propagate_sequential",
]
