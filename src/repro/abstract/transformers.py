"""Sound abstract transformers for the operations used in Canopy.

Every function here takes one or more :class:`~repro.abstract.box.Box` values
(or intervals / concrete values, as noted) and returns a Box whose
concretization contains the image of the concrete inputs, i.e. the defining
soundness condition ``γ(f#(s#)) ⊇ {f(s) : s ∈ γ(s#)}`` holds.

Beyond the neural-network layers (affine, ReLU, tanh) described in Section 3.2
of the paper, Canopy needs a transformer for the post-network cwnd computation
(Eq. 1): ``cwnd = 2^(2a) · cwnd_TCP``, and for the derived actions used in the
property postconditions (Δcwnd and the fractional cwnd change of P5).

All transformers are batch-transparent: handed a batched box (``lo``/``hi`` of
shape ``(N, d)``, see :mod:`repro.abstract.box`) they transform all ``N``
component boxes in the same numpy calls, which is what makes the batched
verifier a single-propagation-per-property engine.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.abstract.box import Box
from repro.abstract.interval import Interval

__all__ = [
    "affine",
    "relu",
    "tanh",
    "add",
    "subtract",
    "scale",
    "monotone",
    "exp2",
    "cwnd_from_action",
    "delta_cwnd",
    "cwnd_change_fraction",
]


def affine(box: Box, weight: np.ndarray, bias: np.ndarray | None = None) -> Box:
    """Affine layer transformer ``f#(s#) = (W b_c + b, |W| b_e)``."""
    return box.affine(weight, bias)


def relu(box: Box) -> Box:
    """Element-wise ReLU transformer (exact for the box domain)."""
    return box.relu()


def tanh(box: Box) -> Box:
    """Element-wise tanh transformer (exact; tanh is monotone)."""
    return box.tanh()


def add(lhs: Box, rhs: Box) -> Box:
    """Element-wise addition of two independent abstract values."""
    return Box(lhs.center + rhs.center, lhs.deviation + rhs.deviation)


def subtract(lhs: Box, rhs: Box) -> Box:
    """Element-wise subtraction of two independent abstract values."""
    return Box(lhs.center - rhs.center, lhs.deviation + rhs.deviation)


def scale(box: Box, factor) -> Box:
    """Multiplication by a concrete (possibly negative) factor."""
    return box.scale(factor)


def monotone(box: Box, fn: Callable[[np.ndarray], np.ndarray]) -> Box:
    """Lift an element-wise non-decreasing concrete function ``fn``.

    Exact for the box domain because the extrema of a monotone function over a
    box are attained at the box corners, dimension-wise.
    """
    upper = fn(box.hi)
    lower = fn(box.lo)
    return Box((upper + lower) / 2.0, (upper - lower) / 2.0)


def exp2(box: Box) -> Box:
    """``2^x`` transformer (monotone)."""
    return monotone(box, np.exp2)


def cwnd_from_action(action: Box, cwnd_tcp: float, action_clip: tuple[float, float] = (-1.0, 1.0)) -> Box:
    """Abstract counterpart of Orca's cwnd map (Eq. 1).

    ``cwnd = 2^(2a) * cwnd_TCP`` with ``a`` clipped to ``action_clip`` — the
    Orca agent's output layer is a tanh scaled into [-1, 1], but we clip
    defensively so the transformer stays sound for any upstream network.
    ``cwnd_TCP`` is the concrete TCP-suggested window at this step (kept
    concrete in Canopy; only the network-state variables of interest are
    abstracted).
    """
    if cwnd_tcp < 0:
        raise ValueError("cwnd_tcp must be non-negative")
    lo_a, hi_a = action_clip
    clipped = Box.from_bounds(np.clip(action.lo, lo_a, hi_a), np.clip(action.hi, lo_a, hi_a))
    doubled = scale(clipped, 2.0)
    gain = exp2(doubled)
    return scale(gain, float(cwnd_tcp))


def delta_cwnd(cwnd: Box, cwnd_prev: float) -> Box:
    """Δcwnd# = cwnd# − cwnd_{i−1}, the checked action for P1–P4."""
    return cwnd.shift(-float(cwnd_prev))


def cwnd_change_fraction(cwnd: Box, cwnd_ref: float) -> Box:
    """(cwnd# − cwnd_i) / cwnd_i, the checked action for P5 (robustness)."""
    if cwnd_ref <= 0:
        raise ValueError("cwnd_ref must be positive")
    return cwnd.shift(-float(cwnd_ref)).scale(1.0 / float(cwnd_ref))


def interval_of(box_or_interval) -> Interval:
    """Normalize a Box or Interval argument to an Interval."""
    if isinstance(box_or_interval, Box):
        return box_or_interval.to_interval()
    if isinstance(box_or_interval, Interval):
        return box_or_interval
    raise TypeError(f"expected Box or Interval, got {type(box_or_interval)!r}")
