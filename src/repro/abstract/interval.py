"""Sound interval arithmetic.

The :class:`Interval` class represents element-wise closed intervals
``[lo, hi]`` over numpy arrays (scalars are promoted to 0-d arrays).  All
operations are *sound over-approximations*: for every concrete value ``x`` in
the input interval, the concrete result of the operation lies inside the
returned interval.

Intervals are the user-facing face of the box domain (Section 3.2 of the
Canopy paper): a :class:`repro.abstract.box.Box` is just the (center,
deviation) encoding of the same object, convenient for IBP through affine
layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

ArrayLike = Union[float, int, Sequence[float], np.ndarray]

__all__ = ["Interval"]


def _as_array(value: ArrayLike) -> np.ndarray:
    return np.asarray(value, dtype=np.float64)


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``, element-wise over numpy arrays."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = _as_array(self.lo)
        hi = _as_array(self.hi)
        lo, hi = np.broadcast_arrays(lo, hi)
        if np.any(lo > hi + 1e-12):
            raise ValueError(f"Interval lower bound exceeds upper bound: lo={lo}, hi={hi}")
        object.__setattr__(self, "lo", np.array(lo, dtype=np.float64))
        object.__setattr__(self, "hi", np.array(hi, dtype=np.float64))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def point(cls, value: ArrayLike) -> "Interval":
        """An interval containing a single concrete point."""
        arr = _as_array(value)
        return cls(arr, arr.copy())

    @classmethod
    def from_center(cls, center: ArrayLike, deviation: ArrayLike) -> "Interval":
        """Build an interval from a center and non-negative deviation."""
        center = _as_array(center)
        deviation = _as_array(deviation)
        if np.any(deviation < 0):
            raise ValueError("deviation must be non-negative")
        return cls(center - deviation, center + deviation)

    @classmethod
    def hull(cls, intervals: Iterable["Interval"]) -> "Interval":
        """The smallest interval containing every interval in ``intervals``."""
        intervals = list(intervals)
        if not intervals:
            raise ValueError("hull() of an empty collection is undefined")
        lo = np.minimum.reduce([iv.lo for iv in intervals])
        hi = np.maximum.reduce([iv.hi for iv in intervals])
        return cls(lo, hi)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def deviation(self) -> np.ndarray:
        return (self.hi - self.lo) / 2.0

    @property
    def width(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def shape(self) -> tuple:
        return self.lo.shape

    def is_point(self, tol: float = 0.0) -> bool:
        return bool(np.all(self.width <= tol))

    def contains(self, value: ArrayLike, tol: float = 1e-9) -> bool:
        arr = _as_array(value)
        return bool(np.all(arr >= self.lo - tol) and np.all(arr <= self.hi + tol))

    def contains_interval(self, other: "Interval", tol: float = 1e-9) -> bool:
        return bool(np.all(other.lo >= self.lo - tol) and np.all(other.hi <= self.hi + tol))

    def intersects(self, other: "Interval") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def intersection(self, other: "Interval") -> "Interval | None":
        """Element-wise intersection, or ``None`` if empty in any dimension."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return Interval(lo, hi)

    def volume(self) -> float:
        """Product of widths over all dimensions (length for 1-d)."""
        return float(np.prod(self.width))

    def overlap_fraction(self, target: "Interval") -> float:
        """Fraction of *this* interval's volume that lies inside ``target``.

        This implements the smoothed QC feedback measure of Eq. 6: the relative
        volume of the output region contained in the allowed region.  For
        degenerate (zero-width) intervals the fraction is 1.0 when the point
        lies inside ``target`` and 0.0 otherwise.
        """
        inter = self.intersection(target)
        if inter is None:
            return 0.0
        own = self.width
        if np.all(own <= 0):
            return 1.0 if target.contains(self.center) else 0.0
        # Per-dimension fractional overlap; degenerate dims count as 1 if inside.
        fracs = np.where(own > 0, inter.width / np.where(own > 0, own, 1.0), 1.0)
        return float(np.prod(np.clip(fracs, 0.0, 1.0)))

    # ------------------------------------------------------------------ #
    # Arithmetic (all sound)
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Interval | ArrayLike") -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.lo + other.lo, self.hi + other.hi)
        arr = _as_array(other)
        return Interval(self.lo + arr, self.hi + arr)

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval | ArrayLike") -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.lo - other.hi, self.hi - other.lo)
        arr = _as_array(other)
        return Interval(self.lo - arr, self.hi - arr)

    def __rsub__(self, other: ArrayLike) -> "Interval":
        return (-self) + other

    def __mul__(self, other: "Interval | ArrayLike") -> "Interval":
        if isinstance(other, Interval):
            candidates = [
                self.lo * other.lo,
                self.lo * other.hi,
                self.hi * other.lo,
                self.hi * other.hi,
            ]
            return Interval(np.minimum.reduce(candidates), np.maximum.reduce(candidates))
        arr = _as_array(other)
        lo = np.where(arr >= 0, self.lo * arr, self.hi * arr)
        hi = np.where(arr >= 0, self.hi * arr, self.lo * arr)
        return Interval(lo, hi)

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | ArrayLike") -> "Interval":
        if isinstance(other, Interval):
            if np.any((other.lo <= 0) & (other.hi >= 0)):
                raise ZeroDivisionError("interval divisor straddles zero")
            return self * Interval(1.0 / other.hi, 1.0 / other.lo)
        arr = _as_array(other)
        if np.any(arr == 0):
            raise ZeroDivisionError("division by zero")
        lo = np.where(arr > 0, self.lo / arr, self.hi / arr)
        hi = np.where(arr > 0, self.hi / arr, self.lo / arr)
        return Interval(lo, hi)

    # ------------------------------------------------------------------ #
    # Monotone / shape functions
    # ------------------------------------------------------------------ #
    def apply_monotone(self, fn) -> "Interval":
        """Apply an element-wise non-decreasing function to the interval."""
        return Interval(fn(self.lo), fn(self.hi))

    def relu(self) -> "Interval":
        return self.apply_monotone(lambda x: np.maximum(x, 0.0))

    def tanh(self) -> "Interval":
        return self.apply_monotone(np.tanh)

    def sigmoid(self) -> "Interval":
        return self.apply_monotone(lambda x: 1.0 / (1.0 + np.exp(-x)))

    def exp(self) -> "Interval":
        return self.apply_monotone(np.exp)

    def exp2(self) -> "Interval":
        return self.apply_monotone(np.exp2)

    def clip(self, lo: float, hi: float) -> "Interval":
        return Interval(np.clip(self.lo, lo, hi), np.clip(self.hi, lo, hi))

    def abs(self) -> "Interval":
        lo = np.where((self.lo <= 0) & (self.hi >= 0), 0.0, np.minimum(np.abs(self.lo), np.abs(self.hi)))
        hi = np.maximum(np.abs(self.lo), np.abs(self.hi))
        return Interval(lo, hi)

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #
    def split(self, n: int, axis: int = 0) -> list:
        """Split the interval into ``n`` equal-width pieces along ``axis``.

        Used for constructing the ``N`` QC components (Section 4.3.1).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if self.lo.ndim == 0:
            edges = np.linspace(float(self.lo), float(self.hi), n + 1)
            return [Interval(edges[i], edges[i + 1]) for i in range(n)]
        pieces = []
        edges = np.linspace(self.lo, self.hi, n + 1, axis=0)
        for i in range(n):
            lo_slice = np.take(edges, i, axis=0)
            hi_slice = np.take(edges, i + 1, axis=0)
            pieces.append(Interval(lo_slice, hi_slice))
        return pieces

    def split_dims(self, n: int, dims: Sequence[int]) -> list:
        """Split only the listed dimensions into ``n`` aligned slices.

        All dimensions in ``dims`` are sliced *jointly* (slice ``i`` takes the
        ``i``-th sub-range in each listed dimension); the other dimensions stay
        untouched.  This mirrors Canopy's partitioning, where the variable of
        interest is abstracted over the past ``k`` steps and partitioned while
        the remaining observation dimensions stay concrete.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if self.lo.ndim != 1:
            raise ValueError("split_dims requires a 1-d interval")
        pieces = []
        for i in range(n):
            lo = self.lo.copy()
            hi = self.hi.copy()
            for d in dims:
                width = self.hi[d] - self.lo[d]
                lo[d] = self.lo[d] + width * i / n
                hi[d] = self.lo[d] + width * (i + 1) / n
            pieces.append(Interval(lo, hi))
        return pieces

    def select(self, indices: Sequence[int]) -> "Interval":
        """Project onto a subset of dimensions (1-d intervals only)."""
        idx = np.asarray(indices, dtype=int)
        return Interval(self.lo[idx], self.hi[idx])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval(lo={self.lo!r}, hi={self.hi!r})"
