"""Interval bound propagation (IBP) through numpy neural networks.

Canopy wraps its controller with composable per-layer abstractions (Sonnet in
the paper's prototype) and pushes an abstract input box through the network.
Here we do the same for the :mod:`repro.nn` layer set: each concrete layer has
a sound abstract counterpart from :mod:`repro.abstract.transformers`, and
:func:`propagate_sequential` chains them.

The output box over-approximates the set of actions the controller can emit
for any concrete input in the box — the object ``a# = π#(s#)`` of
Section 4.3.1.

Every propagation function also accepts *batched* boxes (``lo``/``hi`` of
shape ``(N, d)``, see :mod:`repro.abstract.box`): the affine transformer
contracts the trailing feature axis and the element-wise transformers apply
per element, so all ``N`` component boxes move through the network in a single
numpy call per layer.  :func:`propagate_mlp_batched` is the explicit entry
point used by the batched verifier.
"""

from __future__ import annotations

from typing import Iterable

from repro.abstract.box import Box
from repro.abstract import transformers

__all__ = ["propagate_layer", "propagate_sequential", "propagate_mlp", "propagate_mlp_batched"]


def propagate_layer(layer, box: Box) -> Box:
    """Push an abstract box through a single :mod:`repro.nn` layer."""
    # Imported lazily to avoid an import cycle at package-init time.
    from repro.nn.layers import Dense, Identity, ReLU, Sequential, Tanh

    if isinstance(layer, Dense):
        return transformers.affine(box, layer.weight, layer.bias)
    if isinstance(layer, ReLU):
        return transformers.relu(box)
    if isinstance(layer, Tanh):
        return transformers.tanh(box)
    if isinstance(layer, Identity):
        return box
    if isinstance(layer, Sequential):
        return propagate_sequential(layer.layers, box)
    raise TypeError(f"no abstract transformer registered for layer type {type(layer).__name__}")


def propagate_sequential(layers: Iterable, box: Box) -> Box:
    """Push an abstract box through a sequence of layers in order."""
    current = box
    for layer in layers:
        current = propagate_layer(layer, current)
    return current


def propagate_mlp(model, box: Box) -> Box:
    """Push an abstract box through an :class:`repro.nn.mlp.MLP` (or Sequential).

    The input box dimensionality must match the model's input features.
    """
    in_features = getattr(model, "in_features", None)
    if in_features is not None and box.center.shape[-1] != in_features:
        raise ValueError(
            f"input box has {box.center.shape[-1]} dims but model expects {in_features}"
        )
    return propagate_sequential(model.layers, box)


def propagate_mlp_batched(model, box: Box) -> Box:
    """Push a batched box of shape ``(N, d)`` through an MLP in one pass.

    The result is a batched box of shape ``(N, out_features)`` whose row ``i``
    equals ``propagate_mlp(model, box.unstack()[i])`` up to floating-point
    associativity (the differential test suite pins them to within 1e-12).
    """
    if box.ndim != 2:
        raise ValueError(f"batched propagation expects lo/hi of shape (N, d), got ndim={box.ndim}")
    in_features = getattr(model, "in_features", None)
    if in_features is not None and box.center.shape[-1] != in_features:
        raise ValueError(
            f"input box has {box.center.shape[-1]} dims but model expects {in_features}"
        )
    return propagate_sequential(model.layers, box)
