"""The box abstract domain ``s# = (b_c, b_e)#``.

Section 3.2 of the Canopy paper represents abstract states as boxes: a pair of
a center vector ``b_c`` and a non-negative deviation vector ``b_e``.  The box
encodes every concrete state whose ``i``-th coordinate lies in
``[(b_c)_i - (b_e)_i, (b_c)_i + (b_e)_i]``.

A :class:`Box` is interchangeable with a :class:`repro.abstract.interval.Interval`
(same concretization); the box form is the natural one for interval bound
propagation through affine layers because

    f#(s#) = (M @ b_c + b, |M| @ b_e)

is exact for affine ``f``.

Batched convention
------------------

A Box may carry a leading batch axis: ``center``/``deviation`` (and hence
``lo``/``hi``) of shape ``(N, d)`` represent ``N`` independent ``d``-dimensional
boxes.  Every element-wise transformer (:meth:`Box.relu`, :meth:`Box.tanh`,
:meth:`Box.scale`, :meth:`Box.shift`) applies unchanged to the whole stack, and
:meth:`Box.affine` contracts the trailing feature axis, so one numpy call
propagates all ``N`` boxes at once.  :meth:`Box.stack` builds a batched box
from per-component boxes, :meth:`Box.split_batched` partitions a 1-d box into
its ``N`` QC components directly in batched form, and :meth:`Box.unstack`
recovers the per-component view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.abstract.interval import Interval

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """Box abstract value: ``center ± deviation`` element-wise."""

    center: np.ndarray
    deviation: np.ndarray

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64)
        deviation = np.asarray(self.deviation, dtype=np.float64)
        center, deviation = np.broadcast_arrays(center, deviation)
        if np.any(deviation < -1e-12):
            raise ValueError("box deviation must be non-negative")
        object.__setattr__(self, "center", np.array(center, dtype=np.float64))
        object.__setattr__(self, "deviation", np.array(np.maximum(deviation, 0.0), dtype=np.float64))

    # ------------------------------------------------------------------ #
    # Constructors / conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def point(cls, value) -> "Box":
        arr = np.asarray(value, dtype=np.float64)
        return cls(arr, np.zeros_like(arr))

    @classmethod
    def from_interval(cls, interval: Interval) -> "Box":
        return cls(interval.center, interval.deviation)

    @classmethod
    def from_bounds(cls, lo, hi) -> "Box":
        return cls.from_interval(Interval(lo, hi))

    @classmethod
    def stack(cls, boxes: Sequence["Box"]) -> "Box":
        """Stack same-shape boxes along a new leading batch axis."""
        boxes = list(boxes)
        if not boxes:
            raise ValueError("cannot stack an empty sequence of boxes")
        return cls(
            np.stack([box.center for box in boxes], axis=0),
            np.stack([box.deviation for box in boxes], axis=0),
        )

    @classmethod
    def abstraction(cls, concrete_states: Sequence[np.ndarray]) -> "Box":
        """The abstraction function α(S): smallest box containing all states."""
        states = [np.asarray(s, dtype=np.float64) for s in concrete_states]
        if not states:
            raise ValueError("cannot abstract an empty set of states")
        stacked = np.stack(states, axis=0)
        lo = stacked.min(axis=0)
        hi = stacked.max(axis=0)
        return cls.from_bounds(lo, hi)

    def to_interval(self) -> Interval:
        """The concretization bounds γ(s#) as an interval."""
        return Interval(self.center - self.deviation, self.center + self.deviation)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def lo(self) -> np.ndarray:
        return self.center - self.deviation

    @property
    def hi(self) -> np.ndarray:
        return self.center + self.deviation

    @property
    def shape(self) -> tuple:
        return self.center.shape

    @property
    def ndim(self) -> int:
        return self.center.ndim

    def volume(self) -> float:
        return float(np.prod(2.0 * self.deviation))

    def contains(self, value, tol: float = 1e-9) -> bool:
        return self.to_interval().contains(value, tol=tol)

    def contains_box(self, other: "Box", tol: float = 1e-9) -> bool:
        return self.to_interval().contains_interval(other.to_interval(), tol=tol)

    # ------------------------------------------------------------------ #
    # Abstract transformers (box-native forms; see paper Section 3.2)
    # ------------------------------------------------------------------ #
    def affine(self, weight: np.ndarray, bias: np.ndarray | None = None) -> "Box":
        """``f(x) = W x + b`` lifted to the box domain: ``(W b_c + b, |W| b_e)``.

        Works on single boxes (``center`` of shape ``(d,)``) and batched boxes
        (``center`` of shape ``(N, d)``): the feature axis is always the last
        one, so a batched box propagates through the layer in one matmul.
        """
        weight = np.asarray(weight, dtype=np.float64)
        if self.center.ndim >= 2:
            center = self.center @ weight.T
            deviation = self.deviation @ np.abs(weight).T
        else:
            center = weight @ self.center
            deviation = np.abs(weight) @ self.deviation
        if bias is not None:
            center = center + np.asarray(bias, dtype=np.float64)
        return Box(center, deviation)

    def add_elements(self, target: int, lhs: int, rhs: int) -> "Box":
        """The paper's 'Add' transformer.

        Replaces element ``target`` with the sum of elements ``lhs`` and
        ``rhs``; implemented through the selector matrix M of Section 3.2.
        """
        m = self.center.shape[-1]
        matrix = np.eye(m)
        matrix[target, :] = 0.0
        matrix[target, lhs] = 1.0
        matrix[target, rhs] = 1.0
        return self.affine(matrix)

    def relu(self) -> "Box":
        """ReLU transformer from Section 3.2 (midpoint/half-width of end-point images)."""
        upper = np.maximum(self.center + self.deviation, 0.0)
        lower = np.maximum(self.center - self.deviation, 0.0)
        return Box((upper + lower) / 2.0, (upper - lower) / 2.0)

    def tanh(self) -> "Box":
        upper = np.tanh(self.center + self.deviation)
        lower = np.tanh(self.center - self.deviation)
        return Box((upper + lower) / 2.0, (upper - lower) / 2.0)

    def scale(self, factor) -> "Box":
        factor = np.asarray(factor, dtype=np.float64)
        return Box(self.center * factor, self.deviation * np.abs(factor))

    def shift(self, offset) -> "Box":
        return Box(self.center + np.asarray(offset, dtype=np.float64), self.deviation.copy())

    def join(self, other: "Box") -> "Box":
        """Least upper bound (box hull) of two boxes."""
        lo = np.minimum(self.lo, other.lo)
        hi = np.maximum(self.hi, other.hi)
        return Box.from_bounds(lo, hi)

    def split(self, n: int, dims: Sequence[int] | None = None) -> list:
        """Partition into ``n`` components along ``dims`` (default: all dims jointly)."""
        interval = self.to_interval()
        if interval.lo.ndim == 0:
            return [Box.from_interval(piece) for piece in interval.split(n)]
        if dims is None:
            dims = list(range(interval.lo.shape[0]))
        return [Box.from_interval(piece) for piece in interval.split_dims(n, dims)]

    def split_batched(self, n: int, dims: Sequence[int] | None = None) -> "Box":
        """Partition a 1-d box into ``n`` components as one batched Box.

        Row ``i`` of the result is numerically identical to ``self.split(n,
        dims)[i]`` — the slicing arithmetic mirrors
        :meth:`repro.abstract.interval.Interval.split_dims` exactly — but the
        components come back stacked along a leading batch axis of size ``n``,
        ready for one-shot propagation.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if self.ndim != 1:
            raise ValueError("split_batched requires a 1-d box")
        lo = self.lo
        hi = self.hi
        if dims is None:
            dims = list(range(lo.shape[0]))
        dims = np.asarray(list(dims), dtype=int)
        lo_batched = np.tile(lo, (n, 1))
        hi_batched = np.tile(hi, (n, 1))
        if dims.size:
            index = np.arange(n, dtype=np.float64)[:, None]
            width = hi[dims] - lo[dims]
            lo_batched[:, dims] = lo[dims] + width * index / n
            hi_batched[:, dims] = lo[dims] + width * (index + 1) / n
        return Box.from_bounds(lo_batched, hi_batched)

    def unstack(self) -> list:
        """The per-component boxes of a batched box (inverse of :meth:`stack`)."""
        if self.ndim < 2:
            raise ValueError("unstack requires a batched box")
        return [Box(self.center[i], self.deviation[i]) for i in range(self.center.shape[0])]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Box(center={self.center!r}, deviation={self.deviation!r})"
