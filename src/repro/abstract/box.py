"""The box abstract domain ``s# = (b_c, b_e)#``.

Section 3.2 of the Canopy paper represents abstract states as boxes: a pair of
a center vector ``b_c`` and a non-negative deviation vector ``b_e``.  The box
encodes every concrete state whose ``i``-th coordinate lies in
``[(b_c)_i - (b_e)_i, (b_c)_i + (b_e)_i]``.

A :class:`Box` is interchangeable with a :class:`repro.abstract.interval.Interval`
(same concretization); the box form is the natural one for interval bound
propagation through affine layers because

    f#(s#) = (M @ b_c + b, |M| @ b_e)

is exact for affine ``f``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.abstract.interval import Interval

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """Box abstract value: ``center ± deviation`` element-wise."""

    center: np.ndarray
    deviation: np.ndarray

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64)
        deviation = np.asarray(self.deviation, dtype=np.float64)
        center, deviation = np.broadcast_arrays(center, deviation)
        if np.any(deviation < -1e-12):
            raise ValueError("box deviation must be non-negative")
        object.__setattr__(self, "center", np.array(center, dtype=np.float64))
        object.__setattr__(self, "deviation", np.array(np.maximum(deviation, 0.0), dtype=np.float64))

    # ------------------------------------------------------------------ #
    # Constructors / conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def point(cls, value) -> "Box":
        arr = np.asarray(value, dtype=np.float64)
        return cls(arr, np.zeros_like(arr))

    @classmethod
    def from_interval(cls, interval: Interval) -> "Box":
        return cls(interval.center, interval.deviation)

    @classmethod
    def from_bounds(cls, lo, hi) -> "Box":
        return cls.from_interval(Interval(lo, hi))

    @classmethod
    def abstraction(cls, concrete_states: Sequence[np.ndarray]) -> "Box":
        """The abstraction function α(S): smallest box containing all states."""
        states = [np.asarray(s, dtype=np.float64) for s in concrete_states]
        if not states:
            raise ValueError("cannot abstract an empty set of states")
        stacked = np.stack(states, axis=0)
        lo = stacked.min(axis=0)
        hi = stacked.max(axis=0)
        return cls.from_bounds(lo, hi)

    def to_interval(self) -> Interval:
        """The concretization bounds γ(s#) as an interval."""
        return Interval(self.center - self.deviation, self.center + self.deviation)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def lo(self) -> np.ndarray:
        return self.center - self.deviation

    @property
    def hi(self) -> np.ndarray:
        return self.center + self.deviation

    @property
    def shape(self) -> tuple:
        return self.center.shape

    @property
    def ndim(self) -> int:
        return self.center.ndim

    def volume(self) -> float:
        return float(np.prod(2.0 * self.deviation))

    def contains(self, value, tol: float = 1e-9) -> bool:
        return self.to_interval().contains(value, tol=tol)

    def contains_box(self, other: "Box", tol: float = 1e-9) -> bool:
        return self.to_interval().contains_interval(other.to_interval(), tol=tol)

    # ------------------------------------------------------------------ #
    # Abstract transformers (box-native forms; see paper Section 3.2)
    # ------------------------------------------------------------------ #
    def affine(self, weight: np.ndarray, bias: np.ndarray | None = None) -> "Box":
        """``f(x) = W x + b`` lifted to the box domain: ``(W b_c + b, |W| b_e)``."""
        weight = np.asarray(weight, dtype=np.float64)
        center = weight @ self.center
        deviation = np.abs(weight) @ self.deviation
        if bias is not None:
            center = center + np.asarray(bias, dtype=np.float64)
        return Box(center, deviation)

    def add_elements(self, target: int, lhs: int, rhs: int) -> "Box":
        """The paper's 'Add' transformer.

        Replaces element ``target`` with the sum of elements ``lhs`` and
        ``rhs``; implemented through the selector matrix M of Section 3.2.
        """
        m = self.center.shape[0]
        matrix = np.eye(m)
        matrix[target, :] = 0.0
        matrix[target, lhs] = 1.0
        matrix[target, rhs] = 1.0
        return Box(matrix @ self.center, matrix @ self.deviation)

    def relu(self) -> "Box":
        """ReLU transformer from Section 3.2 (midpoint/half-width of end-point images)."""
        upper = np.maximum(self.center + self.deviation, 0.0)
        lower = np.maximum(self.center - self.deviation, 0.0)
        return Box((upper + lower) / 2.0, (upper - lower) / 2.0)

    def tanh(self) -> "Box":
        upper = np.tanh(self.center + self.deviation)
        lower = np.tanh(self.center - self.deviation)
        return Box((upper + lower) / 2.0, (upper - lower) / 2.0)

    def scale(self, factor) -> "Box":
        factor = np.asarray(factor, dtype=np.float64)
        return Box(self.center * factor, self.deviation * np.abs(factor))

    def shift(self, offset) -> "Box":
        return Box(self.center + np.asarray(offset, dtype=np.float64), self.deviation.copy())

    def join(self, other: "Box") -> "Box":
        """Least upper bound (box hull) of two boxes."""
        lo = np.minimum(self.lo, other.lo)
        hi = np.maximum(self.hi, other.hi)
        return Box.from_bounds(lo, hi)

    def split(self, n: int, dims: Sequence[int] | None = None) -> list:
        """Partition into ``n`` components along ``dims`` (default: all dims jointly)."""
        interval = self.to_interval()
        if interval.lo.ndim == 0:
            return [Box.from_interval(piece) for piece in interval.split(n)]
        if dims is None:
            dims = list(range(interval.lo.shape[0]))
        return [Box.from_interval(piece) for piece in interval.split_dims(n, dims)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Box(center={self.center!r}, deviation={self.deviation!r})"
