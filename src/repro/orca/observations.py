"""Observation pipeline for the Orca/Canopy agent.

Orca's agent observes the network statistics of Table 1 once per monitor
interval.  We normalize each statistic into roughly ``[0, 1]`` and stack the
past ``k`` observations into the state vector ``s_t = <o_t, o_{t-1}, ..., o_{t-k+1}>``
(Section 4.1).  The per-step feature layout is:

====  =================  ==========================================================
idx   name               meaning (normalized)
====  =================  ==========================================================
0     ``throughput``     delivery rate / max delivery rate seen so far
1     ``loss``           loss rate in [0, 1]
2     ``delay``          queuing delay / delay scale (clipped to [0, 1])
3     ``acks``           acked packets this interval / ack scale
4     ``interval``       report interval / nominal monitor interval
5     ``inv_rtt``        min RTT / smoothed RTT  (the paper's "invRTT")
6     ``dcwnd``          sign-preserving normalized cwnd change from previous step
====  =================  ==========================================================

The normalized ``delay`` and ``loss`` features are exactly the quantities the
property preconditions of Table 2 range over, and ``dcwnd`` carries the
"past Δcwnd" condition.  :meth:`ObservationBuilder.feature_indices` exposes
where each feature lives inside the stacked state so the Canopy verifier can
abstract just the variables of interest (Section 5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence

import numpy as np

from repro.cc.netsim import MonitorReport

__all__ = ["FEATURE_NAMES", "ObservationConfig", "ObservationBuilder"]

FEATURE_NAMES = ("throughput", "loss", "delay", "acks", "interval", "inv_rtt", "dcwnd")
_FEATURE_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


@dataclass
class ObservationConfig:
    """Normalization constants and history length for the observation pipeline."""

    history_len: int = 3           # k in the paper (number of stacked steps)
    delay_scale: float = 0.2       # seconds of queuing delay mapping to 1.0
    ack_scale: float = 2000.0      # packets per interval mapping to 1.0
    monitor_interval: float = 0.2  # nominal monitor interval in seconds
    dcwnd_scale: float = 0.5       # relative cwnd change mapping to +-1.0

    def __post_init__(self) -> None:
        if self.history_len < 1:
            raise ValueError("history_len must be >= 1")
        if self.delay_scale <= 0 or self.ack_scale <= 0 or self.monitor_interval <= 0:
            raise ValueError("scales must be positive")

    @property
    def feature_dim(self) -> int:
        return len(FEATURE_NAMES)

    @property
    def state_dim(self) -> int:
        return self.history_len * self.feature_dim


class ObservationBuilder:
    """Turns monitor reports into normalized, history-stacked state vectors."""

    def __init__(self, config: ObservationConfig | None = None) -> None:
        self.config = config or ObservationConfig()
        self._history: Deque[np.ndarray] = deque(maxlen=self.config.history_len)
        self._max_throughput = 1.0
        self._prev_cwnd: float | None = None
        self.reset()

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self._history.clear()
        zero = np.zeros(self.config.feature_dim)
        for _ in range(self.config.history_len):
            self._history.append(zero.copy())
        self._max_throughput = 1.0
        self._prev_cwnd = None

    @property
    def max_throughput(self) -> float:
        """Largest delivery rate (packets/s) observed so far — thr_max in Eq. 2."""
        return self._max_throughput

    # ------------------------------------------------------------------ #
    def _normalize(self, report: MonitorReport) -> np.ndarray:
        cfg = self.config
        self._max_throughput = max(self._max_throughput, report.throughput_pps, 1.0)
        throughput = report.throughput_pps / self._max_throughput
        loss = float(np.clip(report.loss_rate, 0.0, 1.0))
        delay = float(np.clip(report.avg_queuing_delay / cfg.delay_scale, 0.0, 1.0))
        acks = float(np.clip(report.n_acks / cfg.ack_scale, 0.0, 1.0))
        interval = float(np.clip(report.interval / cfg.monitor_interval, 0.0, 2.0))
        if report.srtt > 0 and report.min_rtt > 0:
            inv_rtt = float(np.clip(report.min_rtt / report.srtt, 0.0, 1.0))
        else:
            inv_rtt = 1.0
        if self._prev_cwnd is None or self._prev_cwnd <= 0:
            dcwnd = 0.0
        else:
            rel_change = (report.cwnd - self._prev_cwnd) / self._prev_cwnd
            dcwnd = float(np.clip(rel_change / cfg.dcwnd_scale, -1.0, 1.0))
        self._prev_cwnd = report.cwnd
        return np.array([throughput, loss, delay, acks, interval, inv_rtt, dcwnd], dtype=np.float64)

    def observe(self, report: MonitorReport) -> np.ndarray:
        """Ingest a monitor report and return the updated stacked state."""
        self._history.append(self._normalize(report))
        return self.state()

    def state(self) -> np.ndarray:
        """The stacked state vector, newest observation first."""
        return np.concatenate(list(reversed(self._history)))

    # ------------------------------------------------------------------ #
    # Introspection used by the Canopy verifier and property preconditions.
    # ------------------------------------------------------------------ #
    def feature_indices(self, name: str, steps: Sequence[int] | None = None) -> List[int]:
        """Indices of a named feature inside the stacked state.

        ``steps=None`` returns the feature for all ``k`` history steps (step 0
        is the most recent).
        """
        if name not in _FEATURE_INDEX:
            raise KeyError(f"unknown feature {name!r}; known: {FEATURE_NAMES}")
        offset = _FEATURE_INDEX[name]
        k = self.config.history_len
        dim = self.config.feature_dim
        steps = range(k) if steps is None else steps
        indices = []
        for step in steps:
            if not 0 <= step < k:
                raise IndexError(f"history step {step} out of range [0, {k})")
            indices.append(step * dim + offset)
        return indices

    def feature_history(self, name: str) -> np.ndarray:
        """Values of a named feature over the past ``k`` steps, newest first."""
        state = self.state()
        return state[self.feature_indices(name)]

    @property
    def state_dim(self) -> int:
        return self.config.state_dim
