"""RL environment whose steps are Orca monitor intervals.

One episode emulates one actor of the paper's training setup (Section 5): a
network scenario sampled per episode — a topology family spec drawn from the
configured ``topologies`` catalog, a bandwidth trace (or a bandwidth sampled
uniformly from a configurable range), a path RTT sampled uniformly, a buffer
expressed in BDP multiples chosen per the property family being trained
(0.5 BDP for shallow, 5 BDP for deep, 2 BDP for robustness) — and a single
bulk sender controlled by TCP CUBIC plus the learned override.

The default catalog is ``("single_bottleneck",)``, which reproduces the
paper's (and this repo's historical) single-link training exactly; listing
several family specs (``chain(2)``, ``parking_lot(3)``, ``dumbbell``, ...)
yields domain-randomized training over multi-bottleneck topologies, with each
episode driven hop-by-hop through :class:`repro.cc.netsim.NetworkSimulator`.

Episode seeding follows the sharding-reproducibility convention used across
the harness: every episode draws one entropy value from the environment RNG
stream and derives its topology seed via
:func:`repro.seeding.derive_seed` over the (spec, trace) coordinates; the
per-hop random-loss RNG seeds then derive from that seed and the hop name
inside :func:`repro.topology.families.build_topology`.  Replaying an episode
is therefore bit-reproducible given the environment seed and episode index,
and the scenario sequence is exposed through :attr:`OrcaNetworkEnv.scenario`
/ :attr:`OrcaNetworkEnv.scenario_history` for inspection.

At every environment step the agent receives the stacked observation of the
past ``k`` monitor intervals, emits an action ``a ∈ [-1, 1]``, the window is
overridden via ``cwnd = 2^(2a) · cwnd_TCP``, the simulator advances by one
monitor interval, and the raw Orca reward (Eqs. 2–3) is returned.  The info
dict carries everything the Canopy trainer needs to compute the verifier
reward: the TCP-suggested window, the previously enforced window and the
aggregated report, plus the sampled topology spec of the running episode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.netsim import NetworkSimulator
from repro.orca.agent import cwnd_from_action
from repro.orca.observations import ObservationBuilder, ObservationConfig
from repro.orca.reward import OrcaRewardConfig, orca_reward
from repro.rl.env import Environment
from repro.rl.spaces import BoxSpace
from repro.seeding import derive_seed
from repro.topology.families import build_topology, parse_topology
from repro.topology.graph import Topology
from repro.traces.trace import BandwidthTrace

__all__ = ["OrcaEnvConfig", "OrcaNetworkEnv", "EpisodeScenario"]


@dataclass
class OrcaEnvConfig:
    """Configuration of the training environment.

    ``topologies`` is the per-episode scenario catalog: a sequence of topology
    family specs (see :mod:`repro.topology.families`).  One spec pins every
    episode to that family; several specs are sampled uniformly per episode
    (domain randomization across families).
    """

    bandwidth_range_mbps: Tuple[float, float] = (12.0, 96.0)
    rtt_range_s: Tuple[float, float] = (0.02, 0.1)
    buffer_bdp: float = 2.0
    monitor_interval: float = 0.2
    tick: float = 0.01
    episode_intervals: int = 40
    observation: ObservationConfig = field(default_factory=ObservationConfig)
    reward: OrcaRewardConfig = field(default_factory=OrcaRewardConfig)
    traces: Optional[Sequence[BandwidthTrace]] = None
    observation_noise: float = 0.0
    topologies: Sequence[str] = ("single_bottleneck",)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bandwidth_range_mbps[0] <= 0 or self.bandwidth_range_mbps[1] < self.bandwidth_range_mbps[0]:
            raise ValueError("invalid bandwidth range")
        if self.rtt_range_s[0] <= 0 or self.rtt_range_s[1] < self.rtt_range_s[0]:
            raise ValueError("invalid RTT range")
        if self.buffer_bdp <= 0:
            raise ValueError("buffer_bdp must be positive")
        if self.monitor_interval <= 0 or self.tick <= 0 or self.monitor_interval < self.tick:
            raise ValueError("need monitor_interval >= tick > 0")
        if self.episode_intervals <= 0:
            raise ValueError("episode_intervals must be positive")
        if not self.topologies:
            raise ValueError("topologies must list at least one family spec")
        self.topologies = tuple(str(spec) for spec in self.topologies)
        for spec in self.topologies:
            parse_topology(spec)  # fail fast on malformed specs


@dataclass(frozen=True)
class EpisodeScenario:
    """The sampled network scenario of one training episode.

    ``seed`` is the episode's topology seed (derived via
    :func:`repro.seeding.derive_seed` from the episode entropy and the
    (spec, trace) coordinates); ``hop_seeds`` are the per-hop random-loss RNG
    seeds that :func:`repro.topology.families.build_topology` derived from it.
    """

    episode: int
    spec: str
    trace_name: str
    min_rtt: float
    seed: int
    hop_seeds: Tuple[Tuple[str, int], ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "episode": self.episode,
            "topology": self.spec,
            "trace": self.trace_name,
            "min_rtt": self.min_rtt,
            "seed": self.seed,
            "hop_seeds": dict(self.hop_seeds),
        }


class OrcaNetworkEnv(Environment):
    """The Orca training environment over the fluid network simulator."""

    def __init__(self, config: OrcaEnvConfig | None = None) -> None:
        self.config = config or OrcaEnvConfig()
        self._rng = np.random.default_rng(self.config.seed)
        obs_dim = self.config.observation.state_dim
        self.observation_space = BoxSpace(np.zeros(obs_dim) - 1.0, np.ones(obs_dim) * 2.0)
        self.action_space = BoxSpace(np.array([-1.0]), np.array([1.0]))

        self.observer = ObservationBuilder(self.config.observation)
        self._sim: NetworkSimulator | None = None
        self._cubic: CubicController | None = None
        self._flow_id = 0
        self._steps = 0
        self._episodes = 0
        self._prev_enforced_cwnd = 0.0
        self._noise_rng = np.random.default_rng(self.config.seed)
        self._scenario: EpisodeScenario | None = None
        self._scenario_history: list[EpisodeScenario] = []

    # ------------------------------------------------------------------ #
    @property
    def state_dim(self) -> int:
        return self.config.observation.state_dim

    @property
    def cubic(self) -> CubicController:
        if self._cubic is None:
            raise RuntimeError("environment not reset yet")
        return self._cubic

    @property
    def scenario(self) -> EpisodeScenario:
        """The scenario of the episode currently running."""
        if self._scenario is None:
            raise RuntimeError("environment not reset yet")
        return self._scenario

    @property
    def scenario_history(self) -> Tuple[EpisodeScenario, ...]:
        """Every scenario sampled so far (one entry per ``reset``)."""
        return tuple(self._scenario_history)

    def _sample_topology(self) -> Tuple[Topology, EpisodeScenario]:
        """Draw one episode scenario: (family spec, trace, RTT, derived seeds).

        The draws happen in a fixed order — family (only when more than one is
        configured), trace/bandwidth, RTT, episode entropy — so a
        single-family ``("single_bottleneck",)`` catalog consumes the RNG
        stream exactly like the legacy single-link sampler and stays pinned to
        its training trajectory (see ``tests/test_topology_differential.py``).
        """
        cfg = self.config
        if len(cfg.topologies) == 1:
            spec = cfg.topologies[0]
        else:
            spec = cfg.topologies[int(self._rng.integers(0, len(cfg.topologies)))]
        if cfg.traces:
            trace = cfg.traces[int(self._rng.integers(0, len(cfg.traces)))]
        else:
            bandwidth = float(self._rng.uniform(*cfg.bandwidth_range_mbps))
            duration = cfg.episode_intervals * cfg.monitor_interval + 5.0
            trace = BandwidthTrace.constant(bandwidth, duration=duration)
        min_rtt = float(self._rng.uniform(*cfg.rtt_range_s))
        # One entropy draw per episode; all topology/link seeds derive from it
        # and the scenario coordinates, matching the sharding convention.
        entropy = int(self._rng.integers(0, 2 ** 31))
        episode_seed = derive_seed(entropy, spec, trace.name)
        topology = build_topology(spec, trace, min_rtt=min_rtt,
                                  buffer_bdp=cfg.buffer_bdp, seed=episode_seed)
        hop_seeds = tuple((link.name, link.queue.seed) for link in topology.ordered_links)
        scenario = EpisodeScenario(episode=self._episodes, spec=spec, trace_name=trace.name,
                                   min_rtt=min_rtt, seed=episode_seed, hop_seeds=hop_seeds)
        return topology, scenario

    # ------------------------------------------------------------------ #
    def reset(self, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        cfg = self.config
        topology, scenario = self._sample_topology()
        self._scenario = scenario
        self._scenario_history.append(scenario)
        self._episodes += 1
        self._cubic = CubicController(initial_cwnd=10.0)
        flow = Flow(self._flow_id, self._cubic)
        self._sim = NetworkSimulator(topology, [flow], dt=cfg.tick)
        self.observer.reset()
        self._steps = 0
        self._prev_enforced_cwnd = self._cubic.cwnd

        # Warm up for one monitor interval so the first observation is meaningful.
        self._advance_one_interval()
        report = self._sim.monitor_report(self._flow_id)
        return self.observer.observe(self._maybe_noisy(report))

    def _advance_one_interval(self) -> None:
        assert self._sim is not None
        ticks = int(round(self.config.monitor_interval / self.config.tick))
        for _ in range(ticks):
            self._sim.tick()

    def _maybe_noisy(self, report):
        noise_level = self.config.observation_noise
        if noise_level <= 0:
            return report
        noise = self._noise_rng.uniform(-noise_level, noise_level)
        from dataclasses import replace
        return replace(report, avg_queuing_delay=max(0.0, report.avg_queuing_delay * (1.0 + noise)))

    # ------------------------------------------------------------------ #
    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        if self._sim is None or self._cubic is None:
            raise RuntimeError("call reset() before step()")
        action_value = float(np.clip(np.asarray(action, dtype=np.float64).reshape(-1)[0], -1.0, 1.0))

        cwnd_tcp = self._cubic.cwnd
        cwnd_prev = self._prev_enforced_cwnd
        new_cwnd = cwnd_from_action(action_value, cwnd_tcp)
        self._cubic.set_cwnd(new_cwnd)
        self._prev_enforced_cwnd = new_cwnd

        self._advance_one_interval()
        report = self._sim.monitor_report(self._flow_id)
        noisy_report = self._maybe_noisy(report)
        observation = self.observer.observe(noisy_report)
        reward = orca_reward(report, self.observer.max_throughput, self.config.reward)

        self._steps += 1
        done = self._steps >= self.config.episode_intervals

        scenario = self._scenario
        info: Dict[str, Any] = {
            "report": report,
            "cwnd_tcp": cwnd_tcp,
            "cwnd_prev": cwnd_prev,
            "cwnd_enforced": new_cwnd,
            "action": action_value,
            "raw_reward": reward,
            "time": self._sim.now,
            "link_capacity_mbps": self._sim.link.trace.capacity_mbps(self._sim.now),
            "min_rtt": self._sim.path_rtt(self._flow_id),
            "topology": scenario.spec if scenario is not None else None,
            "n_hops": self._sim.topology.n_hops,
            "episode_seed": scenario.seed if scenario is not None else None,
        }
        return observation, reward, done, info
