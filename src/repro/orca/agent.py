"""The Orca two-level controller usable directly inside the network simulator.

:class:`LearnedController` is a :class:`repro.cc.base.CongestionController`
that contains:

* an inner fine-grained controller (TCP CUBIC by default) that reacts every
  tick, and
* a learned coarse-grained policy that fires once per monitor interval,
  observes the aggregated statistics (Table 1), and overrides the window via
  ``cwnd = 2^(2a) · cwnd_TCP`` (Eq. 1).

An optional *decision filter* implements Canopy's runtime fallback
(Section 4.4): before the learned override is applied, the filter can inspect
the state and veto the learned action, in which case the CUBIC window is kept
as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.cc.base import MIN_CWND, CongestionController, TickFeedback
from repro.cc.cubic import CubicController
from repro.cc.netsim import MonitorReport
from repro.orca.observations import ObservationBuilder, ObservationConfig

__all__ = ["cwnd_from_action", "DecisionRecord", "LearnedController"]

#: Policy signature: maps a stacked state vector to an action in [-1, 1].
Policy = Callable[[np.ndarray], np.ndarray]

#: Decision-filter signature: (state, cwnd_tcp, cwnd_prev) -> (allow_learned, qc_value)
DecisionFilter = Callable[[np.ndarray, float, float], tuple]


def cwnd_from_action(action: float, cwnd_tcp: float) -> float:
    """Eq. 1: ``cwnd = 2^(2a) · cwnd_TCP`` with the action clipped to [-1, 1]."""
    action = float(np.clip(action, -1.0, 1.0))
    return max(MIN_CWND, float(2.0 ** (2.0 * action) * cwnd_tcp))


@dataclass(frozen=True)
class DecisionRecord:
    """One coarse-grained decision made by the learned controller."""

    time: float
    state: np.ndarray
    action: float
    cwnd_tcp: float
    cwnd_before: float
    cwnd_after: float
    used_fallback: bool
    qc_value: float


class LearnedController(CongestionController):
    """Two-level Orca/Canopy controller: CUBIC plus a learned override."""

    name = "orca"

    def __init__(
        self,
        policy: Policy,
        inner: CongestionController | None = None,
        observation_config: ObservationConfig | None = None,
        monitor_interval: float = 0.2,
        decision_filter: Optional[DecisionFilter] = None,
        observation_noise: float = 0.0,
        noise_seed: int | None = None,
        name: str | None = None,
    ) -> None:
        inner = inner or CubicController()
        super().__init__(inner.cwnd)
        if monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")
        self.policy = policy
        self.inner = inner
        self.monitor_interval = float(monitor_interval)
        self.observer = ObservationBuilder(observation_config)
        self.decision_filter = decision_filter
        self.observation_noise = float(observation_noise)
        self._noise_rng = np.random.default_rng(noise_seed)
        if name:
            self.name = name

        self._last_decision_time = 0.0
        self._prev_decision_cwnd = inner.cwnd
        self.decisions: List[DecisionRecord] = []
        self._acc = self._fresh_acc()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _fresh_acc() -> dict:
        return {
            "acked": 0.0, "lost": 0.0, "sent": 0.0,
            "delay_weighted": 0.0, "rtt_weighted": 0.0, "ack_weight": 0.0,
            "start": None, "last_srtt": 0.0, "last_min_rtt": 0.0,
        }

    @property
    def cwnd(self) -> float:
        return self.inner.cwnd

    def set_cwnd(self, value: float) -> None:
        self.inner.set_cwnd(value)

    def reset(self) -> None:
        self.inner.reset()
        self.observer.reset()
        self._last_decision_time = 0.0
        self._prev_decision_cwnd = self.inner.cwnd
        self.decisions = []
        self._acc = self._fresh_acc()

    # ------------------------------------------------------------------ #
    def _accumulate(self, feedback: TickFeedback) -> None:
        acc = self._acc
        if acc["start"] is None:
            acc["start"] = feedback.now - feedback.dt
        acc["acked"] += feedback.acked
        acc["lost"] += feedback.lost
        acc["sent"] += feedback.acked + feedback.lost
        if feedback.acked > 0:
            acc["delay_weighted"] += feedback.queuing_delay * feedback.acked
            acc["rtt_weighted"] += feedback.rtt * feedback.acked
            acc["ack_weight"] += feedback.acked
        acc["last_srtt"] = feedback.rtt if feedback.rtt > 0 else acc["last_srtt"]
        acc["last_min_rtt"] = feedback.min_rtt

    def _build_report(self, now: float) -> MonitorReport:
        acc = self._acc
        start = acc["start"] if acc["start"] is not None else now - self.monitor_interval
        interval = max(now - start, 1e-3)
        acked = acc["acked"]
        lost = acc["lost"]
        weight = acc["ack_weight"]
        avg_delay = acc["delay_weighted"] / weight if weight > 0 else 0.0
        if self.observation_noise > 0:
            # Uniform multiplicative noise on the observed queuing delay — the
            # perturbation studied in Section 2 / Figure 11.
            noise = self._noise_rng.uniform(-self.observation_noise, self.observation_noise)
            avg_delay = max(0.0, avg_delay * (1.0 + noise))
        return MonitorReport(
            throughput_pps=acked / interval,
            loss_rate=lost / (acked + lost) if (acked + lost) > 0 else 0.0,
            avg_queuing_delay=avg_delay,
            n_acks=acked,
            interval=interval,
            srtt=acc["last_srtt"],
            min_rtt=acc["last_min_rtt"],
            avg_rtt=acc["rtt_weighted"] / weight if weight > 0 else acc["last_srtt"],
            cwnd=self.inner.cwnd,
            sent_pps=acc["sent"] / interval,
        )

    def _coarse_grained_step(self, now: float) -> None:
        report = self._build_report(now)
        state = self.observer.observe(report)
        cwnd_tcp = self.inner.cwnd
        cwnd_before = cwnd_tcp

        action = float(np.asarray(self.policy(state)).reshape(-1)[0])
        action = float(np.clip(action, -1.0, 1.0))

        allow_learned = True
        qc_value = 1.0
        if self.decision_filter is not None:
            allow_learned, qc_value = self.decision_filter(state, cwnd_tcp, self._prev_decision_cwnd)

        if allow_learned:
            new_cwnd = cwnd_from_action(action, cwnd_tcp)
            self.inner.set_cwnd(new_cwnd)
        else:
            new_cwnd = cwnd_tcp  # fall back to pure CUBIC

        self.decisions.append(DecisionRecord(
            time=now,
            state=state,
            action=action,
            cwnd_tcp=cwnd_tcp,
            cwnd_before=cwnd_before,
            cwnd_after=new_cwnd,
            used_fallback=not allow_learned,
            qc_value=float(qc_value),
        ))
        self._prev_decision_cwnd = new_cwnd
        self._acc = self._fresh_acc()

    # ------------------------------------------------------------------ #
    def on_tick(self, feedback: TickFeedback) -> None:
        self.inner.on_tick(feedback)
        self._accumulate(feedback)
        if feedback.now - self._last_decision_time >= self.monitor_interval - 1e-9:
            self._coarse_grained_step(feedback.now)
            self._last_decision_time = feedback.now

    def pacing_rate(self, feedback: TickFeedback | None = None) -> float | None:
        return self.inner.pacing_rate(feedback)

    # ------------------------------------------------------------------ #
    @property
    def fallback_fraction(self) -> float:
        """Fraction of coarse-grained decisions that fell back to CUBIC."""
        if not self.decisions:
            return 0.0
        return sum(1 for d in self.decisions if d.used_fallback) / len(self.decisions)

    @property
    def mean_qc(self) -> float:
        """Mean runtime QC value across decisions (1.0 when no filter installed)."""
        if not self.decisions:
            return 1.0
        return float(np.mean([d.qc_value for d in self.decisions]))
