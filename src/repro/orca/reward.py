"""Orca's raw reward function (Eqs. 2–3 of the paper).

The reward is the Power metric (throughput over delay), penalized by losses
and normalized by the best power achievable on the path
(``thr_max / d_min``)::

    R_orca = (thr - ζ · l) / delay'   /   (thr_max / d_min)

with the delay floored to ``d_min`` whenever it is within ``β · d_min``
(Eq. 3), so the controller is not punished for operating at (or near) the
propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cc.netsim import MonitorReport

__all__ = ["OrcaRewardConfig", "orca_reward"]


@dataclass
class OrcaRewardConfig:
    """Coefficients for the Orca power reward."""

    zeta: float = 10.0      # loss penalty coefficient (ζ in Eq. 2)
    beta: float = 1.25      # delay tolerance factor (β in Eq. 3), must be > 1
    min_delay_floor: float = 1e-3  # numerical floor for d_min (seconds)

    def __post_init__(self) -> None:
        if self.zeta < 0:
            raise ValueError("zeta must be non-negative")
        if self.beta <= 1.0:
            raise ValueError("beta must exceed 1")
        if self.min_delay_floor <= 0:
            raise ValueError("min_delay_floor must be positive")


def orca_reward(
    report: MonitorReport,
    max_throughput_pps: float,
    config: OrcaRewardConfig | None = None,
) -> float:
    """Compute the normalized Orca power reward for one monitor interval.

    Args:
        report: Aggregated statistics for the interval.
        max_throughput_pps: Largest delivery rate observed so far (thr_max).
        config: Reward coefficients.

    Returns:
        The normalized reward; roughly in ``[-ζ, 1]`` and equal to 1.0 when the
        flow fills the observed maximum throughput at minimum delay with no
        loss.
    """
    config = config or OrcaRewardConfig()
    d_min = max(report.min_rtt, config.min_delay_floor)
    delay = report.avg_rtt if report.avg_rtt > 0 else d_min
    if d_min <= delay <= config.beta * d_min:
        effective_delay = d_min
    else:
        effective_delay = delay
    effective_delay = max(effective_delay, config.min_delay_floor)

    throughput = report.throughput_pps
    loss = report.loss_rate * throughput  # loss expressed in the same units as thr
    power = (throughput - config.zeta * loss) / effective_delay

    max_throughput = max(max_throughput_pps, 1.0)
    best_power = max_throughput / d_min
    if best_power <= 0:
        return 0.0
    return float(np.clip(power / best_power, -config.zeta, 1.5))
