"""The Orca learned congestion controller (the base LCC of Canopy).

Orca performs two-level control (Section 3.1 of the paper): TCP CUBIC makes
fine-grained per-ack adjustments while a deep-RL (TD3) agent periodically
observes aggregated network statistics and overrides the window via
``cwnd = 2^(2a) * cwnd_TCP`` (Eq. 1).

* :mod:`repro.orca.observations` — the Table-1 feature pipeline, normalization
  and ``k``-step history stacking.
* :mod:`repro.orca.reward` — the power-metric raw reward (Eqs. 2–3).
* :mod:`repro.orca.agent` — :class:`LearnedController`, a drop-in
  :class:`repro.cc.base.CongestionController` combining CUBIC with a learned
  policy (used for evaluation), with optional runtime QC fallback.
* :mod:`repro.orca.env` — :class:`OrcaNetworkEnv`, the RL environment whose
  steps are monitor intervals (used for training).
"""

from repro.orca.observations import FEATURE_NAMES, ObservationBuilder, ObservationConfig
from repro.orca.reward import OrcaRewardConfig, orca_reward
from repro.orca.agent import LearnedController, cwnd_from_action
from repro.orca.env import OrcaEnvConfig, OrcaNetworkEnv

__all__ = [
    "FEATURE_NAMES",
    "ObservationBuilder",
    "ObservationConfig",
    "OrcaRewardConfig",
    "orca_reward",
    "LearnedController",
    "cwnd_from_action",
    "OrcaEnvConfig",
    "OrcaNetworkEnv",
]
