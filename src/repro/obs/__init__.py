"""The fleet observability plane: metric frames, rollups, HTTP, retention.

Everything in this package is *wall-clock observability* layered over the
serve/run subsystems, behind a hard wall from the deterministic row/journal
contract: nothing here ever writes ``records.jsonl`` or ``leases.jsonl``,
touches cell keys, or alters a metrics row — serial == pooled == served ==
resumed stays byte-identical with observability fully on or fully off
(``benchjson --store-diff`` enforced in CI).  Four layers:

* :mod:`repro.obs.metrics` — the metric *frame*: a compact cumulative-counter
  snapshot (cells/s, ticks, :class:`~repro.telemetry.profiler.TickProfiler`
  phase seconds, telemetry-event counts) each worker samples on an interval
  and pushes over the existing worker→daemon queue; the daemon appends frames
  to ``metrics.jsonl`` next to the lease journal.
* :mod:`repro.obs.aggregate` — folds frames into per-worker and fleet-wide
  rollups (p50/p99 per-tick phase latencies, throughput trend) and merges
  per-cell profiler reports into the ``--profile`` phase table.
* :mod:`repro.obs.http` — the stdlib HTTP surface inside the serve daemon
  (``serve --http PORT``): ``GET /status`` (the lease-journal replay as
  JSON), ``GET /metrics`` (Prometheus text exposition), ``GET /cells/<key>``
  (one record plus its ``tele_*`` summary).
* :mod:`repro.obs.retention` — store compaction
  (``python -m repro.harness.store compact``): drop raw event traces by age
  or size budget (never ``tele_*`` summaries, never counterexample-referenced
  cells), downsample old metric frames into rollup segments, and journal
  every compaction so retention is auditable.
"""

from repro.obs.aggregate import fleet_rollup, format_phase_table, merge_phase_reports
from repro.obs.metrics import (
    METRIC_FRAME_SCHEMA,
    METRICS_FILENAME,
    MetricsJournal,
    MetricsSampler,
    validate_frame,
)
from repro.obs.retention import RetentionPolicy, compact_store

__all__ = [
    "METRIC_FRAME_SCHEMA",
    "METRICS_FILENAME",
    "MetricsJournal",
    "MetricsSampler",
    "RetentionPolicy",
    "compact_store",
    "fleet_rollup",
    "format_phase_table",
    "merge_phase_reports",
    "validate_frame",
]
