"""Store compaction: declared, auditable retention for observability bulk.

A long-lived store accumulates two kinds of observability weight: raw
``telemetry_events`` lists inside rows (the per-cell event traces of ISSUE 7)
and the metric-frame stream in ``metrics.jsonl``.  ``python -m
repro.harness.store compact <store>`` shrinks both under a declared
:class:`RetentionPolicy`, with two hard guarantees:

* **summaries are forever** — a compacted row keeps every ``tele_*`` scalar
  (the canonical summary the bench/report layers read); only the raw event
  list is dropped, and the row gets ``telemetry_events_dropped: true`` so the
  gap is explicit rather than silent;
* **counterexamples are pinned** — a cell referenced by a promoted
  counterexample store (``counterexamples.jsonl``) keeps its raw trace
  regardless of age or budget, because falsify's regression replay is exactly
  the consumer that may need it later.

Old metric frames are not deleted either: frames older than the per-worker
``keep_frames`` window fold into one ``"kind": "rollup"`` segment per worker
carrying the same cumulative counters plus the segment's p50/p99 phase
latencies, so aggregation keeps working over the downsampled file.

Every compaction appends one audit line to ``compactions.jsonl`` (what policy
ran, what was dropped, byte counts before/after) — retention is a recorded
decision, not a quiet loss.  Rewrites are atomic (tmp file + ``os.replace``,
the :func:`~repro.harness.store.migrate_store` pattern) and every rewritten
record is schema-validated before the original file is replaced.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.harness.store import RECORDS_FILENAME, RunRecord, parse_records
from repro.obs.aggregate import percentile
from repro.obs.metrics import METRICS_FILENAME, MetricsJournal
from repro.telemetry.log import console
from repro.telemetry.profiler import TICK_PHASES

__all__ = [
    "COMPACTIONS_FILENAME",
    "RetentionPolicy",
    "compact_store",
    "counterexample_keys",
    "main_compact",
]

COMPACTIONS_FILENAME = "compactions.jsonl"


@dataclass(frozen=True)
class RetentionPolicy:
    """What a compaction keeps.  ``None`` means "leave that artifact alone".

    Args:
        keep_traces: Keep raw event traces only on the newest N traced
            records (file order; re-put records count at their last
            position).  Older traces drop to their ``tele_*`` summaries.
        max_trace_bytes: After ``keep_traces``, keep dropping the oldest
            remaining traces until the serialized trace bytes fit the
            budget.  Protected traces never drop, even over budget.
        keep_frames: Raw metric frames kept per worker; older frames fold
            into one rollup segment per worker.
        protect_keys: Extra cell keys whose traces are pinned (on top of
            counterexample-referenced ones).
    """

    keep_traces: Optional[int] = None
    max_trace_bytes: Optional[int] = None
    keep_frames: Optional[int] = None
    protect_keys: Tuple[str, ...] = field(default_factory=tuple)

    def to_json(self) -> Dict:
        return {"keep_traces": self.keep_traces,
                "max_trace_bytes": self.max_trace_bytes,
                "keep_frames": self.keep_frames,
                "protect_keys": list(self.protect_keys)}


def counterexample_keys(counterexamples_dir: str | Path) -> Set[str]:
    """Cell keys referenced by a promoted counterexample store (if present)."""
    path = Path(counterexamples_dir)
    if not path.exists():
        return set()
    # Local import: falsify is a higher layer; compaction only needs it when
    # a counterexample store actually exists.
    from repro.falsify.promote import load_counterexamples

    return {entry["key"] for entry in load_counterexamples(path) if "key" in entry}


# ---------------------------------------------------------------------- #
# Records pass: drop raw traces, keep tele_* summaries
# ---------------------------------------------------------------------- #
def _trace_bytes(row: Dict) -> int:
    events = row.get("telemetry_events")
    if not isinstance(events, list) or not events:
        return 0
    return len(json.dumps(events, sort_keys=True).encode("utf-8"))


def _compact_records(records_path: Path, policy: RetentionPolicy,
                     protected: Set[str]) -> Dict:
    by_key, _valid_bytes, torn = parse_records(records_path.read_text(),
                                               source=str(records_path))
    ordered = list(by_key.values())  # file order, last record per key
    traced = [record for record in ordered if _trace_bytes(record.row) > 0]
    droppable = [record for record in traced if record.key not in protected]

    drop: Set[str] = set()
    if policy.keep_traces is not None and len(droppable) > policy.keep_traces:
        cut = len(droppable) - policy.keep_traces
        drop.update(record.key for record in droppable[:cut])
    if policy.max_trace_bytes is not None:
        kept = [record for record in traced if record.key not in drop]
        budget = sum(_trace_bytes(record.row) for record in kept)
        for record in kept:  # oldest first
            if budget <= policy.max_trace_bytes:
                break
            if record.key in protected:
                continue
            drop.add(record.key)
            budget -= _trace_bytes(record.row)

    bytes_dropped = 0
    out_lines: List[str] = []
    for record in ordered:
        payload = record.to_json()
        if record.key in drop:
            bytes_dropped += _trace_bytes(payload["row"])
            row = dict(payload["row"])
            row.pop("telemetry_events", None)
            row["telemetry_events_dropped"] = True
            payload["row"] = row
        RunRecord.from_json(payload)  # never replace the file with bad lines
        out_lines.append(json.dumps(payload, sort_keys=True))
    tmp_path = records_path.with_name(records_path.name + ".compact-tmp")
    tmp_path.write_text("".join(line + "\n" for line in out_lines))
    os.replace(tmp_path, records_path)
    return {
        "records": len(ordered),
        "traced": len(traced),
        "traces_dropped": len(drop),
        "traces_kept": len(traced) - len(drop),
        "trace_bytes_dropped": bytes_dropped,
        "protected_kept": sum(1 for record in traced if record.key in protected),
        "torn_tail_dropped": torn,
    }


# ---------------------------------------------------------------------- #
# Metrics pass: fold old frames into per-worker rollup segments
# ---------------------------------------------------------------------- #
def _fold_segment(worker: str, segment: List[Dict]) -> Dict:
    """One rollup line standing in for a worker's folded-away frames."""
    last = segment[-1]
    frames = sum(int(item.get("frames", 1)) if item.get("kind") == "rollup" else 1
                 for item in segment)
    ticks = [int(item.get("ticks", 0)) for item in segment]
    phases = [item.get("phase_seconds") or {} for item in segment]
    latency_ms: Dict[str, Dict[str, float]] = {}
    for phase in TICK_PHASES:
        samples: List[float] = []
        prev_ticks, prev_seconds = 0, 0.0
        for tick_count, phase_seconds in zip(ticks, phases):
            delta_ticks = tick_count - prev_ticks
            delta_s = float(phase_seconds.get(phase, 0.0)) - prev_seconds
            if delta_ticks > 0 and delta_s >= 0.0:
                samples.append(delta_s / delta_ticks)
            prev_ticks = tick_count
            prev_seconds = float(phase_seconds.get(phase, 0.0))
        latency_ms[phase] = {"p50": percentile(samples, 50) * 1e3,
                             "p99": percentile(samples, 99) * 1e3,
                             "n": len(samples)}
    times = [float(item["t"]) for item in segment
             if isinstance(item.get("t"), (int, float))]
    return {
        "v": int(last.get("v", 1)),
        "kind": "rollup",
        "worker": worker,
        "seq": int(last.get("seq_last", last.get("seq", 0))),
        "seq_last": int(last.get("seq_last", last.get("seq", 0))),
        "frames": frames,
        "t": round(max(times), 3) if times else 0.0,
        "t_first": round(min(times), 3) if times else 0.0,
        "uptime_s": last.get("uptime_s", 0.0),
        "cells_done": int(last.get("cells_done", 0)),
        "ticks": int(last.get("ticks", 0)),
        "sim_wall_s": float(last.get("sim_wall_s", 0.0)),
        "phase_seconds": dict(last.get("phase_seconds") or {}),
        "telemetry_events": int(last.get("telemetry_events", 0)),
        "phase_latency_ms": latency_ms,
    }


def _compact_metrics(metrics_path: Path, keep_frames: int) -> Dict:
    journal = MetricsJournal(metrics_path)
    items = journal.read()
    by_worker: Dict[str, List[Dict]] = {}
    for item in items:
        worker = item.get("worker")
        if isinstance(worker, str) and worker:
            by_worker.setdefault(worker, []).append(item)

    out_lines: List[str] = []
    frames_folded = 0
    for worker in sorted(by_worker):
        history = by_worker[worker]
        raw = [item for item in history if item.get("kind") != "rollup"]
        if len(raw) > keep_frames:
            kept = raw[len(raw) - keep_frames:] if keep_frames else []
            fold = [item for item in history if item not in kept]
            frames_folded += len([item for item in fold
                                  if item.get("kind") != "rollup"])
            out_lines.append(json.dumps(_fold_segment(worker, fold),
                                        sort_keys=True))
        else:
            kept = raw
            # Pre-existing rollup segments pass through untouched.
            out_lines.extend(json.dumps(item, sort_keys=True) for item in history
                             if item.get("kind") == "rollup")
        out_lines.extend(json.dumps(item, sort_keys=True) for item in kept)
    tmp_path = metrics_path.with_name(metrics_path.name + ".compact-tmp")
    tmp_path.write_text("".join(line + "\n" for line in out_lines))
    os.replace(tmp_path, metrics_path)
    return {"frames_folded": frames_folded,
            "workers": len(by_worker),
            "lines_after": len(out_lines)}


# ---------------------------------------------------------------------- #
# The compaction entry point
# ---------------------------------------------------------------------- #
def compact_store(store_path: str | Path, policy: RetentionPolicy,
                  counterexamples: Optional[str | Path] = None,
                  clock=time.time) -> Dict:
    """Apply ``policy`` to one store; returns (and journals) the audit report.

    ``counterexamples`` points at a promoted counterexample store whose
    referenced cells are pinned; it defaults to ``<store>/counterexamples``
    and is simply empty-protection when absent.
    """
    store_path = Path(store_path)
    records_path = store_path / RECORDS_FILENAME
    metrics_path = store_path / METRICS_FILENAME
    if counterexamples is None:
        counterexamples = store_path / "counterexamples"
    protected = counterexample_keys(counterexamples) | set(policy.protect_keys)

    report: Dict = {"event": "compact", "t": round(clock(), 3),
                    "store": str(store_path), "policy": policy.to_json(),
                    "protected_keys": len(protected)}

    if records_path.exists() and (policy.keep_traces is not None
                                  or policy.max_trace_bytes is not None):
        before = records_path.stat().st_size
        report.update(_compact_records(records_path, policy, protected))
        report["records_bytes_before"] = before
        report["records_bytes_after"] = records_path.stat().st_size

    if metrics_path.exists() and policy.keep_frames is not None:
        before = metrics_path.stat().st_size
        report.update(_compact_metrics(metrics_path, policy.keep_frames))
        report["metrics_bytes_before"] = before
        report["metrics_bytes_after"] = metrics_path.stat().st_size

    bytes_before = (report.get("records_bytes_before", 0)
                    + report.get("metrics_bytes_before", 0))
    bytes_after = (report.get("records_bytes_after", 0)
                   + report.get("metrics_bytes_after", 0))
    report["compaction_ratio"] = (bytes_after / bytes_before
                                  if bytes_before > 0 else 1.0)

    # The audit line is the durable half of compaction: fsync like the lease
    # journal, so "what did we drop, when, under which policy" survives.
    audit_path = store_path / COMPACTIONS_FILENAME
    with audit_path.open("a") as handle:
        handle.write(json.dumps(report, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return report


# ---------------------------------------------------------------------- #
# CLI — `python -m repro.harness.store compact <store> ...`
# ---------------------------------------------------------------------- #
def main_compact(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.store compact",
        description="apply a retention policy to a store's observability "
                    "artifacts (raw event traces, metric frames); tele_* "
                    "summaries and counterexample-referenced traces always "
                    "survive")
    parser.add_argument("store", help="run-store directory")
    parser.add_argument("--keep-traces", type=int, default=None, metavar="N",
                        help="keep raw event traces on only the newest N records")
    parser.add_argument("--max-trace-bytes", type=int, default=None, metavar="B",
                        help="drop oldest raw traces until they fit B bytes")
    parser.add_argument("--keep-frames", type=int, default=None, metavar="N",
                        help="keep N raw metric frames per worker; fold the "
                             "rest into rollup segments")
    parser.add_argument("--counterexamples", default=None, metavar="DIR",
                        help="counterexample store whose cells are pinned "
                             "(default: <store>/counterexamples)")
    parser.add_argument("--protect", action="append", default=[], metavar="KEY",
                        help="pin one cell key's trace (repeatable)")
    args = parser.parse_args(list(argv))

    if (args.keep_traces is None and args.max_trace_bytes is None
            and args.keep_frames is None):
        parser.error("nothing to do: give at least one of --keep-traces, "
                     "--max-trace-bytes, --keep-frames")
    policy = RetentionPolicy(keep_traces=args.keep_traces,
                             max_trace_bytes=args.max_trace_bytes,
                             keep_frames=args.keep_frames,
                             protect_keys=tuple(args.protect))
    try:
        report = compact_store(args.store, policy,
                               counterexamples=args.counterexamples)
    except (FileNotFoundError, ValueError) as exc:
        console(f"{args.store}: COMPACTION FAILED: {exc}")
        return 1
    console(f"{args.store}: compacted "
            f"(traces dropped: {report.get('traces_dropped', 0)}, "
            f"frames folded: {report.get('frames_folded', 0)}, "
            f"protected: {report.get('protected_keys', 0)}, "
            f"ratio: {report['compaction_ratio']:.3f})")
    return 0
