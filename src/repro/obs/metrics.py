"""Metric frames: the unit of the fleet's live metrics stream.

A *frame* is one worker's cumulative-counter snapshot at a wall-clock
instant: cells completed, simulator ticks, per-phase
:class:`~repro.telemetry.profiler.TickProfiler` seconds, and telemetry-event
counts.  Counters are cumulative since worker start (never deltas), so a
dropped frame loses resolution, not information — the aggregation layer
(:mod:`repro.obs.aggregate`) recovers rates and latencies from consecutive
snapshots.

Workers push frames over the existing worker→daemon message queue as
``("metrics", worker, key, frame)`` tuples — at a configurable interval
*and* after every completed cell, so even sub-interval grids stream.  The
daemon (the store's single writer) appends them to ``metrics.jsonl`` next to
the lease journal; ``run --profile`` appends the same frames from the
coordinating parent.  Frames are observability, not results: appends flush
but do not fsync (a lost tail costs a chart point, not a row), and the
reader tolerates a torn tail via the shared
:func:`~repro.harness.jsonl.parse_jsonl_tolerant` rule exactly like
``records.jsonl`` and ``leases.jsonl``.

After compaction (:mod:`repro.obs.retention`) the file may also hold
``"kind": "rollup"`` lines — downsampled segments standing in for folded-away
raw frames; they carry the same cumulative counters so aggregation treats
them as a baseline snapshot.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.harness.jsonl import parse_jsonl_tolerant
from repro.harness.store import validate_schema
from repro.telemetry.profiler import TICK_PHASES, TickProfiler

__all__ = [
    "FRAME_VERSION",
    "METRIC_FRAME_SCHEMA",
    "METRICS_FILENAME",
    "MetricsJournal",
    "MetricsSampler",
    "validate_frame",
]

METRICS_FILENAME = "metrics.jsonl"

#: Frame schema version (bumped on incompatible frame shape changes).
FRAME_VERSION = 1

#: The schema every raw metric frame must satisfy (rollup lines add fields
#: on top of the same counter core; see :mod:`repro.obs.retention`).
METRIC_FRAME_SCHEMA = {
    "type": "object",
    "required": ["v", "kind", "worker", "seq", "t", "uptime_s", "cells_done",
                 "ticks", "sim_wall_s", "phase_seconds", "telemetry_events"],
    "properties": {
        "v": {"type": "integer"},
        "kind": {"type": "string", "minLength": 1},
        "worker": {"type": "string", "minLength": 1},
        "seq": {"type": "integer"},
        "t": {"type": "number"},
        "uptime_s": {"type": "number"},
        "cells_done": {"type": "integer"},
        "ticks": {"type": "integer"},
        "sim_wall_s": {"type": "number"},
        "phase_seconds": {"type": "object", "values": {"type": "number"}},
        "telemetry_events": {"type": "integer"},
        "current_key": {"type": ["string", "null"]},
    },
}


def validate_frame(frame: Dict) -> None:
    """Schema-check one metric frame; raises ``ValueError`` on mismatch."""
    validate_schema(frame, METRIC_FRAME_SCHEMA, path="frame")


class MetricsSampler:
    """One worker's cumulative counters, snapshotted into frames.

    With a live ``profiler`` (the serve-worker case) tick counters are read
    straight from it at sample time; without one (the ``run --profile``
    parent, which receives per-cell reports back over the pool) counters
    accumulate via :meth:`absorb_report`.  ``sample`` is safe to call from
    the worker's interval thread and its main loop concurrently — counters
    are monotone and ``seq`` comes from an atomic counter.
    """

    def __init__(self, worker: str, profiler: Optional[TickProfiler] = None,
                 clock: Callable[[], float] = time.time):
        self.worker = worker
        self.profiler = profiler
        self._clock = clock
        self._started = clock()
        self._seq = itertools.count()
        self._cells = 0
        self._events = 0
        self._ticks = 0
        self._sim_wall = 0.0
        self._phase = {phase: 0.0 for phase in TICK_PHASES}

    # ------------------------------------------------------------------ #
    def note_cell_done(self, row: Optional[Dict] = None) -> None:
        """Count one completed cell (and its telemetry events, if any)."""
        self._cells += 1
        if isinstance(row, dict):
            events = row.get("telemetry_events")
            if isinstance(events, (list, tuple)):
                self._events += len(events)
            elif isinstance(row.get("tele_n_events"), (int, float)):
                self._events += int(row["tele_n_events"])

    def absorb_report(self, report: Dict) -> None:
        """Fold one per-cell :meth:`TickProfiler.report` into the counters."""
        self._ticks += int(report.get("ticks", 0))
        self._sim_wall += float(report.get("total_seconds", 0.0))
        for phase in TICK_PHASES:
            self._phase[phase] += float(report.get(f"{phase}_s", 0.0))

    # ------------------------------------------------------------------ #
    def sample(self, current_key: Optional[str] = None) -> Dict:
        """One frame: the counters as of now, cumulative since worker start."""
        profiler = self.profiler
        if profiler is not None:
            ticks = profiler.ticks
            sim_wall = profiler.total_seconds
            phase = dict(profiler.phase_seconds)
        else:
            ticks, sim_wall, phase = self._ticks, self._sim_wall, dict(self._phase)
        now = self._clock()
        return {
            "v": FRAME_VERSION,
            "kind": "frame",
            "worker": self.worker,
            "seq": next(self._seq),
            "t": round(now, 3),
            "uptime_s": round(now - self._started, 3),
            "cells_done": self._cells,
            "ticks": int(ticks),
            "sim_wall_s": sim_wall,
            "phase_seconds": phase,
            "telemetry_events": self._events,
            "current_key": current_key,
        }


class MetricsJournal:
    """Append/read ``metrics.jsonl`` inside a run-store directory.

    Appends flush but do not fsync: frames are lossy observability, and a
    torn tail from a hard kill is dropped on read — never truncated, never
    fatal.  Only the store's single writer (the daemon, or the ``run``
    parent) appends; any process may read.
    """

    def __init__(self, store_path: str | Path):
        path = Path(store_path)
        self.path = path / METRICS_FILENAME if path.is_dir() or not path.suffix else path
        self.appended = 0

    def append(self, frame: Dict) -> Dict:
        validate_frame(frame)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(frame, sort_keys=True) + "\n")
            handle.flush()
        self.appended += 1
        return frame

    def read(self) -> List[Dict]:
        """Every well-formed frame/rollup line, tolerating a torn tail."""
        if not self.path.exists():
            return []
        payloads, _valid_bytes, _torn = parse_jsonl_tolerant(
            self.path.read_text(), source=str(self.path), label="metric frame")
        return [payload for payload in payloads if isinstance(payload, dict)]
