"""Fold metric frames into per-worker and fleet-wide rollups.

Frames carry *cumulative* counters (see :mod:`repro.obs.metrics`), so every
rate and latency here is a difference of consecutive snapshots: per-tick
phase latency samples are ``Δphase_seconds / Δticks`` between a worker's
consecutive frames, throughput trend is ``Δcells / Δt`` over the fleet's
merged timeline.  Compaction rollup lines (``"kind": "rollup"``) hold the
same cumulative counters and act as the baseline snapshot for the raw frames
that follow them; they contribute totals but no fresh latency samples.

Also home to the ``--profile`` phase table: :func:`merge_phase_reports` sums
per-cell :meth:`TickProfiler.report` dicts and :func:`format_phase_table`
renders the familiar phase/seconds/fraction table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.profiler import TICK_PHASES

__all__ = [
    "fleet_phase_report",
    "fleet_rollup",
    "format_phase_table",
    "merge_phase_reports",
    "percentile",
]

#: Cap on throughput-trend points kept in a rollup (newest win).
TREND_POINTS = 50


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (numpy's default method), dependency-free."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * (q / 100.0)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


# ---------------------------------------------------------------------- #
# Profiler report merging (the --profile phase table)
# ---------------------------------------------------------------------- #
def merge_phase_reports(reports: Sequence[Dict]) -> Dict:
    """Sum per-cell profiler reports into one grid-wide report.

    Seconds and ticks add; fractions and ticks/s are recomputed from the
    sums, so the merged report has the exact shape of a single
    :meth:`TickProfiler.report`.
    """
    ticks = sum(int(report.get("ticks", 0)) for report in reports)
    total = sum(float(report.get("total_seconds", 0.0)) for report in reports)
    merged: Dict[str, float] = {
        "ticks": float(ticks),
        "total_seconds": total,
        "ticks_per_sec": ticks / total if total > 0 else 0.0,
    }
    charged = sum(float(report.get(f"{phase}_s", 0.0))
                  for report in reports for phase in TICK_PHASES)
    for phase in TICK_PHASES:
        seconds = sum(float(report.get(f"{phase}_s", 0.0)) for report in reports)
        merged[f"{phase}_s"] = seconds
        merged[f"{phase}_frac"] = seconds / charged if charged > 0 else 0.0
    return merged


def fleet_phase_report(fleet: Dict) -> Dict:
    """Reshape a :func:`fleet_rollup` fleet dict into a phase-table report.

    Lets ``serve --profile`` print the same table as ``run --profile`` from
    the metrics stream alone (the daemon never sees worker profilers
    directly — only their frames).
    """
    report: Dict[str, float] = {
        "ticks": float(fleet.get("ticks", 0)),
        "total_seconds": float(fleet.get("sim_wall_s", 0.0)),
        "ticks_per_sec": float(fleet.get("ticks_per_sec", 0.0)),
    }
    phase_seconds = fleet.get("phase_seconds") or {}
    charged = sum(float(phase_seconds.get(phase, 0.0)) for phase in TICK_PHASES)
    for phase in TICK_PHASES:
        seconds = float(phase_seconds.get(phase, 0.0))
        report[f"{phase}_s"] = seconds
        report[f"{phase}_frac"] = seconds / charged if charged > 0 else 0.0
    return report


def format_phase_table(report: Dict) -> str:
    """Render one (merged) profiler report as the ``--profile`` phase table."""
    lines = [
        f"ticks: {int(report.get('ticks', 0))} in "
        f"{report.get('total_seconds', 0.0):.3f}s "
        f"({report.get('ticks_per_sec', 0.0):,.0f} ticks/s)",
        f"  {'phase':<10} {'seconds':>10} {'share':>7}",
    ]
    for phase in TICK_PHASES:
        lines.append(f"  {phase:<10} {report.get(f'{phase}_s', 0.0):>10.4f} "
                     f"{report.get(f'{phase}_frac', 0.0):>6.1%}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Frame aggregation
# ---------------------------------------------------------------------- #
def _frame_order(frame: Dict) -> Tuple[int, float]:
    # Rollup lines stamp the seq of their newest folded frame as seq_last.
    seq = frame.get("seq_last" if frame.get("kind") == "rollup" else "seq", 0)
    return (int(seq) if isinstance(seq, (int, float)) else 0,
            float(frame.get("t", 0.0) or 0.0))


def _latency_samples(ordered: Sequence[Dict]) -> Dict[str, List[float]]:
    """Per-tick phase latency samples (seconds) from consecutive snapshots.

    The implicit baseline before a worker's first *raw* frame is zero (its
    counters start at zero); a rollup line is its own baseline and yields no
    sample (its deltas span the whole folded segment, not one interval).
    """
    samples: Dict[str, List[float]] = {phase: [] for phase in TICK_PHASES}
    prev_ticks = 0
    prev_phase: Dict[str, float] = {phase: 0.0 for phase in TICK_PHASES}
    for frame in ordered:
        ticks = int(frame.get("ticks", 0))
        phase_seconds = frame.get("phase_seconds") or {}
        if frame.get("kind") != "rollup":
            delta_ticks = ticks - prev_ticks
            if delta_ticks > 0:
                for phase in TICK_PHASES:
                    delta = float(phase_seconds.get(phase, 0.0)) - prev_phase[phase]
                    if delta >= 0.0:
                        samples[phase].append(delta / delta_ticks)
        prev_ticks = ticks
        prev_phase = {phase: float(phase_seconds.get(phase, 0.0))
                      for phase in TICK_PHASES}
    return samples


def _worker_rollup(ordered: Sequence[Dict]) -> Dict:
    last = ordered[-1]
    raw = [frame for frame in ordered if frame.get("kind") != "rollup"]
    folded = sum(int(frame.get("frames", 0)) for frame in ordered
                 if frame.get("kind") == "rollup")
    samples = _latency_samples(ordered)
    ticks = int(last.get("ticks", 0))
    sim_wall = float(last.get("sim_wall_s", 0.0))
    times = [float(frame["t"]) for frame in ordered
             if isinstance(frame.get("t"), (int, float))]
    return {
        "frames": len(raw) + folded,
        "cells_done": int(last.get("cells_done", 0)),
        "ticks": ticks,
        "sim_wall_s": sim_wall,
        "ticks_per_sec": ticks / sim_wall if sim_wall > 0 else 0.0,
        "telemetry_events": int(last.get("telemetry_events", 0)),
        "phase_seconds": {phase: float((last.get("phase_seconds") or {})
                                       .get(phase, 0.0))
                          for phase in TICK_PHASES},
        "phase_latency_ms": {
            phase: {"p50": percentile(samples[phase], 50) * 1e3,
                    "p99": percentile(samples[phase], 99) * 1e3,
                    "n": len(samples[phase])}
            for phase in TICK_PHASES},
        "first_t": min(times) if times else None,
        "last_t": max(times) if times else None,
        "latency_samples_s": samples,
    }


def _throughput_trend(by_worker: Dict[str, List[Dict]]) -> List[Dict]:
    """Fleet cells/s over time: Δ(total completed cells) between frame times."""
    merged = sorted((frame for frames in by_worker.values() for frame in frames
                     if isinstance(frame.get("t"), (int, float))),
                    key=lambda frame: float(frame["t"]))
    latest: Dict[str, int] = {}
    points: List[Tuple[float, int]] = []
    for frame in merged:
        latest[frame["worker"]] = int(frame.get("cells_done", 0))
        points.append((float(frame["t"]), sum(latest.values())))
    trend: List[Dict] = []
    for (t_prev, cells_prev), (t_now, cells_now) in zip(points, points[1:]):
        if t_now > t_prev:
            trend.append({"t": t_now,
                          "cells_per_sec": (cells_now - cells_prev) / (t_now - t_prev)})
    return trend[-TREND_POINTS:]


def fleet_rollup(frames: Sequence[Dict], status: Optional[Dict] = None) -> Dict:
    """Fold frames (and optional serve status) into the fleet rollup dict.

    Returns ``{"workers": {name: ...}, "fleet": {...}}`` — cumulative totals,
    p50/p99 per-tick phase latencies, and a throughput trend.  ``status`` (a
    :func:`~repro.serve.status.read_status` dict) contributes the lease-side
    counters (reclaims, stale results, cells/s over the session).
    """
    by_worker: Dict[str, List[Dict]] = {}
    for frame in frames:
        worker = frame.get("worker")
        if isinstance(worker, str) and worker:
            by_worker.setdefault(worker, []).append(frame)
    for ordered in by_worker.values():
        ordered.sort(key=_frame_order)

    workers = {name: _worker_rollup(ordered)
               for name, ordered in by_worker.items()}
    fleet_samples: Dict[str, List[float]] = {phase: [] for phase in TICK_PHASES}
    for rollup in workers.values():
        for phase in TICK_PHASES:
            fleet_samples[phase].extend(rollup["latency_samples_s"][phase])
        del rollup["latency_samples_s"]

    ticks = sum(rollup["ticks"] for rollup in workers.values())
    sim_wall = sum(rollup["sim_wall_s"] for rollup in workers.values())
    times = [t for rollup in workers.values()
             for t in (rollup["first_t"], rollup["last_t"]) if t is not None]
    span = (max(times) - min(times)) if len(times) >= 2 else 0.0
    cells = sum(rollup["cells_done"] for rollup in workers.values())
    fleet = {
        "workers": len(workers),
        "frames": sum(rollup["frames"] for rollup in workers.values()),
        "cells_done": cells,
        "ticks": ticks,
        "sim_wall_s": sim_wall,
        "ticks_per_sec": ticks / sim_wall if sim_wall > 0 else 0.0,
        "cells_per_sec": cells / span if span > 0 else 0.0,
        "telemetry_events": sum(rollup["telemetry_events"]
                                for rollup in workers.values()),
        "phase_seconds": {phase: sum(rollup["phase_seconds"][phase]
                                     for rollup in workers.values())
                          for phase in TICK_PHASES},
        "phase_latency_ms": {
            phase: {"p50": percentile(fleet_samples[phase], 50) * 1e3,
                    "p99": percentile(fleet_samples[phase], 99) * 1e3,
                    "n": len(fleet_samples[phase])}
            for phase in TICK_PHASES},
        "throughput_trend": _throughput_trend(by_worker),
        "latency_samples_s": fleet_samples,
    }
    if status is not None:
        fleet["reclaims"] = status.get("reclaims", 0)
        fleet["stale_results"] = status.get("stale_results", 0)
        fleet["session_cells_per_sec"] = status.get("cells_per_sec", 0.0)
        fleet["running"] = status.get("running", False)
    return {"workers": workers, "fleet": fleet}
