"""The serve daemon's HTTP surface: ``/status``, ``/metrics``, ``/cells/<key>``.

``python -m repro serve ... --http PORT`` starts one :class:`ObsServer` — a
stdlib :class:`~http.server.ThreadingHTTPServer` on a daemon thread — next to
the daemon's lease loop.  The server holds no daemon state and talks to no
queue: every request replays the on-disk journals (``leases.jsonl``,
``metrics.jsonl``, ``records.jsonl``), exactly like the CLI ``repro status``
does from another process.  That keeps the hard observability wall: an HTTP
request can never perturb the lease loop or the rows, and the surface works
against a dead daemon's store just as well as a live one.

Endpoints:

``GET /status``
    the :func:`~repro.serve.status.read_status` replay as JSON — the same
    structure ``repro status --json`` prints.
``GET /metrics``
    Prometheus text exposition (format 0.0.4) of the lease-state gauges,
    reclaim/stale counters, throughput, per-worker tick counters, and
    per-phase latency histograms folded by :mod:`repro.obs.aggregate`.
``GET /cells/<key>``
    one cell's stored record (row, spec, provenance) plus its ``tele_*``
    summary; raw ``telemetry_events`` are elided to an event count.  ``<key>``
    may be any unique substring of a cell key (keys are long).

``python -m repro.obs.http --validate FILE`` schema-checks a scraped
exposition (the CI obs-smoke job pipes ``curl /metrics`` through it);
``--render STORE`` prints a store's exposition without a server.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import unquote

from repro.obs.aggregate import fleet_rollup
from repro.obs.metrics import MetricsJournal
from repro.serve.status import read_status
from repro.telemetry import log
from repro.telemetry.log import console
from repro.telemetry.profiler import TICK_PHASES

__all__ = ["CONTENT_TYPE_EXPOSITION", "ObsServer", "render_exposition",
           "validate_exposition", "main"]

CONTENT_TYPE_EXPOSITION = "text/plain; version=0.0.4; charset=utf-8"

#: Histogram bucket upper bounds (seconds) for per-tick phase latency.
LATENCY_BUCKETS_S = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1)


# ---------------------------------------------------------------------- #
# Prometheus exposition
# ---------------------------------------------------------------------- #
def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _fmt(value: float) -> str:
    number = float(value)
    return str(int(number)) if number == int(number) else repr(number)


def render_exposition(store_path: str | Path) -> str:
    """Render one store's live metrics as Prometheus text exposition."""
    store_path = Path(store_path)
    try:
        status: Optional[Dict] = read_status(store_path)
    except FileNotFoundError:
        status = None
    frames = MetricsJournal(store_path).read()
    rollup = fleet_rollup(frames, status=status)
    fleet, workers = rollup["fleet"], rollup["workers"]

    lines: List[str] = []

    def family(name: str, kind: str, help_text: str,
               samples: Sequence[Tuple[str, float]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            lines.append(f"{name}{labels} {_fmt(value)}")

    if status is not None:
        states = {
            "total": status.get("cells") or 0,
            "cached": status.get("cached") or 0,
            "completed": status.get("completed") or 0,
            "leased": len(status.get("leased") or {}),
            "failed": status.get("failed") or 0,
            "outstanding": status.get("outstanding") or 0,
        }
        family("repro_serve_cells", "gauge",
               "Cells by lease state in the latest serve session.",
               [(f'{{state="{state}"}}', value) for state, value in states.items()])
        family("repro_serve_running", "gauge",
               "1 while the latest serve session is still running.",
               [("", 1.0 if status.get("running") else 0.0)])
        family("repro_serve_reclaims_total", "counter",
               "Leases reclaimed from dead or expired workers.",
               [("", status.get("reclaims") or 0)])
        family("repro_serve_stale_results_total", "counter",
               "Results rejected because the worker no longer held the lease.",
               [("", status.get("stale_results") or 0)])
        family("repro_serve_cells_per_sec", "gauge",
               "Completed cells per second over the session.",
               [("", status.get("cells_per_sec") or 0.0)])
        family("repro_serve_worker_up", "gauge",
               "Worker liveness from the lease journal.",
               [(f'{{worker="{_escape_label(name)}"}}',
                 1.0 if state.get("alive") else 0.0)
                for name, state in sorted((status.get("workers") or {}).items())])

    family("repro_metrics_frames_total", "counter",
           "Metric frames recorded in metrics.jsonl (rollup segments count "
           "their folded frames).",
           [("", fleet["frames"])])
    if workers:
        family("repro_worker_cells_done_total", "counter",
               "Cells completed per worker (from the metrics stream).",
               [(f'{{worker="{_escape_label(name)}"}}', rollup_w["cells_done"])
                for name, rollup_w in sorted(workers.items())])
        family("repro_worker_ticks_total", "counter",
               "Simulator ticks executed per worker.",
               [(f'{{worker="{_escape_label(name)}"}}', rollup_w["ticks"])
                for name, rollup_w in sorted(workers.items())])
        family("repro_worker_telemetry_events_total", "counter",
               "Telemetry events recorded by per-cell event traces.",
               [(f'{{worker="{_escape_label(name)}"}}',
                 rollup_w["telemetry_events"])
                for name, rollup_w in sorted(workers.items())])
        family("repro_tick_phase_seconds_total", "counter",
               "Wall-clock seconds charged to each simulator tick phase.",
               [(f'{{worker="{_escape_label(name)}",phase="{phase}"}}',
                 rollup_w["phase_seconds"][phase])
                for name, rollup_w in sorted(workers.items())
                for phase in TICK_PHASES])

    # Per-tick phase latency histogram over frame-interval samples.  Emitted
    # even before the first frame lands (all-zero buckets) so scrapers see a
    # stable set of families from the first scrape onwards.
    samples = fleet["latency_samples_s"]
    name = "repro_tick_phase_latency_seconds"
    lines.append(f"# HELP {name} Per-tick wall-clock latency of each "
                 f"simulator phase (frame-interval averages).")
    lines.append(f"# TYPE {name} histogram")
    for phase in TICK_PHASES:
        values = samples[phase]
        for bound in LATENCY_BUCKETS_S:
            cumulative = sum(1 for value in values if value <= bound)
            lines.append(f'{name}_bucket{{phase="{phase}",le="{bound:g}"}} '
                         f"{cumulative}")
        lines.append(f'{name}_bucket{{phase="{phase}",le="+Inf"}} {len(values)}')
        lines.append(f'{name}_sum{{phase="{phase}"}} {_fmt(sum(values))}')
        lines.append(f'{name}_count{{phase="{phase}"}} {len(values)}')

    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[^{}]*\})?'
    r'\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf)|NaN)\s*$')
_COMMENT_RE = re.compile(r"^# (?P<kind>HELP|TYPE) (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$")


def validate_exposition(text: str) -> Dict[str, int]:
    """Check Prometheus text-format well-formedness; raise ``ValueError``.

    Enforces what the CI obs-smoke job needs: every sample parses, every
    sampled family has a preceding ``# TYPE``, and every histogram family has
    an ``le="+Inf"`` bucket plus ``_sum``/``_count`` series.  Returns
    ``{"families": n, "samples": n}``.
    """
    types: Dict[str, str] = {}
    samples = 0
    histogram_parts: Dict[str, set] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _COMMENT_RE.match(line)
            if match is None:
                raise ValueError(f"line {line_number}: malformed comment: {line!r}")
            if match.group("kind") == "TYPE":
                types[match.group("name")] = line.rsplit(" ", 1)[-1]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample: {line!r}")
        samples += 1
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base in types and types[base] == "histogram":
            suffix = name[len(base):].lstrip("_") or "base"
            parts = histogram_parts.setdefault(base, set())
            parts.add(suffix)
            if suffix == "bucket" and 'le="+Inf"' in (match.group("labels") or ""):
                parts.add("+Inf bucket")
        elif name not in types:
            raise ValueError(f"line {line_number}: sample {name!r} has no # TYPE")
    for base, parts in histogram_parts.items():
        missing = {"bucket", "+Inf bucket", "sum", "count"} - parts
        if missing:
            raise ValueError(f"histogram {base!r} incomplete: missing {sorted(missing)}")
    return {"families": len(types), "samples": samples}


# ---------------------------------------------------------------------- #
# The server
# ---------------------------------------------------------------------- #
def _cell_payload(record) -> Dict:
    row = dict(record.row)
    events = row.pop("telemetry_events", None)
    return {
        "key": record.key,
        "experiment": record.experiment,
        "producer": record.producer,
        "commit": record.commit,
        "spec": record.spec,
        "hop_seeds": record.hop_seeds,
        "row": row,
        "tele_summary": {name: value for name, value in row.items()
                         if name.startswith("tele_")},
        "telemetry_events_count": len(events) if isinstance(events, list) else 0,
    }


def _make_handler(store_path: Path):
    class _Handler(BaseHTTPRequestHandler):
        server_version = "repro-obs"

        def log_message(self, fmt, *args):  # noqa: A002 - stdlib signature
            log.debug("http_request", logger="obs", detail=fmt % args)

        # ---------------------------------------------------------- #
        def _send(self, code: int, body: bytes, content_type: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, code: int, payload: Dict) -> None:
            body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
            self._send(code, body, "application/json; charset=utf-8")

        # ---------------------------------------------------------- #
        def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
            try:
                self._route()
            except BrokenPipeError:  # client went away mid-response
                pass
            except Exception as exc:  # noqa: BLE001 - surfaced to the client
                try:
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
                except OSError:
                    pass

        def _route(self) -> None:
            path = self.path.split("?", 1)[0]
            if path in ("", "/"):
                self._send_json(200, {"endpoints": ["/status", "/metrics",
                                                    "/cells/<key>"],
                                      "store": str(store_path)})
            elif path == "/status":
                try:
                    self._send_json(200, read_status(store_path))
                except FileNotFoundError as exc:
                    self._send_json(404, {"error": str(exc)})
            elif path == "/metrics":
                body = render_exposition(store_path).encode()
                self._send(200, body, CONTENT_TYPE_EXPOSITION)
            elif path.startswith("/cells/"):
                self._cells(unquote(path[len("/cells/"):]))
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})

        def _cells(self, needle: str) -> None:
            # A fresh store view per request: the daemon appends records
            # while we serve, and a cached load would go stale.
            from repro.harness.store import RunStore

            records = RunStore(store_path).load()
            if needle in records:
                self._send_json(200, _cell_payload(records[needle]))
                return
            matches = [key for key in records if needle in key]
            if len(matches) == 1:
                self._send_json(200, _cell_payload(records[matches[0]]))
            elif matches:
                self._send_json(300, {"error": f"{len(matches)} cells match "
                                               f"{needle!r}",
                                      "candidates": sorted(matches)[:10]})
            else:
                self._send_json(404, {"error": f"no cell matches {needle!r}"})

    return _Handler


class ObsServer:
    """The daemon-thread HTTP server over one run store's journals."""

    def __init__(self, store_path: str | Path, port: int = 0,
                 host: str = "127.0.0.1"):
        self.store_path = Path(store_path)
        self._httpd = ThreadingHTTPServer((host, port),
                                          _make_handler(self.store_path))
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ObsServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-obs-http", daemon=True)
        self._thread.start()
        log.info("obs_http_start", logger="obs", host=self.host, port=self.port,
                 store=str(self.store_path))
        return self

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)


# ---------------------------------------------------------------------- #
# CLI — exposition render/validate (used by the CI obs-smoke job)
# ---------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.http",
        description="render or validate Prometheus text exposition for a run store")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--render", metavar="STORE",
                       help="print the /metrics exposition for a store")
    group.add_argument("--validate", metavar="FILE",
                       help="schema-check a scraped exposition ('-' for stdin)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.render:
        console(render_exposition(args.render).rstrip("\n"))
        return 0
    text = (sys.stdin.read() if args.validate == "-"
            else Path(args.validate).read_text())
    try:
        counts = validate_exposition(text)
    except ValueError as exc:
        console(f"INVALID exposition: {exc}")
        return 1
    console(f"valid exposition: {counts['families']} families, "
            f"{counts['samples']} samples")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
