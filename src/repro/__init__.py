"""repro — a reproduction of "Canopy: Property-Driven Learning for Congestion Control".

The package is organized bottom-up:

* substrates: :mod:`repro.nn` (numpy neural nets), :mod:`repro.rl` (TD3),
  :mod:`repro.abstract` (box abstract interpretation / IBP),
  :mod:`repro.cc` (bottleneck-link simulator + classic TCP controllers),
  :mod:`repro.traces` (synthetic / cellular / wide-area workloads),
  :mod:`repro.orca` (the Orca learned congestion controller);
* the paper's contribution: :mod:`repro.core` (properties, quantitative
  certificates, the IBP verifier, QC-shaped training, runtime fallback);
* :mod:`repro.harness` — the evaluation harness regenerating every figure and
  table of the paper's evaluation section.

Quickstart::

    from repro.core import CanopyConfig, CanopyTrainer, TrainerConfig

    config = CanopyConfig.shallow(seed=1)
    trainer = CanopyTrainer(config, TrainerConfig(total_steps=200))
    result = trainer.train()
    print(result.final_metrics())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
