#!/usr/bin/env python3
"""Define a custom property and train a Canopy model against it.

The paper emphasizes that P1–P5 are not exhaustive: operators craft properties
matching their deployment.  This example defines a new property —

    "If the past k observed loss rates are all above 50%, the controller must
     not increase cwnd, regardless of the delay signal."

— expresses it in Canopy's property format, trains a controller with it in the
loop, and prints its QC_sat before and after training.

Run with::

    python examples/custom_property.py [training_steps]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.config import CanopyConfig
from repro.core.properties import ActionKind, PropertySet, PropertySpec
from repro.core.trainer import CanopyTrainer, TrainerConfig
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.observations import ObservationConfig


def make_custom_property() -> PropertySpec:
    """'Severe loss => never grow the window', independent of queuing delay."""
    return PropertySpec(
        name="NoGrowthUnderSevereLoss",
        description="If the past k loss rates all exceed 50%, do not increase cwnd",
        kind=ActionKind.DELTA_CWND,
        delay_range=(0.0, 1.0),      # any delay — the property only cares about loss
        loss_range=(0.5, 1.0),
        dcwnd_sign=+1,
        allowed_direction=-1,
    )


def average_qcsat(verifier: Verifier, prop: PropertySpec, n_states: int = 50, seed: int = 0) -> float:
    """Mean QC feedback over random decision contexts."""
    rng = np.random.default_rng(seed)
    obs_dim = verifier.observer.state_dim
    values = []
    for _ in range(n_states):
        state = np.clip(rng.uniform(0.0, 1.0, obs_dim), 0.0, 1.0)
        cwnd_tcp = float(rng.uniform(10.0, 150.0))
        cwnd_prev = float(rng.uniform(10.0, 150.0))
        values.append(verifier.certify(prop, state, cwnd_tcp, cwnd_prev, n_components=20).feedback)
    return float(np.mean(values))


def main(training_steps: int = 600) -> None:
    custom = make_custom_property()
    properties = PropertySet("custom", [custom])
    obs_config = ObservationConfig()

    # QC_sat of an untrained controller, for reference.
    untrained_actor = make_actor(obs_config.state_dim, rng=np.random.default_rng(0))
    untrained_verifier = Verifier(untrained_actor, obs_config, VerifierConfig(n_components=20))
    before = average_qcsat(untrained_verifier, custom)

    # Train with the custom property in the loop.
    config = CanopyConfig(name="canopy-custom", properties=properties, lam=0.25,
                          n_components=5, buffer_bdp=1.0, observation=obs_config, seed=5)
    trainer = CanopyTrainer(config, TrainerConfig(total_steps=training_steps,
                                                  log_every=max(20, training_steps // 10)))
    result = trainer.train()

    trained_verifier = Verifier(result.agent.actor, obs_config, VerifierConfig(n_components=20))
    after = average_qcsat(trained_verifier, custom)

    print(f"Custom property: {custom.description}")
    print(f"  QC feedback before training: {before:.3f}")
    print(f"  QC feedback after  training: {after:.3f}")
    print(f"  final raw reward: {result.final_metrics()['raw_reward']:.3f}")
    print("\nAny property expressible as (precondition over observed features, forbidden "
          "action region) can be plugged into the same pipeline.")


if __name__ == "__main__":
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    main(steps)
