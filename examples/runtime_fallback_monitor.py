#!/usr/bin/env python3
"""Use quantitative certificates as a runtime monitor with CUBIC fallback.

Section 4.4 of the paper proposes computing QC_sat before every coarse-grained
decision and falling back to plain TCP CUBIC whenever the certificate does not
meet a threshold.  This example runs a learned controller over a cellular-like
trace with the monitor installed at several thresholds and reports how often
the fallback triggers and what it does to utilization and delay.

Run with::

    python examples/runtime_fallback_monitor.py [training_steps]
"""

from __future__ import annotations

import sys

from repro.core.monitor import QCRuntimeMonitor
from repro.harness.evaluate import EvaluationSettings, run_scheme_on_trace, scheme_factory
from repro.harness.models import get_trained_model
from repro.harness.reporting import format_rows
from repro.traces.cellular import make_cellular_trace


def main(training_steps: int = 600) -> None:
    model = get_trained_model("canopy-deep", training_steps=training_steps, seed=11)
    orca = get_trained_model("orca", training_steps=training_steps, seed=11)
    trace = make_cellular_trace("cellular-verizon", duration=20.0)
    settings = EvaluationSettings(duration=20.0, buffer_bdp=5.0, min_rtt=0.05, seed=11)

    rows = []
    for scheme_name, scheme_model in (("canopy-deep", model), ("orca", orca)):
        for threshold in (0.0, 0.5, 0.8):
            monitor = QCRuntimeMonitor(
                scheme_model.make_verifier(n_components=10),
                model.properties,             # monitor against the deep-buffer properties
                threshold=threshold,
                n_components=10,
                enabled=threshold > 0.0,
            )
            factory = scheme_factory(scheme_name, model=scheme_model,
                                     decision_filter=monitor.decision_filter, seed=11)
            result = run_scheme_on_trace(factory, trace, settings, scheme_name=scheme_name)
            rows.append({
                "scheme": scheme_name,
                "threshold": threshold,
                "utilization": result.summary.utilization,
                "p95_delay_ms": result.summary.p95_queuing_delay_ms,
                "mean_runtime_qc": monitor.mean_qc,
                "fallback_fraction": monitor.fallback_fraction,
            })

    print(f"Runtime QC monitoring on trace {trace.name!r} (5 BDP buffer):")
    print(format_rows(rows))
    print("\nthreshold 0.0 disables the fallback; higher thresholds hand more decisions to CUBIC.")


if __name__ == "__main__":
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    main(steps)
