"""Serving an experiment grid across a crash-surviving worker fleet.

``serve_experiment`` is the programmatic face of ``python -m repro serve``:
it expands a registered experiment's grid into a lease-based work queue on a
run store, spawns worker processes that pull cells under TTL leases, and
streams each finished cell to ``records.jsonl`` as it completes.  Workers
that die mid-cell (here: one SIGKILLs itself via ``chaos_kill``) lose their
lease at TTL expiry; the daemon reclaims the cell, hands it to a fresh
worker, and the finished store is byte-identical to a serial run — the
determinism contract the serve smoke job in CI enforces with
``benchjson --store-diff``.

While (or after) a grid is being served, ``python -m repro status <store>``
replays the on-disk lease journal into a live progress report — no RPC to
the daemon, just the journal.

Run me::

    PYTHONPATH=src python examples/serve_fleet.py
"""

import tempfile
from pathlib import Path

from repro.harness.registry import REGISTRY
from repro.harness.store import RunStore
from repro.serve.daemon import serve_experiment
from repro.serve.status import format_status, read_status

#: A tiny classical-scheme slice of the workload_stress grid (no training,
#: so the example runs in seconds): 2 schemes x 2 workloads x 2 seeds.
OVERRIDES = {
    "schemes": "cubic,vegas",
    "topology": "single_bottleneck",
    "workload": "static,poisson(0.1)",
    "duration": "2.0",
    "seeds": "1,2",
}

if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "served"

        # Serve the grid on two workers; the first worker kill -9s itself on
        # receiving its second cell, exercising the reclaim path.
        result = serve_experiment("workload_stress", OVERRIDES,
                                  store=RunStore(store_dir), workers=2,
                                  ttl_s=5.0, chaos_kill=2)
        print(f"served {result['served_cells']} cells with "
              f"{result['reclaims']} reclaim(s) at "
              f"{result['cells_per_sec']:.1f} cells/s")

        # The lease journal doubles as the status feed.
        print(format_status(read_status(store_dir)))

        # Serving is resumable like any store-backed run: a second serve of
        # the same grid finds every cell cached and computes nothing.
        again = serve_experiment("workload_stress", OVERRIDES,
                                 store=RunStore(store_dir), workers=0)
        print(f"re-serve computed {again['served_cells']} cells "
              f"(everything cached)")

        # And the rows agree with a plain serial run of the same grid.
        serial = REGISTRY.run("workload_stress", OVERRIDES)
        assert serial["rows"] == again["rows"], "serve broke determinism"
        print(f"serial run agrees on all {len(serial['rows'])} rows")
