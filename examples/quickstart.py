#!/usr/bin/env python3
"""Quickstart: train a small Canopy model, certify it, and compare it to CUBIC.

This walks through the whole pipeline in a couple of minutes on a laptop:

1. train a Canopy model for the shallow-buffer properties (P1 + P2) with the
   quantitative-certificate feedback in the loop,
2. evaluate it on an unseen synthetic trace against TCP CUBIC,
3. compute QC_sat — the certified fraction of the property input region —
   for the trained controller.

Run with::

    python examples/quickstart.py [training_steps]
"""

from __future__ import annotations

import sys

from repro.core import CanopyConfig, CanopyTrainer, TrainerConfig
from repro.harness.evaluate import EvaluationSettings, evaluate_qcsat, run_scheme_on_trace, scheme_factory
from repro.harness.models import TrainedModel
from repro.harness.reporting import format_rows
from repro.traces.synthetic import make_synthetic_trace


def main(training_steps: int = 600) -> None:
    # 1. Train -----------------------------------------------------------------
    print(f"Training a Canopy shallow-buffer model for {training_steps} steps ...")
    config = CanopyConfig.shallow(seed=7)
    trainer = CanopyTrainer(config, TrainerConfig(total_steps=training_steps,
                                                  log_every=max(20, training_steps // 10)))
    training = trainer.train()
    for log in training.history:
        print(f"  step {log.step:4d}  raw reward {log.raw_reward:6.3f}  "
              f"verifier reward {log.verifier_reward:6.3f}")
    model = TrainedModel(kind="canopy-shallow", config=config, training=training)

    # 2. Evaluate against CUBIC on an unseen trace ------------------------------
    trace = make_synthetic_trace("sawtooth-12-60")
    settings = EvaluationSettings(duration=15.0, buffer_bdp=0.5, min_rtt=0.04, seed=7)
    rows = []
    for name, factory in (
        ("canopy", scheme_factory("canopy", model=model, seed=7)),
        ("cubic", scheme_factory("cubic")),
    ):
        result = run_scheme_on_trace(factory, trace, settings, scheme_name=name)
        rows.append({"scheme": name, **result.summary.as_dict()})
    print(f"\nEmpirical performance on trace {trace.name!r} (shallow 0.5 BDP buffer):")
    print(format_rows(rows, columns=["scheme", "utilization", "avg_queuing_delay_ms",
                                     "p95_queuing_delay_ms", "loss_rate"]))

    # 3. Certify ---------------------------------------------------------------
    qcsat = evaluate_qcsat(model, trace, settings, n_components=50)
    print(f"\nQC_sat for properties {qcsat.property_names} over {qcsat.n_decisions} decisions: "
          f"{qcsat.mean:.3f} +/- {qcsat.std:.3f}")
    print("A QC_sat of 1.0 would be a full boolean proof that the controller always "
          "satisfies the properties over the certified input region.")


if __name__ == "__main__":
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    main(steps)
