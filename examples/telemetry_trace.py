"""Rendering structured telemetry with ``python -m repro trace``.

The committed golden store (``tests/golden/workload_stress_mini``) is
deliberately *untraced* — telemetry defaults to ``off`` so its cell keys and
rows stay byte-identical to the pre-telemetry era.  This example shows both
sides of that contract:

1. ``trace`` on the golden store reports "no traced cells" (exit code 1);
2. re-running one of its cells with ``--set telemetry=on(10)`` produces a
   sibling store whose trace renders as per-event-group timelines plus the
   canonical ``tele_*`` summary row.

Equivalent shell session::

    PYTHONPATH=src python -m repro trace tests/golden/workload_stress_mini
    PYTHONPATH=src python -m repro run workload_stress \
        --set schemes=cubic --set "topology=fan_in(3)" \
        --set "workload=poisson(0.25)" --set duration=3.0 \
        --set "telemetry=on(10)" --store runs/telemetry_demo
    PYTHONPATH=src python -m repro trace runs/telemetry_demo --validate
    PYTHONPATH=src python -m repro trace runs/telemetry_demo --events fallback,drop

Run me::

    PYTHONPATH=src python examples/telemetry_trace.py
"""

import tempfile
from pathlib import Path

from repro.cli import main

GOLDEN = Path(__file__).resolve().parent.parent / "tests" / "golden" / "workload_stress_mini"

print("=== 1. the golden store is untraced (trace exits 1) ===")
status = main(["trace", str(GOLDEN)])
print(f"(exit code {status})\n")

print("=== 2. re-run one golden cell with telemetry enabled ===")
with tempfile.TemporaryDirectory() as tmp:
    store = str(Path(tmp) / "telemetry_demo")
    # Same cell as the golden store's cubic/fan_in(3)/poisson row, but with
    # the telemetry knob on: the cell key changes (the knob is hashed into it
    # only when enabled), so golden keys are never shadowed.
    main(["run", "workload_stress", "--store", store,
          "--set", "schemes=cubic", "--set", "topology=fan_in(3)",
          "--set", "workload=poisson(0.25)", "--set", "duration=3.0",
          "--set", "telemetry=on(10)"])

    print("\n=== 3. render the trace (full lanes + tele_* summary) ===")
    main(["trace", store, "--validate"])

    print("=== 4. narrow to the drop lane at width 48 ===")
    main(["trace", store, "--events", "drop", "--width", "48"])
