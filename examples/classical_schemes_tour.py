#!/usr/bin/env python3
"""Tour of the congestion-control substrate with the classical schemes only.

No learning involved: runs CUBIC, NewReno, Vegas and BBR over a few synthetic
and cellular traces on shallow and deep buffers and prints the utilization /
delay / loss table, plus a two-flow fairness check.  Useful as a sanity check
of the simulator and as a template for adding new classical controllers.

Run with::

    python examples/classical_schemes_tour.py
"""

from __future__ import annotations

from repro.harness.evaluate import EvaluationSettings, run_schemes, scheme_factory
from repro.harness.fairness import fairness_convergence
from repro.harness.reporting import format_rows
from repro.cc.cubic import CubicController
from repro.traces.cellular import make_cellular_trace
from repro.traces.synthetic import make_synthetic_trace


def main() -> None:
    schemes = {name: scheme_factory(name) for name in ("cubic", "newreno", "vegas", "bbr")}
    traces = [
        make_synthetic_trace("step-12-48"),
        make_synthetic_trace("sawtooth-24-96"),
        make_cellular_trace("cellular-att", duration=20.0),
    ]

    for buffer_bdp in (1.0, 5.0):
        settings = EvaluationSettings(duration=20.0, buffer_bdp=buffer_bdp, min_rtt=0.04, seed=1)
        results = run_schemes(schemes, traces, settings)
        rows = [r.as_row() for r in results]
        print(f"\n=== Buffer = {buffer_bdp:g} BDP ===")
        print(format_rows(rows, columns=["trace", "scheme", "utilization",
                                         "avg_queuing_delay_ms", "p95_queuing_delay_ms", "loss_rate"]))

    print("\n=== Fairness: three CUBIC flows joining every 10 s ===")
    fairness = fairness_convergence(CubicController, "cubic", n_flows=3, join_interval=10.0)
    print("final per-flow throughputs (Mbps):",
          [round(t, 2) for t in fairness["final_throughputs_mbps"]])
    print("Jain fairness index:", round(fairness["jain_index"], 3))


if __name__ == "__main__":
    main()
