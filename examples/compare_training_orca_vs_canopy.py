#!/usr/bin/env python3
"""Reproduce the training-curve comparison (Figure 17) at example scale.

Trains the Orca baseline (raw reward only) and Canopy (QC-shaped reward) with
the same budget, prints both training curves, and then evaluates the QC_sat of
both resulting models on a few traces (the Figure 5 comparison).

Run with::

    python examples/compare_training_orca_vs_canopy.py [training_steps]
"""

from __future__ import annotations

import sys

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def main(training_steps: int = 800) -> None:
    print(f"=== Training curves (Figure 17), {training_steps} steps per model ===")
    curves = experiments.training_curves(training_steps=training_steps, seed=3)
    for scheme in ("orca", "canopy"):
        series = curves["curves"][scheme]
        print(f"\n{scheme}:")
        print(f"  {'step':>6} {'raw':>8} {'verifier':>10}")
        for step, raw, verifier in zip(series["step"], series["raw"], series["verifier"]):
            print(f"  {int(step):>6} {raw:>8.3f} {verifier:>10.3f}")
    print("\nfinal metrics:", curves["final"])

    print("\n=== QC_sat comparison (Figure 5), shallow & deep properties ===")
    qcsat = experiments.qcsat_buffers(training_steps=training_steps, duration=10.0,
                                      n_components=50, n_synthetic=3, n_cellular=2, seed=3)
    print_experiment("QC_sat per property family / trace kind", qcsat,
                     columns=["property_family", "trace_kind", "scheme", "qcsat_mean", "qcsat_std"])


if __name__ == "__main__":
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    main(steps)
