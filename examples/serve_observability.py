"""Watching a chaos-kill fleet live through the observability plane.

The serve daemon's observability plane has three faces, all fed by the same
``metrics.jsonl`` stream of cumulative worker frames:

* ``serve --http PORT`` — an in-daemon HTTP thread serving ``GET /status``
  (the lease-journal replay as JSON), ``GET /metrics`` (Prometheus text
  exposition: lease-state gauges, per-phase tick latency histograms,
  reclaim counters), and ``GET /cells/<key>`` (one stored row plus its
  ``tele_*`` summary).
* ``status --watch`` — the same replay re-rendered in the terminal.
* ``python -m repro.harness.store compact`` — retention: fold old metric
  frames into rollup segments and drop raw event traces, while ``tele_*``
  summaries and counterexample-pinned traces always survive.

None of it touches the rows: the served store stays byte-identical to a
serial run with observability off (the determinism wall the obs-smoke CI
job enforces).

This example serves a chaos-kill grid (one worker SIGKILLs itself mid-run)
with the HTTP surface up, polls ``/metrics`` from a background thread while
the fleet works, then compacts the store and shows what retention kept.

Run me::

    PYTHONPATH=src python examples/serve_observability.py
"""

import json
import socket
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.harness.store import RunStore
from repro.obs.aggregate import fleet_rollup, format_phase_table, fleet_phase_report
from repro.obs.http import validate_exposition
from repro.obs.metrics import MetricsJournal
from repro.obs.retention import RetentionPolicy, compact_store
from repro.serve.daemon import serve_experiment

#: Classical-only slice so the example runs in seconds — but long enough
#: (8 cells of a 30 s emulation) that the poller catches the fleet mid-grid.
#: Telemetry on so the compaction pass has raw event traces to drop.
OVERRIDES = {
    "schemes": "cubic,vegas",
    "topology": "single_bottleneck",
    "workload": "poisson(0.1)",
    "duration": "30.0",
    "seeds": "1,2,3,4",
    "telemetry": "on(10)",
}


def poll_metrics(port: int, stop: threading.Event, samples: list) -> None:
    """Scrape GET /metrics like a Prometheus agent would, while serving runs."""
    url = f"http://127.0.0.1:{port}/metrics"
    while not stop.is_set():
        try:
            text = urllib.request.urlopen(url, timeout=2.0).read().decode()
            validate_exposition(text)  # every scrape is well-formed exposition
            samples.append(text)
        except OSError:
            pass  # daemon still starting or already gone
        stop.wait(0.1)


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "served"
        with socket.socket() as probe:  # pick a free port up front so the
            probe.bind(("127.0.0.1", 0))  # poller knows where to scrape
            port = probe.getsockname()[1]

        stop = threading.Event()
        scrapes: list = []
        poller = threading.Thread(target=poll_metrics, args=(port, stop, scrapes),
                                  daemon=True)
        poller.start()

        result = serve_experiment("workload_stress", OVERRIDES,
                                  store=RunStore(store_dir), workers=2,
                                  ttl_s=5.0, chaos_kill=3, http_port=port,
                                  metrics_interval=0.2)
        time.sleep(0.2)  # let the poller catch the final state
        stop.set()
        poller.join()

        print(f"served {result['served_cells']} cells with "
              f"{result['reclaims']} reclaim(s); {result['metrics_frames']} "
              f"metric frame(s) streamed; {len(scrapes)} live /metrics "
              f"scrape(s), all valid exposition")

        # The on-disk stream supports the same rollup the daemon serves.
        frames = MetricsJournal(store_dir).read()
        rollup = fleet_rollup(frames)
        print(f"fleet rollup: {rollup['fleet']['cells_done']} cells over "
              f"{rollup['fleet']['workers']} worker(s), "
              f"{rollup['fleet']['ticks']} simulator ticks")
        print(format_phase_table(fleet_phase_report(rollup["fleet"])))

        # Retention: keep one raw trace, fold frames into a rollup segment.
        report = compact_store(store_dir,
                               RetentionPolicy(keep_traces=1, keep_frames=2))
        print(f"compaction: dropped {report['traces_dropped']} raw trace(s), "
              f"folded {report['frames_folded']} frame(s), "
              f"ratio {report['compaction_ratio']:.2f}")

        # tele_* summaries survive compaction on every row.
        rows = [record.row for record in RunStore(store_dir).load().values()]
        kept_summaries = sum(1 for row in rows if "tele_n_events" in row)
        print(f"{kept_summaries}/{len(rows)} rows still carry tele_* summaries")

        # And the audit trail says exactly what happened.
        audit = json.loads((store_dir / "compactions.jsonl").read_text()
                           .splitlines()[-1])
        print(f"audit: {audit['event']} at ratio "
              f"{audit['compaction_ratio']:.2f} under policy {audit['policy']}")
