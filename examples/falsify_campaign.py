#!/usr/bin/env python3
"""API-driven falsification campaign: search, shrink, promote, replay.

Runs a tiny deterministic campaign against the ``workload_stress`` experiment
collapsed to a classical CUBIC cell at a shallow buffer, hunting for
``loss_burst`` violations (loss rate above a threshold) with the seeded
random strategy — the same toy campaign the CI smoke job and the committed
golden counterexample store use.  Then shows the three follow-up moves:

* read the campaign journal back as a report,
* replay the promoted counterexamples as a regression gate, and
* rerun the identical campaign to demonstrate the byte-identity contract
  (same campaign seed ⇒ same journal, fully served from the run-store cache).

Everything here is also reachable from the CLI::

    python -m repro falsify workload_stress --objective loss_burst \
        --threshold 0.001 --strategy random --budget 12 \
        --set schemes=cubic --set duration=3 --set buffer_bdp=0.25 \
        --campaign-seed 7 --store runs/falsify-example
    python -m repro falsify report runs/falsify-example
    python -m repro falsify --check runs/falsify-example/counterexamples
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.falsify import (
    CampaignConfig,
    check_counterexamples,
    resolve_objective,
    run_campaign,
)
from repro.falsify.report import format_report, read_campaign
from repro.harness.store import RunStore


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="falsify-example-"))
    config = CampaignConfig(
        experiment="workload_stress",
        objective=resolve_objective("loss_burst", threshold=0.001),
        budget=12,
        strategy="random",
        campaign_seed=7,
        overrides={"schemes": "cubic", "duration": "3", "buffer_bdp": "0.25"},
        max_counterexamples=2,
    )

    store = RunStore(workdir / "campaign")
    summary = run_campaign(config, store)
    print(f"searched {summary['candidates']} candidates "
          f"({summary['computed_cells']} computed, "
          f"{summary['cached_cells']} cached), "
          f"found {summary['violations_found']} violation(s), "
          f"best score {summary['best_score']:.4f}")

    print("\n=== campaign report ===")
    print(format_report(read_campaign(store.path)))

    print("\n=== regression gate (falsify --check) ===")
    result = check_counterexamples(store.path / "counterexamples")
    for replay in result["results"]:
        verdict = "PASS" if replay["passed"] else "FAIL"
        print(f"  {replay['id']} {verdict} score={replay['score']:.4f} "
              f"(threshold {replay['threshold']:g})")
    print("gate:", "green" if result["passed"] else "RED")

    print("\n=== determinism: rerun the identical campaign ===")
    journal_before = (store.path / "campaign.jsonl").read_bytes()
    rerun = run_campaign(config, store)
    journal_after = (store.path / "campaign.jsonl").read_bytes()
    print(f"rerun computed {rerun['computed_cells']} cells "
          f"(everything cached), journal byte-identical: "
          f"{journal_before == journal_after}")


if __name__ == "__main__":
    main()
