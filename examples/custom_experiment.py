"""Registering a custom experiment in ~20 lines.

The experiment registry turns an experiment into a declaration: named axes
(overridable from code or via ``python -m repro run buffer_sweep --set
buffers=0.25,4.0 --set seeds=0..2``), a build hook expanding the grid into
tasks, and — optionally — an aggregator (the default returns the plain rows).
Everything else (process-pool sharding, per-cell run records, ``--resume``)
comes for free.

Run me::

    PYTHONPATH=src python examples/custom_experiment.py
"""

from repro.harness.evaluate import EvaluationSettings
from repro.harness.parallel import ExperimentTask
from repro.harness.registry import REGISTRY
from repro.harness.reporting import print_experiment
from repro.harness.spec import trace_subset

BUFFER_SWEEP_AXES = {
    "buffers": (0.5, 1.0, 2.0),
    "schemes": ("cubic", "bbr"),
    "duration": 5.0,
    "n_synthetic": 1,
    "seeds": (1,),
}


@REGISTRY.register("buffer_sweep", axes=BUFFER_SWEEP_AXES,
                   description="classical schemes across buffer depths")
def _buffer_sweep_build(axes):
    tasks = []
    for buffer_bdp in axes["buffers"]:
        for seed in axes["seeds"]:
            settings = EvaluationSettings(duration=axes["duration"],
                                          buffer_bdp=buffer_bdp, seed=seed)
            for trace in trace_subset("synthetic", axes["n_synthetic"]):
                for scheme in axes["schemes"]:
                    tasks.append(ExperimentTask(scheme=scheme, trace=trace,
                                                settings=settings,
                                                tags={"buffer_bdp": buffer_bdp}))
    return tasks


if __name__ == "__main__":
    result = REGISTRY.run("buffer_sweep", {"buffers": "0.5,2.0"}, n_jobs=2)
    print_experiment("Custom experiment: buffer_sweep", result,
                     columns=["buffer_bdp", "scheme", "trace", "utilization",
                              "avg_queuing_delay_ms", "loss_rate"])
