"""Figure 13 — runtime performance with the QC_sat-guided fallback.

Paper claim: consulting QC_sat before every decision and falling back to
CUBIC below a threshold improves Orca's utilization (QC_sat is a useful
runtime signal), while Canopy's performance is largely unaffected because it
rarely trips the threshold.  The benchmark prints, per buffer family, scheme
and threshold, the utilization / delays / fallback fraction, and asserts that
Canopy falls back no more often than Orca at the strictest threshold.
"""

from benchconfig import DURATION, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment

THRESHOLDS = (0.0, 0.5, 0.8)


def test_fig13_runtime_fallback(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.fallback_runtime,
        duration=DURATION, thresholds=THRESHOLDS, n_components=10, n_traces=2, **bench_scale,
    )
    print_experiment(
        "Figure 13: runtime fallback guided by QC_sat (threshold 0.0 = fallback disabled)",
        result,
        columns=["buffer_family", "scheme", "threshold", "utilization",
                 "avg_delay_ms", "p95_delay_ms", "fallback_fraction"],
    )
    strict = max(THRESHOLDS)
    rows = {(r["buffer_family"], r["scheme"], r["threshold"]): r for r in result["rows"]}
    for family in ("shallow", "deep"):
        canopy_fb = rows[(family, "canopy", strict)]["fallback_fraction"]
        orca_fb = rows[(family, "orca", strict)]["fallback_fraction"]
        print(f"{family}: fallback fraction at threshold {strict}  canopy: {canopy_fb:.2f}  orca: {orca_fb:.2f}")
        assert canopy_fb <= orca_fb + 0.15
