"""Workload-stress sweep — dynamic workloads as a first-class scenario axis.

The paper evaluates a single flow on a quiet path; this benchmark drives the
``workload_stress`` grid — (scheme × topology family × workload) with
certification on the learned cells — and records, in the bench JSON
(``extra_info``):

* the certificate throughput of the contended grid (certificates/sec), and
* one utilization / delay / loss (+ QC_sat) row per (scheme, family,
  workload) cell group.

Workloads and families can be overridden through ``REPRO_BENCH_WORKLOADS`` /
``REPRO_BENCH_WORKLOAD_TOPOLOGIES`` (comma separated — the workload grammar
is comma-free precisely so these lists split cleanly).  The differential
suite (``tests/test_workload.py``) pins the ``static`` workload to the legacy
single-flow trajectory, so static rows here are directly comparable with
every historical figure.
"""

import os

from benchconfig import DURATION, N_JOBS, SEED, run_once

from repro.harness import experiments
from repro.harness.reporting import format_rows
from repro.harness.spec import parse_topologies
from repro.workload.spec import canonical_workload

TOPOLOGIES = parse_topologies(os.environ.get(
    "REPRO_BENCH_WORKLOAD_TOPOLOGIES", "single_bottleneck,fan_in(3),shared_segment"))

WORKLOADS = tuple(
    canonical_workload(spec) for spec in os.environ.get(
        "REPRO_BENCH_WORKLOADS", "static,responsive(cubic),poisson(0.25)").split(","))

TRAINING_STEPS = int(os.environ.get("REPRO_BENCH_WORKLOAD_STEPS", "200"))


def test_workload_stress_grid(benchmark):
    result = run_once(
        benchmark, experiments.workload_stress,
        schemes=("canopy-shallow",), topologies=TOPOLOGIES, workloads=WORKLOADS,
        training_steps=TRAINING_STEPS, duration=DURATION, n_components=8,
        n_traces=1, seed=SEED, n_jobs=N_JOBS,
    )

    print("\nWorkload-stress sweep: certified safety + performance under contention")
    print(format_rows(result["rows"], columns=["scheme", "topology", "workload",
                                               "utilization", "avg_delay_ms",
                                               "loss_rate", "qcsat"]))
    print(f"certificates: {result['certificates']} "
          f"({result['certificates_per_sec']:,.1f}/s, n_jobs={result['n_jobs']})")

    benchmark.extra_info["workloads"] = list(WORKLOADS)
    benchmark.extra_info["topologies"] = list(TOPOLOGIES)
    benchmark.extra_info["rows"] = result["rows"]

    assert len(result["rows"]) == len(TOPOLOGIES) * len(WORKLOADS)
    assert result["certificates"] > 0
    by_workload = {}
    for row in result["rows"]:
        by_workload.setdefault(row["workload"], []).append(row)
        assert 0.0 <= row["utilization"] <= 1.5, (row["topology"], row["workload"])
        assert 0.0 <= row["qcsat"] <= 1.0
    assert set(by_workload) == set(WORKLOADS)

    # Shape: a responsive competitor costs the flow under test capacity
    # relative to the quiet static workload on the same families.
    if "static" in by_workload and "responsive(cubic)" in by_workload:
        static_util = {row["topology"]: row["utilization"]
                       for row in by_workload["static"]}
        for row in by_workload["responsive(cubic)"]:
            assert row["utilization"] <= static_util[row["topology"]] + 0.05, (
                f"{row['topology']}: contended flow should not beat the quiet run")
