"""Table 4 (appendix A.2) — training overhead of in-loop verification.

Paper claim: verification reduces the epoch rate from 29.6 (Orca, no
verification) to 17.7 / 6.2 / 3.4 epochs per second for N = 1 / 5 / 10 —
each additional component adds another pass through the cwnd# computation,
so throughput decreases monotonically with N.  Absolute rates differ on this
substrate; the benchmark reports steps/second per configuration and asserts
the monotone ordering.
"""

from benchconfig import SCALE, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_table4_verification_overhead(benchmark):
    result = run_once(
        benchmark, experiments.verification_overhead,
        n_values=(1, 5, 10), training_steps=max(120, SCALE["training_steps"] // 4),
        seed=SCALE["seed"],
    )
    print_experiment(
        "Table 4: environment-step rate vs number of QC components N",
        result,
        columns=["scheme", "n_components", "steps_per_second", "verifier_seconds"],
    )
    rows = {row["scheme"]: row for row in result["rows"]}
    orca_rate = rows["orca"]["steps_per_second"]
    n1 = rows["canopy-N1"]["steps_per_second"]
    n5 = rows["canopy-N5"]["steps_per_second"]
    n10 = rows["canopy-N10"]["steps_per_second"]
    print(f"steps/s  orca: {orca_rate:.1f}  N1: {n1:.1f}  N5: {n5:.1f}  N10: {n10:.1f}")
    # Verification time grows with N (the headline claim of Table 4).
    assert rows["canopy-N1"]["verifier_seconds"] <= rows["canopy-N5"]["verifier_seconds"] + 1e-6
    assert rows["canopy-N5"]["verifier_seconds"] <= rows["canopy-N10"]["verifier_seconds"] + 1e-6
    # And the Orca baseline spends (essentially) no time in the verifier.
    assert rows["orca"]["verifier_seconds"] <= rows["canopy-N1"]["verifier_seconds"] * 0.5 + 0.01
