"""Figure 15 — convergence behaviour with homogeneous flows joining over time.

Paper claim: when flows of the same scheme join every 12 s on a 48 Mbps /
20 ms / 1 BDP link, the Canopy shallow model converges like Orca (which in
turn behaves like CUBIC); the deep-buffer model converges more slowly but
eventually.  The benchmark prints the per-flow final throughputs and the
Jain fairness index per scheme.

Every scheme is a declarative :class:`MultiFlowTask` (scheme label + model
kind, no factory closures), so the grid shards across a process pool via
``REPRO_BENCH_JOBS`` with rows identical to a serial run.
"""

from benchconfig import N_JOBS, SEED, TRAINING_STEPS, run_once

from repro.harness.fairness import MultiFlowTask, run_multiflow_grid
from repro.harness.models import get_trained_model
from repro.harness.reporting import format_rows

SCHEMES = [
    ("cubic", None),
    ("orca", "orca"),
    ("canopy-shallow", "canopy-shallow"),
    ("canopy-deep", "canopy-deep"),
]


def test_fig15_fairness_convergence(benchmark):
    def run_experiment():
        # Train in-process first so pool workers inherit the warm model cache.
        for _, kind in SCHEMES:
            if kind is not None:
                get_trained_model(kind, training_steps=TRAINING_STEPS, seed=SEED)
        tasks = [
            MultiFlowTask(mode="fairness_convergence", scheme=scheme, value=3,
                          model_kind=kind, training_steps=TRAINING_STEPS, model_seed=SEED,
                          join_interval=12.0, bandwidth_mbps=48.0, min_rtt=0.02,
                          buffer_bdp=1.0)
            for scheme, kind in SCHEMES
        ]
        return run_multiflow_grid(tasks, n_jobs=N_JOBS).rows

    grid_rows = run_once(benchmark, run_experiment)

    print("\nFigure 15: fairness convergence (3 flows joining every 12 s, 48 Mbps / 20 ms / 1 BDP)")
    rows = []
    for grid_row in grid_rows:
        throughputs = grid_row["final_throughputs_mbps"]
        rows.append({
            "scheme": grid_row["scheme"],
            "flow0_mbps": throughputs[0],
            "flow1_mbps": throughputs[1],
            "flow2_mbps": throughputs[2],
            "jain_index": grid_row["jain_index"],
        })
    print(format_rows(rows))

    for row in rows:
        assert 1.0 / 3.0 <= row["jain_index"] <= 1.0 + 1e-9
    # Canopy's shallow model stays within a reasonable band of Orca's fairness.
    by_scheme = {row["scheme"]: row for row in rows}
    assert by_scheme["canopy-shallow"]["jain_index"] >= by_scheme["orca"]["jain_index"] - 0.3
