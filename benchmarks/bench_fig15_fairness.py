"""Figure 15 — convergence behaviour with homogeneous flows joining over time.

Paper claim: when flows of the same scheme join every 12 s on a 48 Mbps /
20 ms / 1 BDP link, the Canopy shallow model converges like Orca (which in
turn behaves like CUBIC); the deep-buffer model converges more slowly but
eventually.  The benchmark prints per-flow throughputs over time buckets and
the final Jain fairness index per scheme.
"""

from benchconfig import SCALE, SEED, TRAINING_STEPS, run_once

from repro.cc.cubic import CubicController
from repro.harness.evaluate import scheme_factory
from repro.harness.fairness import fairness_convergence
from repro.harness.models import get_trained_model
from repro.harness.reporting import format_rows


def test_fig15_fairness_convergence(benchmark):
    def run_experiment():
        canopy_shallow = get_trained_model("canopy-shallow", training_steps=TRAINING_STEPS, seed=SEED)
        canopy_deep = get_trained_model("canopy-deep", training_steps=TRAINING_STEPS, seed=SEED)
        orca = get_trained_model("orca", training_steps=TRAINING_STEPS, seed=SEED)
        schemes = {
            "cubic": lambda: CubicController(),
            "orca": scheme_factory("orca", model=orca, seed=SEED),
            "canopy-shallow": scheme_factory("canopy-shallow", model=canopy_shallow, seed=SEED),
            "canopy-deep": scheme_factory("canopy-deep", model=canopy_deep, seed=SEED),
        }
        results = {}
        for name, factory in schemes.items():
            results[name] = fairness_convergence(factory, name, n_flows=3, join_interval=12.0,
                                                 bandwidth_mbps=48.0, min_rtt=0.02, buffer_bdp=1.0)
        return results

    results = run_once(benchmark, run_experiment)

    print("\nFigure 15: fairness convergence (3 flows joining every 12 s, 48 Mbps / 20 ms / 1 BDP)")
    rows = []
    for name, result in results.items():
        throughputs = result["final_throughputs_mbps"]
        rows.append({
            "scheme": name,
            "flow0_mbps": throughputs[0],
            "flow1_mbps": throughputs[1],
            "flow2_mbps": throughputs[2],
            "jain_index": result["jain_index"],
        })
    print(format_rows(rows))

    for row in rows:
        assert 1.0 / 3.0 <= row["jain_index"] <= 1.0 + 1e-9
    # Canopy's shallow model stays within a reasonable band of Orca's fairness.
    by_scheme = {row["scheme"]: row for row in rows}
    assert by_scheme["canopy-shallow"]["jain_index"] >= by_scheme["orca"]["jain_index"] - 0.3
