"""Figure 15 — convergence behaviour with homogeneous flows joining over time.

Paper claim: when flows of the same scheme join every 12 s on a 48 Mbps /
20 ms / 1 BDP link, the Canopy shallow model converges like Orca (which in
turn behaves like CUBIC); the deep-buffer model converges more slowly but
eventually.  The benchmark prints the per-flow final throughputs and the
Jain fairness index per scheme.

Every scheme is a declarative :class:`MultiFlowTask` (scheme label + model
kind, no factory closures) built by the registered ``fairness`` experiment,
so the grid shards across a process pool via ``REPRO_BENCH_JOBS`` with rows
identical to a serial run (and is reachable generically as
``python -m repro run fairness``).
"""

from benchconfig import N_JOBS, SEED, TRAINING_STEPS, run_once

from repro.harness import experiments
from repro.harness.reporting import format_rows

SCHEMES = ("cubic", "orca", "canopy-shallow", "canopy-deep")


def test_fig15_fairness_convergence(benchmark):
    result = run_once(
        benchmark, experiments.fairness_grid,
        schemes=SCHEMES, n_flows=3, join_interval=12.0,
        training_steps=TRAINING_STEPS, seed=SEED, n_jobs=N_JOBS,
    )
    grid_rows = result["rows"]

    print("\nFigure 15: fairness convergence (3 flows joining every 12 s, 48 Mbps / 20 ms / 1 BDP)")
    rows = []
    for grid_row in grid_rows:
        throughputs = grid_row["final_throughputs_mbps"]
        rows.append({
            "scheme": grid_row["scheme"],
            "flow0_mbps": throughputs[0],
            "flow1_mbps": throughputs[1],
            "flow2_mbps": throughputs[2],
            "jain_index": grid_row["jain_index"],
        })
    print(format_rows(rows))

    for row in rows:
        assert 1.0 / 3.0 <= row["jain_index"] <= 1.0 + 1e-9
    # Canopy's shallow model stays within a reasonable band of Orca's fairness.
    by_scheme = {row["scheme"]: row for row in rows}
    assert by_scheme["canopy-shallow"]["jain_index"] >= by_scheme["orca"]["jain_index"] - 0.3
