"""Ablation — smoothed QC feedback (Eq. 6) vs boolean per-component certification.

DESIGN.md calls out the smoothing of the QC feedback as a load-bearing design
choice: boolean per-component feedback (1 iff the component is fully
certified) is sparse and rarely positive early in training (Section 2.2 /
Section 4.3.2 of the paper).  This ablation measures, over a set of random
decision contexts and an untrained controller, how often each signal is
exactly zero and its variance — the smoothed signal should be informative
(non-degenerate) on far more states.
"""

import numpy as np
from benchconfig import run_once

from repro.core.properties import shallow_buffer_properties
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.observations import ObservationConfig


def test_ablation_smoothed_vs_boolean_feedback(benchmark):
    obs_config = ObservationConfig()
    actor = make_actor(obs_config.state_dim, rng=np.random.default_rng(3))
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=5))
    properties = shallow_buffer_properties()
    rng = np.random.default_rng(5)

    def run_ablation():
        smoothed, boolean = [], []
        for _ in range(100):
            state = np.clip(rng.uniform(0.0, 1.0, obs_config.state_dim), 0.0, 1.0)
            cwnd_tcp = float(rng.uniform(5.0, 200.0))
            cwnd_prev = float(rng.uniform(5.0, 200.0))
            for prop in properties:
                cert = verifier.certify(prop, state, cwnd_tcp, cwnd_prev)
                smoothed.append(cert.feedback)
                boolean.append(1.0 if cert.proof else 0.0)
        return np.array(smoothed), np.array(boolean)

    smoothed, boolean = run_once(benchmark, run_ablation)

    def describe(name, values):
        zero_fraction = float(np.mean(values <= 1e-9))
        print(f"{name:<10} mean={values.mean():.3f}  std={values.std():.3f}  "
              f"fraction exactly zero={zero_fraction:.2f}")
        return zero_fraction

    print("\nAblation: smoothed (Eq. 6) vs boolean per-step property feedback, untrained controller")
    smoothed_zero = describe("smoothed", smoothed)
    boolean_zero = describe("boolean", boolean)
    # The smoothed signal is dense: it is zero on no more states than the
    # boolean proof signal, and carries strictly more gradations.
    assert smoothed_zero <= boolean_zero + 1e-9
    assert len(np.unique(np.round(smoothed, 6))) >= len(np.unique(np.round(boolean, 6)))
