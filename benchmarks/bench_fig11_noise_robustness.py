"""Figure 11 — percentage change of the metrics under 5% observation noise.

Paper claim: under ±5% delay noise Orca is unpredictable (up to an 18% drop
in utilization), whereas the Canopy robustness model sustains at most a ~2%
drop while keeping ~95% utilization.  The benchmark prints the per-scheme
percentage changes of utilization / average delay / p95 delay and asserts that
Canopy's worst-case utilization change is no worse than Orca's.
"""

from benchconfig import DURATION, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_fig11_noise_robustness(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.noise_sensitivity,
        duration=DURATION, noise=0.05, n_traces=3, **bench_scale,
    )
    print_experiment(
        "Figure 11: % change of metrics under 5% delay noise (closer to zero is better)",
        result,
        columns=["scheme", "utilization_change_pct", "avg_delay_change_pct",
                 "p95_delay_change_pct", "max_abs_utilization_change_pct"],
    )
    rows = {row["scheme"]: row for row in result["rows"]}
    canopy = rows["canopy"]["max_abs_utilization_change_pct"]
    orca = rows["orca"]["max_abs_utilization_change_pct"]
    print(f"worst-case |utilization change|  canopy: {canopy:.2f}%  orca: {orca:.2f}%")
    assert canopy <= orca + 5.0
