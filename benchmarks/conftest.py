"""Pytest fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation at
a CI-friendly scale and prints the corresponding rows/series.  Learned models
are trained once per pytest session (the model zoo in
:mod:`repro.harness.models` caches them by ``(kind, steps, seed)``), so the
bulk of each benchmark's time is the experiment itself, not training.

Scale knobs live in :mod:`benchconfig` and can be overridden through the
``REPRO_BENCH_*`` environment variables.
"""

from __future__ import annotations

import pytest

import benchconfig


@pytest.fixture(scope="session")
def bench_scale():
    """Keyword arguments (training budget, seed) splatted into experiment drivers."""
    return dict(benchconfig.SCALE)


def pytest_configure(config):
    """Make the regenerated tables visible in the benchmark run's output.

    The project-level addopts keep output capture on for the unit-test suite;
    benchmarks exist to *print* the rows/series the paper reports, so capture
    is turned off whenever this directory's conftest is loaded.
    """
    capture_manager = config.pluginmanager.getplugin("capturemanager")
    if capture_manager is not None and config.option.capture != "no":
        config.option.capture = "no"
        capture_manager.stop_global_capturing()
        capture_manager._method = "no"
        capture_manager.start_global_capturing()
