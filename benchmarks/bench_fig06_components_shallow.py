"""Figure 6 — certified-component distribution (Δcwnd bounds), shallow buffers.

Paper claim: for the shallow-buffer properties Canopy's per-component Δcwnd
bounds mostly lie on the desirable side of zero (above for the good-condition
case, below for the bad-condition case), whereas Orca's components frequently
cross into the undesired region.  The benchmark prints, for the first 50
decisions on two traces, the fraction of certified components per scheme.
"""

import numpy as np
from benchconfig import DURATION, run_once

from repro.harness import experiments


def _summarize(result: dict) -> dict:
    feedbacks = [step["feedback"] for step in result["steps"]]
    satisfied = [step["satisfied_fraction"] for step in result["steps"]]
    return {
        "mean_feedback": float(np.mean(feedbacks)) if feedbacks else 1.0,
        "mean_satisfied_fraction": float(np.mean(satisfied)) if satisfied else 1.0,
        "steps": len(feedbacks),
    }


def test_fig06_certified_components_shallow(benchmark, bench_scale):
    def run_both():
        outputs = {}
        for model_kind in ("canopy-shallow", "orca"):
            per_trace = {}
            for trace_name in ("step-12-48", "pulse-drop-48-12"):
                per_trace[trace_name] = experiments.certified_components(
                    model_kind=model_kind, property_family="shallow", trace_name=trace_name,
                    duration=DURATION, n_components=50, max_steps=50, buffer_bdp=0.5,
                    **bench_scale,
                )
            outputs[model_kind] = per_trace
        return outputs

    outputs = run_once(benchmark, run_both)

    print("\nFigure 6: certified component distribution (shallow-buffer properties)")
    print(f"{'model':<16} {'trace':<20} {'mean QC feedback':>18} {'certified fraction':>20}")
    summary = {}
    for model_kind, per_trace in outputs.items():
        for trace_name, result in per_trace.items():
            stats = _summarize(result)
            summary[(model_kind, trace_name)] = stats
            print(f"{model_kind:<16} {trace_name:<20} {stats['mean_feedback']:>18.3f} "
                  f"{stats['mean_satisfied_fraction']:>20.3f}")

    canopy_mean = np.mean([summary[("canopy-shallow", t)]["mean_feedback"]
                           for t in ("step-12-48", "pulse-drop-48-12")])
    orca_mean = np.mean([summary[("orca", t)]["mean_feedback"]
                         for t in ("step-12-48", "pulse-drop-48-12")])
    print(f"mean feedback over both traces  canopy: {canopy_mean:.3f}  orca: {orca_mean:.3f}")
    assert canopy_mean >= orca_mean - 0.05
