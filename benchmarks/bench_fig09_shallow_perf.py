"""Figure 9 — empirical performance on shallow (1 BDP) buffers.

Paper claims (Takeaways 1, 3, 4): the Canopy shallow-buffer model improves
bandwidth utilization over Orca by ~4-10% (at the cost of somewhat higher p95
delay), and provides delays better than CUBIC while staying within ~0.92-0.98x
of BBR's utilization.  The benchmark prints the utilization / avg-delay /
p95-delay rows for every scheme on synthetic and cellular traces.
"""

from benchconfig import DURATION, N_CELLULAR, N_JOBS, N_SYNTHETIC, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_fig09_shallow_buffer_performance(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.performance_sweep,
        buffer_bdp=1.0, canopy_kind="canopy-shallow",
        duration=DURATION, n_synthetic=N_SYNTHETIC, n_cellular=N_CELLULAR, n_jobs=N_JOBS,
        **bench_scale,
    )
    print_experiment(
        "Figure 9: shallow buffer (1 BDP) — utilization vs delay",
        result,
        columns=["trace_kind", "scheme", "utilization", "avg_delay_ms", "p95_delay_ms", "loss_rate"],
    )

    by_scheme = {}
    for row in result["rows"]:
        by_scheme.setdefault(row["scheme"], []).append(row)

    def mean_util(scheme):
        rows = by_scheme[scheme]
        return sum(r["utilization"] for r in rows) / len(rows)

    canopy_util, orca_util = mean_util("canopy"), mean_util("orca")
    print(f"mean utilization  canopy: {canopy_util:.3f}  orca: {orca_util:.3f}  "
          f"cubic: {mean_util('cubic'):.3f}  bbr: {mean_util('bbr'):.3f}  vegas: {mean_util('vegas'):.3f}")
    # Shape: the Canopy shallow model does not lose utilization relative to Orca.
    assert canopy_util >= orca_util - 0.1
    # Every scheme produces a sane utilization value.
    for scheme, rows in by_scheme.items():
        assert all(0.0 < r["utilization"] <= 1.5 for r in rows), scheme
