"""Figure 16 — sensitivity of Canopy to the hyperparameters N and λ.

Paper claims: N = 1 yields loose certificates and ~1.88x higher p95 delays,
N = 10 yields very tight feedback (27% lower delays than N = 5) but loses
utilization and costs more compute; larger λ (0.5 / 0.75) trades utilization
(-8 to -10%) for lower delays (-32 to -42%).  N = 5, λ = 0.25 is the balanced
default.  The benchmark trains a Canopy shallow model per configuration and
prints the utilization / delay rows.
"""

from benchconfig import DURATION, SCALE, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_fig16_sensitivity(benchmark):
    result = run_once(
        benchmark, experiments.sensitivity,
        n_values=(1, 5, 10), lambda_values=(0.25, 0.5, 0.75),
        training_steps=max(200, SCALE["training_steps"] // 2),
        duration=DURATION, n_traces=2, seed=SCALE["seed"],
    )
    print_experiment(
        "Figure 16: sensitivity to the number of partitions N and the weight lambda",
        result,
        columns=["label", "n_components", "lambda", "utilization", "avg_delay_ms", "p95_delay_ms"],
    )
    rows = {row["label"]: row for row in result["rows"]}
    assert "N5-lam0.25" in rows
    for row in result["rows"]:
        assert 0.0 < row["utilization"] <= 1.5
        assert row["p95_delay_ms"] >= 0.0
