"""Figure 8 — certified-component distribution of the cwnd-change fraction (P5).

Paper claim: Canopy bounds the per-component cwnd-change fraction within the
±ε band (the horizontal red lines at y = ±0.01 in the figure) for most
components, while Orca's components spill far outside the band.  The
benchmark prints the fraction of components inside the band and the widest
certified change fraction observed for each scheme.
"""

import numpy as np
from benchconfig import DURATION, run_once

from repro.harness import experiments


def _band_statistics(result: dict, epsilon: float = 0.01) -> dict:
    inside = []
    widest = 0.0
    for step in result["steps"]:
        bounds = np.asarray(step["output_bounds"])
        if bounds.size == 0:
            continue
        in_band = np.mean((bounds[:, 0] >= -epsilon) & (bounds[:, 1] <= epsilon))
        inside.append(float(in_band))
        widest = max(widest, float(np.max(np.abs(bounds))))
    return {
        "fraction_in_band": float(np.mean(inside)) if inside else 1.0,
        "widest_change_fraction": widest,
        "steps": len(inside),
    }


def test_fig08_certified_components_robustness(benchmark, bench_scale):
    def run_both():
        outputs = {}
        for model_kind in ("canopy-robust", "orca"):
            per_trace = {}
            for trace_name in ("step-12-48", "flux-mid"):
                per_trace[trace_name] = experiments.certified_components(
                    model_kind=model_kind, property_family="robustness", trace_name=trace_name,
                    duration=DURATION, n_components=50, max_steps=50, buffer_bdp=2.0,
                    **bench_scale,
                )
            outputs[model_kind] = per_trace
        return outputs

    outputs = run_once(benchmark, run_both)

    print("\nFigure 8: certified cwnd-change components (robustness property, eps = 0.01)")
    print(f"{'model':<16} {'trace':<14} {'in +-eps band':>14} {'widest |change|':>18}")
    summary = {}
    for model_kind, per_trace in outputs.items():
        for trace_name, result in per_trace.items():
            stats = _band_statistics(result)
            summary[(model_kind, trace_name)] = stats
            print(f"{model_kind:<16} {trace_name:<14} {stats['fraction_in_band']:>14.3f} "
                  f"{stats['widest_change_fraction']:>18.4f}")

    canopy = np.mean([summary[("canopy-robust", t)]["fraction_in_band"] for t in ("step-12-48", "flux-mid")])
    orca = np.mean([summary[("orca", t)]["fraction_in_band"] for t in ("step-12-48", "flux-mid")])
    print(f"mean in-band fraction  canopy: {canopy:.3f}  orca: {orca:.3f}")
    assert canopy >= orca - 0.05
