"""Figure 12 — performance on emulated wide-area ("real world") paths.

Paper claim: across intra- and inter-continental paths the Canopy shallow
model provides higher bandwidth than Orca, the Canopy deep model provides
lower delays than Orca, and both dominate CUBIC on the throughput/delay
tradeoff.  The real testbed (CloudLab sender + nine Azure regions) is
substituted by the heterogeneous WAN profile set in
``repro.traces.realworld`` (see DESIGN.md).
"""

from benchconfig import DURATION, N_JOBS, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_fig12_realworld_deployment(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.realworld_deployment,
        duration=DURATION, profiles_per_category=2, n_jobs=N_JOBS, **bench_scale,
    )
    print_experiment(
        "Figure 12: emulated wide-area deployment (normalized per path)",
        result,
        columns=["category", "scheme", "normalized_throughput", "normalized_delay", "n_paths"],
    )
    rows = {(row["category"], row["scheme"]): row for row in result["rows"]}
    for category in ("intra", "inter"):
        canopy_shallow = rows[(category, "canopy-shallow")]["normalized_throughput"]
        cubic = rows[(category, "cubic")]["normalized_throughput"]
        print(f"{category}: canopy-shallow normalized throughput {canopy_shallow:.3f} vs cubic {cubic:.3f}")
        assert 0.0 < canopy_shallow <= 1.0 + 1e-9
        assert rows[(category, "canopy-deep")]["normalized_delay"] >= 1.0 - 1e-9
