"""Figure 2 — Orca entering critically bad states on a high-BDP path.

Paper claim: on a deep-buffer (high BDP) path Orca can force a much lower
window than TCP suggests and stay there, collapsing its sending rate, while
the Canopy deep-buffer model maintains its rate.  The benchmark prints the
per-scheme summary plus how often each scheme's enforced window undercuts the
TCP-suggested window by more than 2x.
"""

import numpy as np
from benchconfig import DURATION, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def _undercut_fraction(series: dict) -> float:
    tcp = np.asarray(series["cwnd_tcp"])
    enforced = np.asarray(series["cwnd_enforced"])
    if tcp.size == 0:
        return 0.0
    return float(np.mean(enforced < 0.5 * tcp))


def test_fig02_bad_state(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.motivation_bad_state,
        duration=DURATION, **bench_scale,
    )
    print_experiment(
        "Figure 2: behaviour on a deep-buffer (high BDP) path",
        result,
        columns=["scheme", "utilization", "avg_queuing_delay_ms", "p95_queuing_delay_ms"],
    )
    orca_undercut = _undercut_fraction(result["series"]["orca"])
    canopy_undercut = _undercut_fraction(result["series"]["canopy"])
    print(f"fraction of decisions enforcing < 0.5x the TCP-suggested window  "
          f"orca: {orca_undercut:.2f}  canopy: {canopy_undercut:.2f}")

    rows = {row["scheme"]: row for row in result["rows"]}
    assert rows["canopy"]["utilization"] > 0.0
    assert rows["orca"]["utilization"] > 0.0
