"""Figure 5 — QC_sat for the shallow- and deep-buffer properties.

Paper claim: Canopy reaches 0.72–0.77 QC_sat (shallow) and 0.42–0.76 (deep)
while Orca only reaches 0.25–0.67 / 0.15–0.66 — i.e. Canopy provides
significantly higher worst-case satisfaction (up to ~1.4x).  Absolute values
differ at CI scale; the benchmark asserts the ordering (Canopy >= Orca) for
the shallow-buffer family, which is the paper's headline comparison.
"""

from benchconfig import DURATION, EVAL_COMPONENTS, N_CELLULAR, N_JOBS, N_SYNTHETIC, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_fig05_qcsat_buffer_properties(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.qcsat_buffers,
        duration=DURATION, n_components=EVAL_COMPONENTS,
        n_synthetic=N_SYNTHETIC, n_cellular=N_CELLULAR, n_jobs=N_JOBS, **bench_scale,
    )
    print_experiment(
        "Figure 5: QC_sat (mean/std) for shallow & deep buffer properties",
        result,
        columns=["property_family", "trace_kind", "scheme", "qcsat_mean", "qcsat_std", "n_traces"],
    )

    def mean_for(family: str, scheme: str) -> float:
        values = [row["qcsat_mean"] for row in result["rows"]
                  if row["property_family"] == family and row["scheme"] == scheme]
        return sum(values) / len(values)

    canopy_shallow = mean_for("shallow", "canopy")
    orca_shallow = mean_for("shallow", "orca")
    print(f"shallow-family QC_sat   canopy: {canopy_shallow:.3f}   orca: {orca_shallow:.3f}   "
          f"ratio: {canopy_shallow / max(orca_shallow, 1e-9):.2f}x")
    assert canopy_shallow >= orca_shallow - 0.05
