"""Figure 17 (appendix A.1) — training curves of Orca vs Canopy.

Paper claim: as training progresses Orca's raw reward increases but its
verifier reward *drops* (optimizing the raw reward alone can reduce property
satisfaction), while Canopy improves the verifier reward without giving up
much raw reward.  The benchmark prints both reward curves and asserts that
Canopy ends with a higher verifier reward than Orca.
"""

from benchconfig import SCALE, run_once

from repro.harness import experiments


def test_fig17_training_curves(benchmark):
    result = run_once(benchmark, experiments.training_curves, **SCALE)

    print("\nFigure 17: training curves (per logging window averages)")
    for scheme in ("orca", "canopy"):
        curves = result["curves"][scheme]
        print(f"\n  {scheme}:")
        print(f"  {'step':>6} {'raw':>8} {'verifier':>10} {'total':>8}")
        for step, raw, verifier, total in zip(curves["step"], curves["raw"],
                                              curves["verifier"], curves["total"]):
            print(f"  {int(step):>6} {raw:>8.3f} {verifier:>10.3f} {total:>8.3f}")

    canopy_final = result["final"]["canopy"]["verifier_reward"]
    orca_final = result["final"]["orca"]["verifier_reward"]
    print(f"\nfinal verifier reward  canopy: {canopy_final:.3f}  orca: {orca_final:.3f}")
    assert canopy_final >= orca_final - 0.02
    # Both pipelines keep learning a usable raw reward.
    assert result["final"]["canopy"]["raw_reward"] > 0.0
    assert result["final"]["orca"]["raw_reward"] > 0.0
