"""Figure 14 — TCP friendliness against competing CUBIC flows.

Paper claim: because Canopy (like Orca) delegates fine-grained control to
CUBIC, its throughput ratio against competing CUBIC flows stays close to
Orca's and to CUBIC-vs-CUBIC, on both shallow (1 BDP) and deep (5 BDP)
bottlenecks, and across propagation delays.  The benchmark prints the
throughput ratios for an increasing number of competing CUBIC flows and for
a range of RTTs.
"""

from benchconfig import SCALE, TRAINING_STEPS, SEED, run_once

from repro.cc.cubic import CubicController
from repro.harness.evaluate import scheme_factory
from repro.harness.fairness import friendliness, rtt_friendliness
from repro.harness.models import get_trained_model
from repro.harness.reporting import format_rows


def test_fig14_friendliness(benchmark):
    def run_experiment():
        canopy_shallow = get_trained_model("canopy-shallow", training_steps=TRAINING_STEPS, seed=SEED)
        canopy_deep = get_trained_model("canopy-deep", training_steps=TRAINING_STEPS, seed=SEED)
        orca = get_trained_model("orca", training_steps=TRAINING_STEPS, seed=SEED)
        cases = {
            ("shallow", "canopy"): (scheme_factory("canopy", model=canopy_shallow, seed=SEED), 1.0),
            ("shallow", "orca"): (scheme_factory("orca", model=orca, seed=SEED), 1.0),
            ("shallow", "cubic"): (lambda: CubicController(), 1.0),
            ("deep", "canopy"): (scheme_factory("canopy", model=canopy_deep, seed=SEED), 5.0),
            ("deep", "orca"): (scheme_factory("orca", model=orca, seed=SEED), 5.0),
            ("deep", "cubic"): (lambda: CubicController(), 5.0),
        }
        flow_rows, rtt_rows = [], []
        for (family, scheme_name), (factory, buffer_bdp) in cases.items():
            flow_result = friendliness(factory, scheme_name, competing_flows=(1, 2, 4),
                                       buffer_bdp=buffer_bdp, duration=15.0)
            for row in flow_result["rows"]:
                flow_rows.append({"buffer_family": family, **row})
            if family == "shallow":
                rtt_result = rtt_friendliness(factory, scheme_name, rtts_ms=(20.0, 50.0, 100.0),
                                              buffer_bdp=buffer_bdp, duration=15.0)
                rtt_rows.extend(rtt_result["rows"])
        return flow_rows, rtt_rows

    flow_rows, rtt_rows = run_once(benchmark, run_experiment)

    print("\nFigure 14a/b: throughput ratio vs number of competing CUBIC flows")
    print(format_rows(flow_rows, columns=["buffer_family", "scheme", "competing_cubic_flows",
                                          "scheme_throughput_mbps", "mean_cubic_throughput_mbps",
                                          "throughput_ratio"]))
    print("\nFigure 14 (RTT friendliness, shallow buffers)")
    print(format_rows(rtt_rows, columns=["scheme", "rtt_ms", "scheme_throughput_mbps",
                                         "cubic_throughput_mbps", "throughput_ratio"]))

    # Shape: Canopy's friendliness stays within a small factor of CUBIC-vs-CUBIC.
    by_key = {}
    for row in flow_rows:
        by_key.setdefault((row["buffer_family"], row["scheme"]), []).append(row["throughput_ratio"])
    for family in ("shallow", "deep"):
        canopy_mean = sum(by_key[(family, "canopy")]) / len(by_key[(family, "canopy")])
        cubic_mean = sum(by_key[(family, "cubic")]) / len(by_key[(family, "cubic")])
        print(f"{family}: mean ratio canopy {canopy_mean:.2f} vs cubic {cubic_mean:.2f}")
        assert canopy_mean <= cubic_mean * 4.0 + 0.5
