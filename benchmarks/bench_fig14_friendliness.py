"""Figure 14 — TCP friendliness against competing CUBIC flows.

Paper claim: because Canopy (like Orca) delegates fine-grained control to
CUBIC, its throughput ratio against competing CUBIC flows stays close to
Orca's and to CUBIC-vs-CUBIC, on both shallow (1 BDP) and deep (5 BDP)
bottlenecks, and across propagation delays.  The benchmark prints the
throughput ratios for an increasing number of competing CUBIC flows and for
a range of RTTs.

Every sweep point is a declarative :class:`MultiFlowTask` (scheme label +
model kind, no factory closures) built by the registered ``friendliness``
experiment, so the whole grid shards across a process pool via
``REPRO_BENCH_JOBS`` with rows identical to a serial run (and is reachable
generically as ``python -m repro run friendliness``).
"""

from benchconfig import N_JOBS, SEED, TRAINING_STEPS, run_once

from repro.harness import experiments
from repro.harness.reporting import format_rows


def test_fig14_friendliness(benchmark):
    result = run_once(
        benchmark, experiments.friendliness_grid,
        flows=(1, 2, 4), rtts_ms=(20.0, 50.0, 100.0),
        training_steps=TRAINING_STEPS, duration=15.0, seed=SEED, n_jobs=N_JOBS,
    )
    flow_rows = [row for row in result["rows"] if row["mode"] == "friendliness"]
    rtt_rows = [row for row in result["rows"] if row["mode"] == "rtt_friendliness"]

    print("\nFigure 14a/b: throughput ratio vs number of competing CUBIC flows")
    print(format_rows(flow_rows, columns=["buffer_family", "scheme", "competing_cubic_flows",
                                          "scheme_throughput_mbps", "mean_cubic_throughput_mbps",
                                          "throughput_ratio"]))
    print("\nFigure 14 (RTT friendliness, shallow buffers)")
    print(format_rows(rtt_rows, columns=["scheme", "rtt_ms", "scheme_throughput_mbps",
                                         "cubic_throughput_mbps", "throughput_ratio"]))

    # Shape: Canopy's friendliness stays within a small factor of CUBIC-vs-CUBIC.
    by_key = {}
    for row in flow_rows:
        by_key.setdefault((row["buffer_family"], row["scheme"]), []).append(row["throughput_ratio"])
    for family in ("shallow", "deep"):
        canopy_mean = sum(by_key[(family, "canopy")]) / len(by_key[(family, "canopy")])
        cubic_mean = sum(by_key[(family, "cubic")]) / len(by_key[(family, "cubic")])
        print(f"{family}: mean ratio canopy {canopy_mean:.2f} vs cubic {cubic_mean:.2f}")
        assert canopy_mean <= cubic_mean * 4.0 + 0.5
