"""Figure 1 — Orca vs Canopy sending rate under ±5% observation noise.

Paper claim: adding small uniform noise to the observed queuing delay makes
Orca collapse its sending rate (severe under-utilization) while the
Canopy-trained controller stays close to its noise-free behaviour.
The benchmark prints per-scheme utilization/delay with and without noise and
the utilization drop caused by the noise.
"""

from benchconfig import DURATION, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_fig01_noise_motivation(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.motivation_noise,
        duration=DURATION, noise=0.05, **bench_scale,
    )
    print_experiment(
        "Figure 1: Orca vs Canopy under +-5% delay noise",
        result,
        columns=["scheme", "utilization", "avg_queuing_delay_ms", "p95_queuing_delay_ms", "loss_rate"],
    )
    print(f"utilization drop under noise  orca: {result['orca_noise_drop']:+.3f}  "
          f"canopy: {result['canopy_noise_drop']:+.3f}")

    rows = {row["scheme"]: row for row in result["rows"]}
    # Shape check: Canopy's utilization is at least as noise-stable as Orca's.
    assert result["canopy_noise_drop"] <= result["orca_noise_drop"] + 0.05
    assert rows["canopy-noise"]["utilization"] > 0.0
