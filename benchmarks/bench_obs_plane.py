"""Observability-plane throughput — frames through rollup and exposition.

The serve daemon's HTTP surface re-aggregates the full ``metrics.jsonl``
stream on every ``GET /metrics`` scrape, so the cost that matters is *frames
through* ``fleet_rollup`` *plus exposition render* per scrape.  This bench
builds a synthetic fleet stream (many workers, many cumulative frames each,
realistic monotone counters), times the scrape path end to end, and stamps
``frames_per_scrape`` / ``scrapes_per_sec`` into the bench JSON.

A second pass times store compaction over the same stream and records the
``compaction_ratio`` — the retention subsystem's headline number, matching
what the obs-smoke CI job measures on a live fleet.

Scale knobs: ``REPRO_BENCH_OBS_WORKERS`` / ``REPRO_BENCH_OBS_FRAMES``.
"""

import os
import tempfile
import time
from pathlib import Path

from repro.obs.aggregate import fleet_rollup
from repro.obs.http import render_exposition, validate_exposition
from repro.obs.metrics import MetricsJournal
from repro.obs.retention import RetentionPolicy, compact_store
from repro.telemetry.profiler import TICK_PHASES

N_WORKERS = int(os.environ.get("REPRO_BENCH_OBS_WORKERS", "8"))
N_FRAMES = int(os.environ.get("REPRO_BENCH_OBS_FRAMES", "200"))

#: Scrapes timed per benchmark round.
N_SCRAPES = 20


def synthetic_stream(store: Path) -> int:
    """Write a plausible cumulative frame stream for N_WORKERS workers."""
    journal = MetricsJournal(store)
    for worker_index in range(N_WORKERS):
        worker = f"w{worker_index}"
        ticks = 0
        phase_seconds = {phase: 0.0 for phase in TICK_PHASES}
        for seq in range(N_FRAMES):
            ticks += 200 + 7 * (seq % 5)
            for offset, phase in enumerate(TICK_PHASES):
                # Distinct but deterministic per-phase costs.
                phase_seconds[phase] += 1e-6 * ticks * (offset + 1)
            journal.append({
                "v": 1, "kind": "frame", "worker": worker, "seq": seq,
                "t": float(seq) + 0.01 * worker_index,
                "uptime_s": float(seq),
                "cells_done": seq // 4, "ticks": ticks,
                "sim_wall_s": 0.001 * ticks,
                "phase_seconds": dict(phase_seconds),
                "telemetry_events": 3 * seq,
            })
    return journal.appended


def scrape_pass(store: Path) -> int:
    samples = 0
    for _ in range(N_SCRAPES):
        text = render_exposition(store)
        samples = validate_exposition(text)["samples"]
    return samples


def test_metrics_scrape_throughput(benchmark):
    store = Path(tempfile.mkdtemp(prefix="bench-obs-"))
    frames = synthetic_stream(store)

    start = time.perf_counter()
    samples = benchmark.pedantic(scrape_pass, args=(store,),
                                 rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    rollup = fleet_rollup(MetricsJournal(store).read())
    benchmark.extra_info["frames_per_scrape"] = frames
    benchmark.extra_info["scrapes_per_sec"] = N_SCRAPES / elapsed
    benchmark.extra_info["metrics_frames_per_sec"] = frames * N_SCRAPES / elapsed
    benchmark.extra_info["exposition_samples"] = samples

    print(f"\nobs scrape: {N_SCRAPES} scrapes over {frames} frames "
          f"({N_WORKERS} workers) at {N_SCRAPES / elapsed:.1f} scrapes/s, "
          f"{samples} exposition samples each")

    assert rollup["fleet"]["frames"] == frames
    assert samples > 0
    # A scrape of a fleet this size must stay interactive.
    assert elapsed / N_SCRAPES < 5.0, "GET /metrics would feel unusable"


def test_frame_compaction_ratio(benchmark):
    store = Path(tempfile.mkdtemp(prefix="bench-obs-compact-"))
    frames = synthetic_stream(store)

    report = benchmark.pedantic(
        compact_store, args=(store, RetentionPolicy(keep_frames=10)),
        rounds=1, iterations=1)

    benchmark.extra_info["compaction_ratio"] = report["compaction_ratio"]
    benchmark.extra_info["frames_folded"] = report["frames_folded"]

    print(f"\nobs compaction: folded {report['frames_folded']}/{frames} "
          f"frames, ratio {report['compaction_ratio']:.3f}")

    assert report["frames_folded"] == frames - N_WORKERS * 10
    assert report["compaction_ratio"] < 0.5, "folding should shrink the stream"
    # The folded stream still aggregates to the same cumulative truth.
    after = fleet_rollup(MetricsJournal(store).read())["fleet"]
    assert after["frames"] == frames
