"""Figure 7 — QC_sat for the robustness property (P5).

Paper claim: the Canopy model trained with P5 reaches up to 0.81 QC_sat
(real-world traces) and 0.68 (synthetic), while Orca's QC_sat is below 0.05
under delay noise.  At CI scale both nets are small and smooth, so the gap is
muted (see EXPERIMENTS.md); the benchmark asserts the ordering
Canopy >= Orca and prints the absolute values.
"""

from benchconfig import DURATION, EVAL_COMPONENTS, N_CELLULAR, N_JOBS, N_SYNTHETIC, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_fig07_qcsat_robustness(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.qcsat_robustness,
        duration=DURATION, n_components=EVAL_COMPONENTS,
        n_synthetic=N_SYNTHETIC, n_cellular=N_CELLULAR, noise=0.05, n_jobs=N_JOBS, **bench_scale,
    )
    print_experiment(
        "Figure 7: QC_sat for the robustness property (P5), 2 BDP buffers, 5% noise",
        result,
        columns=["trace_kind", "scheme", "qcsat_mean", "qcsat_std", "n_traces"],
    )

    def mean_for(scheme: str) -> float:
        values = [row["qcsat_mean"] for row in result["rows"] if row["scheme"] == scheme]
        return sum(values) / len(values)

    canopy, orca = mean_for("canopy"), mean_for("orca")
    print(f"overall robustness QC_sat  canopy: {canopy:.3f}  orca: {orca:.3f}")
    assert canopy >= orca - 0.05
