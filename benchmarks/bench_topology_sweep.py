"""Topology-family sweep — multi-bottleneck scenarios and simulator throughput.

The paper evaluates every scheme over a single shared bottleneck; this
benchmark drives the classical schemes over the multi-bottleneck family
catalog (``single_bottleneck``, ``chain(n)``, ``parking_lot(n)``,
``dumbbell``) and records, in the bench JSON (``extra_info``):

* the simulator tick throughput of the grid (ticks/sec — the hot-path number
  that bounds how many scenarios a CI run can cover), and
* one utilization / avg-delay / p95-delay / loss row per (family, scheme).

Families can be overridden through ``REPRO_BENCH_TOPOLOGIES`` (comma
separated), e.g. the CI smoke job runs a small chain(3) sweep.  The
differential suite (``tests/test_topology_differential.py``) pins
``single_bottleneck`` to the legacy single-link trajectory, so the
single-bottleneck rows here are directly comparable with every historical
figure.
"""

import os
import time

from benchconfig import DURATION, N_JOBS, SEED, run_once

from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.netsim import NetworkSimulator
from repro.harness import experiments
from repro.harness.reporting import format_rows
from repro.harness.spec import parse_topologies
from repro.topology import build_topology
from repro.traces.synthetic import make_synthetic_trace

FAMILIES = parse_topologies(os.environ.get(
    "REPRO_BENCH_TOPOLOGIES",
    "single_bottleneck,chain(3),parking_lot(3),dumbbell",
))

SCHEMES = ("cubic", "vegas", "bbr")


def test_topology_sweep_families(benchmark):
    result = run_once(
        benchmark, experiments.topology_sweep,
        families=FAMILIES, schemes=SCHEMES,
        duration=DURATION, n_synthetic=2, seed=SEED, n_jobs=N_JOBS,
    )

    print("\nTopology-family sweep: utilization vs delay per family")
    print(format_rows(result["rows"], columns=["topology", "scheme", "utilization",
                                               "avg_delay_ms", "p95_delay_ms", "loss_rate"]))
    print(f"simulator throughput: {result['ticks_per_sec']:,.0f} ticks/s "
          f"({result['ticks']} ticks over {result['wall_clock_s']:.2f}s, "
          f"n_jobs={result['n_jobs']})")

    # Per-family rows land in the bench JSON alongside the tick throughput.
    benchmark.extra_info["families"] = list(FAMILIES)
    benchmark.extra_info["rows"] = result["rows"]

    assert len(FAMILIES) >= 3, "the sweep must cover at least 3 topology families"
    assert result["ticks_per_sec"] > 0.0
    by_family = {}
    for row in result["rows"]:
        by_family.setdefault(row["topology"], []).append(row)
    assert set(by_family) == set(FAMILIES)
    for family, rows in by_family.items():
        for row in rows:
            assert 0.0 < row["utilization"] <= 1.5, (family, row["scheme"])
            assert row["avg_delay_ms"] >= 0.0

    # Shape: cross traffic (parking lot) costs the scheme under test capacity
    # relative to an uncontended single bottleneck.
    _shape_check(by_family)


#: Raw ``NetworkSimulator.tick`` ticks for the multi-hop hot-path microbench.
MULTI_HOP_TICKS = int(os.environ.get("REPRO_BENCH_MULTI_HOP_TICKS", "20000"))


def test_multi_hop_tick_throughput(benchmark):
    """Raw multi-hop tick rate on chain(3) — the transit-stage hot path.

    The per-hop propagation stage (transit queues between hops) sits directly
    on the drain loop, so this microbench guards its overhead: the recorded
    ``multi_hop_ticks_per_sec`` scalar folds into ``BENCH_ci.json`` and must
    stay within ~10% of the pre-transit baseline.
    """

    def run_ticks():
        trace = make_synthetic_trace("step-12-48")
        topology = build_topology("chain(3)", trace, min_rtt=0.06,
                                  buffer_bdp=1.0, seed=7)
        flows = [Flow(0, CubicController()),
                 Flow(1, CubicController(), start_time=1.0),
                 Flow(2, CubicController(), start_time=2.0)]
        sim = NetworkSimulator(topology, flows, dt=0.01)
        start = time.perf_counter()
        for _ in range(MULTI_HOP_TICKS):
            sim.tick()
        elapsed = time.perf_counter() - start
        return {"ticks": MULTI_HOP_TICKS,
                "ticks_per_sec": MULTI_HOP_TICKS / elapsed,
                "total_acked": sum(f.total_acked for f in sim.flows.values())}

    result = run_once(benchmark, run_ticks)
    benchmark.extra_info["multi_hop_ticks_per_sec"] = result["ticks_per_sec"]
    print(f"\nchain(3) raw tick throughput: {result['ticks_per_sec']:,.0f} ticks/s "
          f"({result['ticks']} ticks)")
    assert result["ticks_per_sec"] > 0.0
    # Sanity: the run moved real traffic over the chain, so the measured loop
    # exercised enqueue, transit, drain, and ack processing.
    assert result["total_acked"] > 0.0


def test_telemetry_tick_overhead(benchmark):
    """Traced vs untraced tick rate on chain(3) — the telemetry overhead gate.

    Runs the multi-hop microbench loop twice, identical except for an
    attached :class:`EventTrace` (default conservation stride), and records
    ``telemetry_overhead_ratio`` = untraced/traced ticks-per-sec into the
    bench JSON.  A ratio creeping far above 1 means event emission has leaked
    into the per-packet hot path instead of staying on the per-tick seams.
    """
    from repro.telemetry import EventTrace

    def run_ticks(telemetry):
        trace = make_synthetic_trace("step-12-48")
        topology = build_topology("chain(3)", trace, min_rtt=0.06,
                                  buffer_bdp=1.0, seed=7)
        flows = [Flow(0, CubicController()),
                 Flow(1, CubicController(), start_time=1.0),
                 Flow(2, CubicController(), start_time=2.0)]
        sim = NetworkSimulator(topology, flows, dt=0.01, telemetry=telemetry)
        start = time.perf_counter()
        for _ in range(MULTI_HOP_TICKS):
            sim.tick()
        elapsed = time.perf_counter() - start
        return MULTI_HOP_TICKS / elapsed, telemetry

    def run_pair():
        untraced, _ = run_ticks(None)
        traced, events = run_ticks(EventTrace())
        return {"untraced_ticks_per_sec": untraced,
                "traced_ticks_per_sec": traced,
                "overhead_ratio": untraced / traced,
                "n_events": len(events)}

    result = run_once(benchmark, run_pair)
    benchmark.extra_info["traced_ticks_per_sec"] = result["traced_ticks_per_sec"]
    benchmark.extra_info["telemetry_overhead_ratio"] = result["overhead_ratio"]
    print(f"\nchain(3) traced tick throughput: "
          f"{result['traced_ticks_per_sec']:,.0f} ticks/s "
          f"(untraced {result['untraced_ticks_per_sec']:,.0f}, "
          f"overhead x{result['overhead_ratio']:.3f}, "
          f"{result['n_events']} events)")
    assert result["traced_ticks_per_sec"] > 0.0
    assert result["n_events"] > 0, "the traced run must actually record events"
    # Generous CI bound — the signal is the recorded trajectory, the assert
    # only catches a hot-path catastrophe (per-packet emission, say).
    assert result["overhead_ratio"] < 3.0


def _shape_check(by_family):
    if "single_bottleneck" in by_family:
        single_util = {row["scheme"]: row["utilization"]
                       for row in by_family["single_bottleneck"]}
        for family, rows in by_family.items():
            if not family.startswith("parking_lot"):
                continue
            for row in rows:
                assert row["utilization"] <= single_util[row["scheme"]] + 0.05, (
                    f"{row['scheme']} on {family} should not beat the "
                    f"uncontended single bottleneck")
