"""Figure 10 — empirical performance on deep (5 BDP) buffers.

Paper claims (Takeaways 2, 4): on deep buffers the Canopy deep-buffer model
cuts p95 delay relative to Orca (by ~28% on synthetic and ~61% on cellular
traces) with roughly comparable utilization, and provides 57-74% smaller p95
delays than CUBIC (whose cubic growth fills the deep buffer).  The benchmark
prints the same rows and asserts the delay ordering Canopy <= CUBIC.
"""

from benchconfig import DURATION, N_CELLULAR, N_JOBS, N_SYNTHETIC, run_once

from repro.harness import experiments
from repro.harness.reporting import print_experiment


def test_fig10_deep_buffer_performance(benchmark, bench_scale):
    result = run_once(
        benchmark, experiments.performance_sweep,
        buffer_bdp=5.0, canopy_kind="canopy-deep",
        duration=DURATION, n_synthetic=N_SYNTHETIC, n_cellular=N_CELLULAR, n_jobs=N_JOBS,
        **bench_scale,
    )
    print_experiment(
        "Figure 10: deep buffer (5 BDP) — utilization vs delay",
        result,
        columns=["trace_kind", "scheme", "utilization", "avg_delay_ms", "p95_delay_ms", "loss_rate"],
    )

    by_scheme = {}
    for row in result["rows"]:
        by_scheme.setdefault(row["scheme"], []).append(row)

    def mean_p95(scheme):
        rows = by_scheme[scheme]
        return sum(r["p95_delay_ms"] for r in rows) / len(rows)

    canopy_p95, cubic_p95, orca_p95 = mean_p95("canopy"), mean_p95("cubic"), mean_p95("orca")
    print(f"mean p95 delay (ms)  canopy: {canopy_p95:.1f}  orca: {orca_p95:.1f}  cubic: {cubic_p95:.1f}")
    # Shape: the deep-buffer Canopy model avoids CUBIC's bufferbloat.
    assert canopy_p95 <= cubic_p95 * 1.1
