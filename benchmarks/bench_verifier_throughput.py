"""Verifier throughput — batched certification engine vs the scalar reference.

The quantitative-certificate pipeline dominates Canopy's runtime: the paper
evaluates with N=50 components per property at every coarse-grained decision.
The batched engine propagates all N components as one ``(N, d)`` box through
the actor (one IBP pass per property) instead of looping components in
Python.  This benchmark measures both paths on identical decision contexts,
records certificates/sec and wall-clock in the bench JSON (``extra_info``),
and asserts the batched engine clears a >= 5x speedup at evaluation scale.

The differential suite (``tests/test_verifier_differential.py``) proves the
two paths produce numerically identical certificates, so the speedup is free.
"""

import time

import numpy as np

from benchconfig import SEED

from repro.core.properties import all_properties
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.observations import ObservationConfig

#: Evaluation-scale component count (the paper's N during evaluation).
N_COMPONENTS = 50

#: Decision contexts certified per timed pass.
N_DECISIONS = 8

MIN_SPEEDUP = 5.0


def make_workload():
    rng = np.random.default_rng(SEED)
    obs_config = ObservationConfig()
    # Orca-sized actor: 2 hidden ReLU layers, tanh head.
    actor = make_actor(obs_config.state_dim, hidden_sizes=(64, 32), rng=rng)
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=N_COMPONENTS))
    properties = list(all_properties())
    contexts = [
        (rng.uniform(0.0, 1.0, obs_config.state_dim),
         float(rng.uniform(10.0, 100.0)),
         float(rng.uniform(10.0, 100.0)))
        for _ in range(N_DECISIONS)
    ]
    return verifier, properties, contexts


def certify_pass(verifier, properties, contexts, certify):
    certificates = 0
    for state, cwnd_tcp, cwnd_prev in contexts:
        for prop in properties:
            certify(prop, state, cwnd_tcp, cwnd_prev)
            certificates += 1
    return certificates


def test_batched_verifier_is_5x_faster_than_scalar_reference(benchmark):
    verifier, properties, contexts = make_workload()

    # Warm up both paths (first-touch allocations, BLAS thread spin-up).
    certify_pass(verifier, properties, contexts[:1], verifier.certify)
    certify_pass(verifier, properties, contexts[:1], verifier.certify_reference)

    start = time.perf_counter()
    n_certificates = certify_pass(verifier, properties, contexts, verifier.certify_reference)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    benchmark.pedantic(certify_pass, args=(verifier, properties, contexts, verifier.certify),
                       rounds=1, iterations=1)
    batched_seconds = time.perf_counter() - start

    speedup = scalar_seconds / batched_seconds
    batched_certs_per_sec = n_certificates / batched_seconds
    scalar_certs_per_sec = n_certificates / scalar_seconds
    benchmark.extra_info.update({
        "n_components": N_COMPONENTS,
        "n_certificates": n_certificates,
        "scalar_wall_clock_s": scalar_seconds,
        "batched_wall_clock_s": batched_seconds,
        "scalar_certificates_per_sec": scalar_certs_per_sec,
        "batched_certificates_per_sec": batched_certs_per_sec,
        "speedup": speedup,
    })
    print(f"\nverifier throughput at N={N_COMPONENTS}: "
          f"batched {batched_certs_per_sec:.0f} certs/s "
          f"vs scalar {scalar_certs_per_sec:.0f} certs/s  ({speedup:.1f}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"batched verifier only {speedup:.2f}x faster than the scalar reference "
        f"(required {MIN_SPEEDUP}x at N={N_COMPONENTS})"
    )
