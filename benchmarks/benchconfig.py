"""Scale knobs and helpers shared by every benchmark.

Kept separate from ``conftest.py`` so benchmark modules can import it by name
without colliding with the test suite's own conftest module.
"""

from __future__ import annotations

import os
import time

#: Environment-step budget used to train every learned model in benchmarks.
TRAINING_STEPS = int(os.environ.get("REPRO_BENCH_TRAINING_STEPS", "800"))

#: Emulated run length (seconds) for per-trace evaluations.
DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "10.0"))

#: QC components used when *evaluating* certificates (the paper uses 50).
EVAL_COMPONENTS = int(os.environ.get("REPRO_BENCH_EVAL_COMPONENTS", "30"))

#: Number of synthetic / cellular traces sampled per sweep.
N_SYNTHETIC = int(os.environ.get("REPRO_BENCH_N_SYNTHETIC", "3"))
N_CELLULAR = int(os.environ.get("REPRO_BENCH_N_CELLULAR", "2"))

#: Worker processes for grid experiments (1 = serial; 0 = one per CPU).
#: Serial and parallel runs produce identical rows, so this is purely a
#: wall-clock knob.
N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Seed shared by all benchmarks so models are trained exactly once per session.
SEED = 17

#: Keyword arguments accepted by every experiment driver that trains models.
SCALE = {"training_steps": TRAINING_STEPS, "seed": SEED}


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The measured wall-clock — and, when the driver reports them, the grid
    sharding stats and certificates/sec — are stamped into the benchmark's
    ``extra_info`` so they land in the bench JSON (``--benchmark-json``).
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    benchmark.extra_info["wall_clock_s"] = time.perf_counter() - start
    if isinstance(result, dict):
        for key in ("n_jobs", "certificates", "certificates_per_sec",
                    "ticks", "ticks_per_sec"):
            if key in result:
                benchmark.extra_info[key] = result[key]
        if "wall_clock_s" in result:
            benchmark.extra_info["grid_wall_clock_s"] = result["wall_clock_s"]
    return result
