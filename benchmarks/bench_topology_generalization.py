"""Cross-family generalization — train on topologies, certify everywhere.

The ROADMAP's training-side topology axis: one Canopy model is trained per
topology family (plus a domain-randomized ``mixed`` model trained across all
of them), then every model is certified on every family.  The benchmark
records, in the bench JSON (``extra_info``):

* the certificate throughput of the (train-family × eval-family) grid
  (certificates/sec — the verification hot-path number), and
* one QC_sat / utilization / delay row per (train family, eval family) cell.

Scale knobs (all override the benchmark defaults, which favor coverage over
speed):

* ``REPRO_BENCH_GEN_FAMILIES`` — comma-separated family specs (default
  ``single_bottleneck,chain(2),parking_lot(2)``),
* ``REPRO_BENCH_GEN_STEPS`` — per-model training budget (default 200),
* ``REPRO_BENCH_GEN_MIXED`` — 0 disables the domain-randomized model (the CI
  smoke job trains one short model per family only).
"""

import os

from benchconfig import DURATION, N_JOBS, SEED, run_once

from repro.harness import experiments
from repro.harness.reporting import format_rows
from repro.harness.spec import parse_bool, parse_topologies

FAMILIES = parse_topologies(os.environ.get(
    "REPRO_BENCH_GEN_FAMILIES",
    "single_bottleneck,chain(2),parking_lot(2)",
))
TRAINING_STEPS = int(os.environ.get("REPRO_BENCH_GEN_STEPS", "200"))
INCLUDE_MIXED = parse_bool(os.environ.get("REPRO_BENCH_GEN_MIXED", "1"))


def test_topology_generalization_grid(benchmark):
    result = run_once(
        benchmark, experiments.topology_generalization,
        families=FAMILIES, include_mixed=INCLUDE_MIXED,
        training_steps=TRAINING_STEPS, duration=DURATION,
        n_components=10, n_synthetic=2, seed=SEED, n_jobs=N_JOBS,
    )

    print("\nCross-family generalization: certified safety per (train, eval) cell")
    print(format_rows(result["rows"], columns=["train_family", "eval_family", "qcsat",
                                               "utilization", "avg_delay_ms", "loss_rate"]))
    print(f"certificate throughput: {result['certificates_per_sec']:,.0f} certs/s "
          f"({result['certificates']} certificates over {result['wall_clock_s']:.2f}s, "
          f"n_jobs={result['n_jobs']})")

    # Per-cell rows land in the bench JSON alongside the certificate throughput.
    benchmark.extra_info["families"] = list(FAMILIES)
    benchmark.extra_info["train_families"] = result["train_families"]
    benchmark.extra_info["rows"] = result["rows"]

    expected_train = list(FAMILIES) + ([experiments.MIXED_TRAINING_LABEL] if INCLUDE_MIXED else [])
    assert result["train_families"] == expected_train
    assert len(result["rows"]) == len(expected_train) * len(FAMILIES)
    assert result["certificates"] > 0 and result["certificates_per_sec"] > 0.0

    by_cell = {(row["train_family"], row["eval_family"]): row for row in result["rows"]}
    assert len(by_cell) == len(result["rows"]), "duplicate (train, eval) cells"
    for row in result["rows"]:
        assert 0.0 <= row["qcsat"] <= 1.0, row
        assert 0.0 < row["utilization"] <= 1.5, row
        assert row["avg_delay_ms"] >= 0.0, row
