"""Falsification campaign throughput — cells/sec through search + shrink.

Runs the toy deterministic ``loss_burst`` campaign (classical CUBIC at a
shallow buffer — the same cell family the CI falsify-smoke job and the
committed golden counterexample store use) into a throwaway store and stamps
the search-efficiency stats into the bench JSON (``extra_info``):

* ``falsify_cells_per_sec`` — evaluated cells per wall-clock second, the
  falsification subsystem's headline throughput number, and
* ``violations_found`` / ``counterexamples_promoted`` — the campaign must
  actually find, shrink, and promote something, or the bench itself is
  measuring a broken search.

Budget and strategy can be scaled through ``REPRO_BENCH_FALSIFY_BUDGET`` /
``REPRO_BENCH_FALSIFY_STRATEGY``.
"""

import os
import tempfile
from pathlib import Path

from benchconfig import N_JOBS, run_once

from repro.falsify import CampaignConfig, resolve_objective, run_campaign
from repro.harness.store import RunStore

BUDGET = int(os.environ.get("REPRO_BENCH_FALSIFY_BUDGET", "12"))
STRATEGY = os.environ.get("REPRO_BENCH_FALSIFY_STRATEGY", "random")


def _run_campaign():
    workdir = Path(tempfile.mkdtemp(prefix="bench-falsify-"))
    config = CampaignConfig(
        experiment="workload_stress",
        objective=resolve_objective("loss_burst", threshold=0.001),
        budget=BUDGET,
        strategy=STRATEGY,
        campaign_seed=7,
        jobs=N_JOBS,
        overrides={"schemes": "cubic", "duration": "3", "buffer_bdp": "0.25"},
        max_counterexamples=2,
    )
    return run_campaign(config, RunStore(workdir / "campaign"))


def test_falsify_campaign_throughput(benchmark):
    summary = run_once(benchmark, _run_campaign)

    benchmark.extra_info["falsify_cells_per_sec"] = summary["falsify_cells_per_sec"]
    benchmark.extra_info["violations_found"] = summary["violations_found"]
    benchmark.extra_info["counterexamples_promoted"] = len(summary["counterexamples"])
    benchmark.extra_info["computed_cells"] = summary["computed_cells"]
    benchmark.extra_info["strategy"] = summary["strategy"]
    benchmark.extra_info["budget"] = summary["budget"]

    print(f"\nfalsify [{summary['strategy']}] budget={summary['budget']}: "
          f"{summary['computed_cells']} cells computed at "
          f"{summary['falsify_cells_per_sec']:.2f} cells/s, "
          f"{summary['violations_found']} violation(s), "
          f"{len(summary['counterexamples'])} promoted")

    assert summary["violations_found"] >= 1, "bench campaign found nothing"
    assert summary["counterexamples"], "bench campaign promoted nothing"
