"""Tests for model checkpointing (save/load to disk)."""

import numpy as np
import pytest

from repro.harness.checkpoints import SavedModel, load_model, save_model
from repro.harness.evaluate import EvaluationSettings, evaluate_qcsat, run_scheme_on_trace, scheme_factory
from repro.traces.trace import BandwidthTrace


def test_save_and_load_round_trip(tmp_path, quick_model):
    directory = save_model(quick_model, tmp_path, name="checkpoint")
    loaded = load_model(directory, "checkpoint")

    assert isinstance(loaded, SavedModel)
    assert loaded.kind == quick_model.kind
    assert [p.name for p in loaded.properties] == [p.name for p in quick_model.properties]
    assert loaded.observation_config.history_len == quick_model.observation_config.history_len

    state = np.clip(np.random.default_rng(0).uniform(0, 1, quick_model.observation_config.state_dim), 0, 1)
    assert np.allclose(loaded.policy(state), quick_model.policy(state))


def test_load_missing_checkpoint_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_model(tmp_path, "nothing-here")


def test_loaded_model_drives_evaluation(tmp_path, quick_model):
    directory = save_model(quick_model, tmp_path)
    loaded = load_model(directory, quick_model.kind)
    trace = BandwidthTrace.constant(24.0, duration=20.0, name="const-24")
    settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0, seed=2)

    run = run_scheme_on_trace(scheme_factory("canopy", model=loaded, seed=2), trace, settings,
                              scheme_name="canopy")
    assert run.summary.utilization > 0.0

    qcsat = evaluate_qcsat(loaded, trace, settings, n_components=4)
    assert 0.0 <= qcsat.mean <= 1.0


def test_saved_model_verifier(tmp_path, quick_model):
    directory = save_model(quick_model, tmp_path)
    loaded = load_model(directory, quick_model.kind)
    verifier = loaded.make_verifier(n_components=3)
    state = np.zeros(loaded.observation_config.state_dim)
    cert = verifier.certify(loaded.properties.by_name("P1"), state, cwnd_tcp=20.0, cwnd_prev=20.0)
    assert cert.n_components == 3
