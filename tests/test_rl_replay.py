"""Tests for the replay buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.replay import ReplayBuffer, Transition


def _fill(buffer: ReplayBuffer, n: int, state_dim: int = 3, action_dim: int = 1) -> None:
    for i in range(n):
        buffer.add(np.full(state_dim, i, dtype=float), np.full(action_dim, i, dtype=float),
                   float(i), np.full(state_dim, i + 1, dtype=float), done=(i % 5 == 0))


def test_invalid_construction():
    with pytest.raises(ValueError):
        ReplayBuffer(0, 3, 1)
    with pytest.raises(ValueError):
        ReplayBuffer(10, 0, 1)


def test_len_grows_until_capacity():
    buffer = ReplayBuffer(5, 3, 1)
    _fill(buffer, 3)
    assert len(buffer) == 3
    _fill(buffer, 5)
    assert len(buffer) == 5
    assert buffer.is_full


def test_ring_overwrite_keeps_most_recent():
    buffer = ReplayBuffer(3, 1, 1, seed=0)
    for i in range(6):
        buffer.add([float(i)], [0.0], float(i), [float(i)], False)
    batch = buffer.sample(3)
    # Only rewards 3, 4, 5 can remain after wrap-around.
    assert np.all(batch["rewards"] >= 3.0)


def test_sample_too_many_raises():
    buffer = ReplayBuffer(10, 2, 1)
    _fill(buffer, 4, state_dim=2)
    with pytest.raises(ValueError):
        buffer.sample(5)
    with pytest.raises(ValueError):
        buffer.sample(0)


def test_sample_shapes():
    buffer = ReplayBuffer(20, 4, 2, seed=1)
    for i in range(10):
        buffer.add(np.zeros(4), np.zeros(2), 0.0, np.zeros(4), False)
    batch = buffer.sample(6)
    assert batch["states"].shape == (6, 4)
    assert batch["actions"].shape == (6, 2)
    assert batch["rewards"].shape == (6,)
    assert batch["next_states"].shape == (6, 4)
    assert batch["dones"].shape == (6,)


def test_add_transition_dataclass():
    buffer = ReplayBuffer(5, 2, 1)
    buffer.add_transition(Transition(np.zeros(2), np.zeros(1), 1.0, np.ones(2), True))
    assert len(buffer) == 1
    batch = buffer.sample(1)
    assert batch["dones"][0] == pytest.approx(1.0)
    assert batch["rewards"][0] == pytest.approx(1.0)


def test_clear_resets():
    buffer = ReplayBuffer(5, 2, 1)
    _fill(buffer, 4, state_dim=2)
    buffer.clear()
    assert len(buffer) == 0


@given(st.integers(1, 40), st.integers(1, 15))
@settings(max_examples=30, deadline=None)
def test_size_never_exceeds_capacity(n_items, capacity):
    buffer = ReplayBuffer(capacity, 2, 1, seed=0)
    _fill(buffer, n_items, state_dim=2)
    assert len(buffer) == min(n_items, capacity)
