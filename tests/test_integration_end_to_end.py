"""End-to-end integration tests spanning training, verification and evaluation."""

import numpy as np
import pytest

from repro.core.config import CanopyConfig
from repro.core.monitor import QCRuntimeMonitor
from repro.core.properties import shallow_buffer_properties
from repro.core.trainer import CanopyTrainer, TrainerConfig
from repro.core.verifier import Verifier, VerifierConfig
from repro.harness.evaluate import EvaluationSettings, evaluate_qcsat, run_scheme_on_trace, scheme_factory
from repro.traces.synthetic import make_synthetic_trace


@pytest.mark.slow
def test_full_canopy_pipeline(quick_model, quick_orca_model):
    """Train (session fixture), evaluate on a trace, certify, and use the runtime monitor."""
    trace = make_synthetic_trace("step-12-48")
    settings = EvaluationSettings(duration=5.0, buffer_bdp=0.5, seed=3)

    # 1. Empirical evaluation of the learned controller against CUBIC.
    canopy_run = run_scheme_on_trace(scheme_factory("canopy", model=quick_model, seed=3),
                                     trace, settings, scheme_name="canopy")
    cubic_run = run_scheme_on_trace(scheme_factory("cubic"), trace, settings, scheme_name="cubic")
    assert canopy_run.summary.utilization > 0.05
    assert cubic_run.summary.utilization > 0.05

    # 2. QC_sat evaluation for both learned models on the same trace.
    canopy_qc = evaluate_qcsat(quick_model, trace, settings, n_components=8)
    orca_qc = evaluate_qcsat(quick_orca_model, trace, settings,
                             properties=shallow_buffer_properties(), n_components=8,
                             scheme_name="orca")
    assert 0.0 <= canopy_qc.mean <= 1.0
    assert 0.0 <= orca_qc.mean <= 1.0

    # 3. Runtime monitor gating the learned decisions.
    monitor = QCRuntimeMonitor(quick_model.make_verifier(n_components=4),
                               quick_model.properties, threshold=0.5, n_components=4)
    guarded = run_scheme_on_trace(
        scheme_factory("canopy-guarded", model=quick_model, decision_filter=monitor.decision_filter, seed=3),
        trace, settings, scheme_name="canopy-guarded")
    assert len(monitor.records) == len(guarded.decisions)
    assert 0.0 <= monitor.fallback_fraction <= 1.0


@pytest.mark.slow
def test_canopy_training_improves_property_satisfaction_over_orca():
    """The headline claim at CI scale: Canopy training yields higher QC feedback
    on the trained properties than the Orca baseline with the same budget."""
    steps = 500
    canopy = CanopyTrainer(CanopyConfig.shallow(seed=41),
                           TrainerConfig(total_steps=steps, log_every=steps // 4)).train()
    orca = CanopyTrainer(CanopyConfig.orca_baseline(seed=41),
                         TrainerConfig(total_steps=steps, log_every=steps // 4,
                                       use_verifier_reward=False)).train()
    assert canopy.history[-1].verifier_reward > orca.history[-1].verifier_reward


@pytest.mark.slow
def test_verifier_certifies_trained_model_on_fresh_states(quick_model):
    """Certification of the trained model works on states never seen in training."""
    verifier = Verifier(quick_model.actor, quick_model.observation_config,
                        VerifierConfig(n_components=10))
    rng = np.random.default_rng(5)
    feedbacks = []
    for _ in range(10):
        state = np.clip(rng.uniform(0.0, 1.0, quick_model.observation_config.state_dim), 0, 1)
        cwnd_tcp = float(rng.uniform(5.0, 200.0))
        cwnd_prev = float(rng.uniform(5.0, 200.0))
        for prop in quick_model.properties:
            cert = verifier.certify(prop, state, cwnd_tcp, cwnd_prev)
            assert 0.0 <= cert.feedback <= 1.0
            feedbacks.append(cert.feedback)
    assert len(feedbacks) == 20
