"""Tests for the interval domain: construction, arithmetic soundness, geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.interval import Interval


class TestConstruction:
    def test_point_interval_has_zero_width(self):
        iv = Interval.point([1.0, -2.0])
        assert np.allclose(iv.width, 0.0)
        assert iv.is_point()

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Interval(1.0, 0.0)

    def test_from_center_rejects_negative_deviation(self):
        with pytest.raises(ValueError):
            Interval.from_center(0.0, -1.0)

    def test_from_center_matches_bounds(self):
        iv = Interval.from_center([1.0, 2.0], [0.5, 1.0])
        assert np.allclose(iv.lo, [0.5, 1.0])
        assert np.allclose(iv.hi, [1.5, 3.0])

    def test_hull_contains_all(self):
        a = Interval(0.0, 1.0)
        b = Interval(2.0, 3.0)
        hull = Interval.hull([a, b])
        assert hull.contains_interval(a)
        assert hull.contains_interval(b)

    def test_hull_empty_raises(self):
        with pytest.raises(ValueError):
            Interval.hull([])


class TestGeometry:
    def test_contains_point(self):
        iv = Interval([0.0, 0.0], [1.0, 2.0])
        assert iv.contains([0.5, 1.5])
        assert not iv.contains([0.5, 2.5])

    def test_intersection(self):
        a = Interval(0.0, 2.0)
        b = Interval(1.0, 3.0)
        inter = a.intersection(b)
        assert inter is not None
        assert inter.lo == pytest.approx(1.0)
        assert inter.hi == pytest.approx(2.0)

    def test_disjoint_intersection_is_none(self):
        assert Interval(0.0, 1.0).intersection(Interval(2.0, 3.0)) is None

    def test_volume_1d(self):
        assert Interval(0.0, 2.0).volume() == pytest.approx(2.0)

    def test_volume_multidim(self):
        iv = Interval([0.0, 0.0], [2.0, 3.0])
        assert iv.volume() == pytest.approx(6.0)

    def test_overlap_fraction_full(self):
        assert Interval(0.0, 1.0).overlap_fraction(Interval(-1.0, 2.0)) == pytest.approx(1.0)

    def test_overlap_fraction_none(self):
        assert Interval(0.0, 1.0).overlap_fraction(Interval(2.0, 3.0)) == pytest.approx(0.0)

    def test_overlap_fraction_partial(self):
        assert Interval(0.0, 2.0).overlap_fraction(Interval(1.0, 5.0)) == pytest.approx(0.5)

    def test_overlap_fraction_degenerate_point(self):
        point = Interval.point(1.0)
        assert point.overlap_fraction(Interval(0.0, 2.0)) == pytest.approx(1.0)
        assert point.overlap_fraction(Interval(2.0, 3.0)) == pytest.approx(0.0)


class TestArithmetic:
    def test_add_intervals(self):
        result = Interval(0.0, 1.0) + Interval(2.0, 3.0)
        assert result.lo == pytest.approx(2.0)
        assert result.hi == pytest.approx(4.0)

    def test_add_scalar(self):
        result = Interval(0.0, 1.0) + 5.0
        assert result.lo == pytest.approx(5.0)

    def test_negation_flips_bounds(self):
        result = -Interval(1.0, 2.0)
        assert result.lo == pytest.approx(-2.0)
        assert result.hi == pytest.approx(-1.0)

    def test_subtract_intervals(self):
        result = Interval(0.0, 1.0) - Interval(2.0, 3.0)
        assert result.lo == pytest.approx(-3.0)
        assert result.hi == pytest.approx(-1.0)

    def test_multiply_negative_scalar(self):
        result = Interval(1.0, 2.0) * -3.0
        assert result.lo == pytest.approx(-6.0)
        assert result.hi == pytest.approx(-3.0)

    def test_multiply_intervals_spanning_zero(self):
        result = Interval(-1.0, 2.0) * Interval(-3.0, 1.0)
        assert result.lo == pytest.approx(-6.0)
        assert result.hi == pytest.approx(3.0)

    def test_divide_by_zero_interval_raises(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1.0, 2.0) / Interval(-1.0, 1.0)

    def test_divide_by_scalar(self):
        result = Interval(2.0, 4.0) / 2.0
        assert result.lo == pytest.approx(1.0)
        assert result.hi == pytest.approx(2.0)

    def test_abs_spanning_zero(self):
        result = Interval(-2.0, 1.0).abs()
        assert result.lo == pytest.approx(0.0)
        assert result.hi == pytest.approx(2.0)

    def test_clip(self):
        result = Interval(-2.0, 3.0).clip(0.0, 1.0)
        assert result.lo == pytest.approx(0.0)
        assert result.hi == pytest.approx(1.0)


class TestMonotoneFunctions:
    def test_relu(self):
        result = Interval(-1.0, 2.0).relu()
        assert result.lo == pytest.approx(0.0)
        assert result.hi == pytest.approx(2.0)

    def test_tanh_preserves_order(self):
        result = Interval(-1.0, 1.0).tanh()
        assert result.lo == pytest.approx(np.tanh(-1.0))
        assert result.hi == pytest.approx(np.tanh(1.0))

    def test_exp2(self):
        result = Interval(0.0, 1.0).exp2()
        assert result.lo == pytest.approx(1.0)
        assert result.hi == pytest.approx(2.0)


class TestSplitting:
    def test_split_scalar_covers_range(self):
        pieces = Interval(0.0, 1.0).split(4)
        assert len(pieces) == 4
        assert pieces[0].lo == pytest.approx(0.0)
        assert pieces[-1].hi == pytest.approx(1.0)
        total = sum(p.volume() for p in pieces)
        assert total == pytest.approx(1.0)

    def test_split_dims_only_touches_selected(self):
        iv = Interval([0.0, 0.0], [1.0, 4.0])
        pieces = iv.split_dims(2, [1])
        assert len(pieces) == 2
        for piece in pieces:
            assert piece.lo[0] == pytest.approx(0.0)
            assert piece.hi[0] == pytest.approx(1.0)
        assert pieces[0].hi[1] == pytest.approx(2.0)
        assert pieces[1].lo[1] == pytest.approx(2.0)

    def test_split_invalid_n_raises(self):
        with pytest.raises(ValueError):
            Interval(0.0, 1.0).split(0)

    def test_select(self):
        iv = Interval([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        sub = iv.select([0, 2])
        assert np.allclose(sub.lo, [0.0, 2.0])
        assert np.allclose(sub.hi, [1.0, 3.0])


# ---------------------------------------------------------------------- #
# Property-based soundness: concrete results stay inside interval results.
# ---------------------------------------------------------------------- #
finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


@st.composite
def scalar_interval(draw):
    a = draw(finite)
    b = draw(finite)
    return Interval(min(a, b), max(a, b))


@given(scalar_interval(), scalar_interval(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_addition_soundness(x, y, tx, ty):
    px = float(x.lo + tx * (x.hi - x.lo))
    py = float(y.lo + ty * (y.hi - y.lo))
    assert (x + y).contains(px + py, tol=1e-6)


@given(scalar_interval(), scalar_interval(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_multiplication_soundness(x, y, tx, ty):
    px = float(x.lo + tx * (x.hi - x.lo))
    py = float(y.lo + ty * (y.hi - y.lo))
    assert (x * y).contains(px * py, tol=1e-5)


@given(scalar_interval(), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_tanh_soundness(x, t):
    p = float(x.lo + t * (x.hi - x.lo))
    assert x.tanh().contains(np.tanh(p), tol=1e-9)


@given(scalar_interval(), st.integers(1, 10), st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_split_covers_every_point(x, n, t):
    p = float(x.lo + t * (x.hi - x.lo))
    pieces = x.split(n)
    assert any(piece.contains(p, tol=1e-9) for piece in pieces)
