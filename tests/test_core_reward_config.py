"""Tests for the QC-shaped reward (Eq. 10) and the CanopyConfig presets."""

import numpy as np
import pytest

from repro.core.config import CanopyConfig
from repro.core.properties import shallow_buffer_properties
from repro.core.reward import CanopyRewardShaper
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.observations import ObservationConfig


@pytest.fixture
def shaper_setup():
    obs_config = ObservationConfig()
    actor = make_actor(obs_config.state_dim, hidden_sizes=(16, 8), rng=np.random.default_rng(0))
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=5))
    state = np.clip(np.random.default_rng(1).uniform(0, 1, obs_config.state_dim), 0, 1)
    return verifier, state


class TestRewardShaper:
    def test_invalid_lambda(self, shaper_setup):
        verifier, _ = shaper_setup
        with pytest.raises(ValueError):
            CanopyRewardShaper(verifier, shallow_buffer_properties(), lam=1.5)

    def test_lambda_zero_returns_raw(self, shaper_setup):
        verifier, state = shaper_setup
        shaper = CanopyRewardShaper(verifier, shallow_buffer_properties(), lam=0.0)
        shaped = shaper.shape(0.7, state, 20.0, 20.0)
        assert shaped.total == pytest.approx(0.7)

    def test_lambda_one_returns_verifier(self, shaper_setup):
        verifier, state = shaper_setup
        shaper = CanopyRewardShaper(verifier, shallow_buffer_properties(), lam=1.0)
        shaped = shaper.shape(0.7, state, 20.0, 20.0)
        assert shaped.total == pytest.approx(shaped.verifier)

    def test_equation_ten_mixing(self, shaper_setup):
        verifier, state = shaper_setup
        shaper = CanopyRewardShaper(verifier, shallow_buffer_properties(), lam=0.25)
        shaped = shaper.shape(0.8, state, 20.0, 20.0)
        assert shaped.total == pytest.approx(0.75 * 0.8 + 0.25 * shaped.verifier)
        assert shaped.raw == pytest.approx(0.8)
        assert shaped.lam == pytest.approx(0.25)

    def test_per_property_breakdown(self, shaper_setup):
        verifier, state = shaper_setup
        shaper = CanopyRewardShaper(verifier, shallow_buffer_properties(), lam=0.5)
        shaped = shaper.shape(0.0, state, 20.0, 20.0)
        assert set(shaped.per_property) == {"P1", "P2"}
        assert all(0.0 <= v <= 1.0 for v in shaped.per_property.values())


class TestCanopyConfig:
    def test_presets_match_paper_setup(self):
        shallow = CanopyConfig.shallow()
        deep = CanopyConfig.deep()
        robust = CanopyConfig.robustness()
        assert shallow.buffer_bdp == pytest.approx(0.5)
        assert deep.buffer_bdp == pytest.approx(5.0)
        assert robust.buffer_bdp == pytest.approx(2.0)
        assert shallow.lam == pytest.approx(0.25)
        assert shallow.n_components == 5
        assert {p.name for p in deep.properties} == {"P3", "P4i", "P4ii"}
        assert robust.observation_noise == pytest.approx(0.05)

    def test_orca_baseline_has_zero_lambda(self):
        assert CanopyConfig.orca_baseline().lam == pytest.approx(0.0)

    def test_env_and_td3_autoconfigured(self):
        config = CanopyConfig.shallow()
        assert config.env.buffer_bdp == pytest.approx(0.5)
        assert config.td3.state_dim == config.observation.state_dim

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            CanopyConfig(name="bad", properties=shallow_buffer_properties(), lam=2.0)

    def test_with_lambda_rebuilds(self):
        config = CanopyConfig.shallow().with_lambda(0.75)
        assert config.lam == pytest.approx(0.75)
        assert config.env is not None and config.td3 is not None

    def test_with_components(self):
        config = CanopyConfig.shallow().with_components(10)
        assert config.n_components == 10
