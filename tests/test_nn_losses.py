"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import huber_loss, mse_loss


def test_mse_zero_for_perfect_prediction():
    pred = np.array([[1.0], [2.0]])
    loss, grad = mse_loss(pred, pred.copy())
    assert loss == pytest.approx(0.0)
    assert np.allclose(grad, 0.0)


def test_mse_value_and_gradient():
    pred = np.array([[1.0], [3.0]])
    target = np.array([[0.0], [1.0]])
    loss, grad = mse_loss(pred, target)
    assert loss == pytest.approx((1.0 + 4.0) / 2.0)
    assert np.allclose(grad, 2.0 * (pred - target) / 2.0)


def test_mse_shape_mismatch_raises():
    with pytest.raises(ValueError):
        mse_loss(np.zeros((2, 1)), np.zeros((3, 1)))


def test_mse_gradient_matches_numerical():
    rng = np.random.default_rng(0)
    pred = rng.normal(size=(4, 1))
    target = rng.normal(size=(4, 1))
    _, grad = mse_loss(pred, target)
    eps = 1e-6
    numerical = np.zeros_like(pred)
    for i in range(pred.shape[0]):
        plus = pred.copy(); plus[i, 0] += eps
        minus = pred.copy(); minus[i, 0] -= eps
        numerical[i, 0] = (mse_loss(plus, target)[0] - mse_loss(minus, target)[0]) / (2 * eps)
    assert np.allclose(grad, numerical, atol=1e-5)


def test_huber_equals_mse_half_for_small_errors():
    pred = np.array([[0.1], [-0.2]])
    target = np.zeros((2, 1))
    huber, _ = huber_loss(pred, target, delta=1.0)
    mse, _ = mse_loss(pred, target)
    assert huber == pytest.approx(mse / 2.0)


def test_huber_linear_region_gradient_is_bounded():
    pred = np.array([[100.0]])
    target = np.array([[0.0]])
    _, grad = huber_loss(pred, target, delta=1.0)
    assert abs(grad[0, 0]) <= 1.0


def test_huber_invalid_delta():
    with pytest.raises(ValueError):
        huber_loss(np.zeros((1, 1)), np.zeros((1, 1)), delta=0.0)


def test_huber_shape_mismatch_raises():
    with pytest.raises(ValueError):
        huber_loss(np.zeros((2, 1)), np.zeros((1, 1)))
