"""Tests for the multi-flow friendliness and fairness experiments."""

import pytest

from repro.cc.cubic import CubicController
from repro.cc.vegas import VegasController
from repro.harness.fairness import (
    MultiFlowTask,
    fairness_convergence,
    friendliness,
    rtt_friendliness,
    run_multiflow_grid,
    run_multiflow_task,
)


class TestFriendliness:
    def test_cubic_vs_cubic_is_roughly_fair(self):
        result = friendliness(CubicController, "cubic", competing_flows=(1,), duration=12.0)
        row = result["rows"][0]
        assert row["competing_cubic_flows"] == 1
        assert 0.4 <= row["throughput_ratio"] <= 2.5

    def test_ratio_reported_for_each_flow_count(self):
        result = friendliness(CubicController, "cubic", competing_flows=(1, 2), duration=8.0)
        assert len(result["rows"]) == 2
        assert result["figure"] == "14"

    def test_rtt_friendliness_rows(self):
        result = rtt_friendliness(CubicController, "cubic", rtts_ms=(20.0, 50.0), duration=8.0)
        assert len(result["rows"]) == 2
        for row in result["rows"]:
            assert row["scheme_throughput_mbps"] > 0.0
            assert row["cubic_throughput_mbps"] > 0.0


class TestFairnessConvergence:
    def test_flows_join_and_share(self):
        result = fairness_convergence(CubicController, "cubic", n_flows=2, join_interval=5.0,
                                      duration=15.0)
        assert result["figure"] == "15"
        assert len(result["final_throughputs_mbps"]) == 2
        assert 0.5 <= result["jain_index"] <= 1.0
        # The late-joining flow eventually gets a nontrivial share.
        assert min(result["final_throughputs_mbps"]) > 1.0

    def test_series_has_one_entry_per_flow(self):
        result = fairness_convergence(VegasController, "vegas", n_flows=2, join_interval=4.0,
                                      duration=12.0)
        # Flow ids are stringified so the row shape survives JSON round-trips
        # (run-store rows and in-process rows must be identical).
        assert set(result["series_mbps"]) == {"0", "1"}
        assert len(result["series_mbps"]["0"]) == 12

    def test_late_flow_idle_before_join(self):
        result = fairness_convergence(CubicController, "cubic", n_flows=2, join_interval=6.0,
                                      duration=14.0)
        early_buckets = result["series_mbps"]["1"][:5]
        assert max(early_buckets) == pytest.approx(0.0, abs=1e-6)


class TestDeclarativeMultiFlowGrid:
    def test_task_validation(self):
        with pytest.raises(ValueError):
            MultiFlowTask(mode="nope", scheme="cubic", value=1)
        with pytest.raises(ValueError):
            MultiFlowTask(mode="friendliness", scheme="cubic", value=0)

    def test_task_row_matches_direct_call(self):
        task = MultiFlowTask(mode="friendliness", scheme="cubic", value=2, duration=8.0)
        row = run_multiflow_task(task)
        direct = friendliness(CubicController, "cubic", competing_flows=(2,), duration=8.0)
        for key, value in direct["rows"][0].items():
            assert row[key] == value
        assert row["mode"] == "friendliness"

    def test_fairness_mode_reports_jain_index(self):
        task = MultiFlowTask(mode="fairness_convergence", scheme="cubic", value=2,
                             join_interval=5.0, duration=15.0)
        row = run_multiflow_task(task)
        assert 0.5 <= row["jain_index"] <= 1.0
        assert len(row["final_throughputs_mbps"]) == 2

    def test_grid_rows_identical_serial_and_parallel(self):
        tasks = [
            MultiFlowTask(mode="friendliness", scheme="cubic", value=n, duration=6.0,
                          tags={"cell": index})
            for index, n in enumerate((1, 2))
        ] + [
            MultiFlowTask(mode="rtt_friendliness", scheme="vegas", value=rtt, duration=6.0,
                          tags={"cell": 2 + index})
            for index, rtt in enumerate((20.0, 50.0))
        ]
        serial = run_multiflow_grid(tasks, n_jobs=1)
        parallel = run_multiflow_grid(tasks, n_jobs=2)
        assert serial.rows == parallel.rows
        assert [row["cell"] for row in serial.rows] == [0, 1, 2, 3]
        assert serial.n_tasks == 4
