"""Tests for the TD3 agent: configuration, acting, updates, and learning."""

import numpy as np
import pytest

from repro.rl.env import Environment
from repro.rl.spaces import BoxSpace
from repro.rl.td3 import TD3Agent, TD3Config


def make_agent(**overrides) -> TD3Agent:
    defaults = dict(state_dim=4, action_dim=1, hidden_sizes=(16, 16), warmup_steps=16,
                    batch_size=16, seed=0)
    defaults.update(overrides)
    return TD3Agent(TD3Config(**defaults))


class TestConfig:
    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TD3Config(state_dim=0)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            TD3Config(state_dim=2, gamma=0.0)

    def test_invalid_policy_delay(self):
        with pytest.raises(ValueError):
            TD3Config(state_dim=2, policy_delay=0)


class TestActing:
    def test_action_within_bounds(self):
        agent = make_agent()
        for _ in range(20):
            action = agent.act(np.random.default_rng(0).normal(size=4), explore=True)
            assert np.all(np.abs(action) <= 1.0)

    def test_deterministic_without_exploration(self):
        agent = make_agent()
        state = np.ones(4)
        assert np.allclose(agent.act(state), agent.act(state))

    def test_policy_callable_matches_act(self):
        agent = make_agent()
        state = np.ones(4) * 0.3
        assert np.allclose(agent.policy(state), agent.act(state, explore=False))


class TestUpdates:
    def test_update_skipped_before_warmup(self):
        agent = make_agent()
        assert agent.update() == {}

    def test_update_returns_losses_after_warmup(self):
        agent = make_agent()
        rng = np.random.default_rng(1)
        for _ in range(20):
            s = rng.normal(size=4)
            a = agent.act(s, explore=True)
            agent.observe(s, a, rng.normal(), rng.normal(size=4), False)
        metrics = agent.update()
        assert "critic1_loss" in metrics and "critic2_loss" in metrics

    def test_actor_updated_only_on_policy_delay(self):
        agent = make_agent(policy_delay=2)
        rng = np.random.default_rng(2)
        for _ in range(20):
            s = rng.normal(size=4)
            agent.observe(s, agent.act(s, explore=True), 0.0, rng.normal(size=4), False)
        first = agent.update()
        second = agent.update()
        assert "actor_loss" not in first
        assert "actor_loss" in second

    def test_target_networks_move_towards_online(self):
        agent = make_agent(policy_delay=1, tau=0.5)
        rng = np.random.default_rng(3)
        for _ in range(20):
            s = rng.normal(size=4)
            agent.observe(s, agent.act(s, explore=True), rng.normal(), rng.normal(size=4), False)
        before = agent.target_actor.get_weights()[0].copy()
        agent.actor.parameters()[0][...] += 1.0
        agent.update()
        after = agent.target_actor.get_weights()[0]
        assert not np.allclose(before, after)

    def test_weights_round_trip(self):
        agent = make_agent()
        other = make_agent(seed=99)
        other.set_weights(agent.get_weights())
        state = np.ones(4) * 0.2
        assert np.allclose(agent.act(state), other.act(state))


class _GoalEnv(Environment):
    """Tiny environment: reward is highest when the action equals +1."""

    def __init__(self) -> None:
        self.observation_space = BoxSpace(np.zeros(2), np.ones(2))
        self.action_space = BoxSpace(np.array([-1.0]), np.array([1.0]))
        self._steps = 0

    def reset(self, seed=None):
        self._steps = 0
        return np.zeros(2)

    def step(self, action):
        self._steps += 1
        reward = float(-(1.0 - float(action[0])) ** 2)
        done = self._steps >= 10
        return np.zeros(2), reward, done, {}


def test_td3_learns_trivial_bandit():
    env = _GoalEnv()
    agent = make_agent(state_dim=2, warmup_steps=32, batch_size=32,
                       exploration_sigma=0.3, policy_delay=1, actor_lr=3e-3, critic_lr=3e-3)
    state = env.reset()
    for _ in range(600):
        action = agent.act(state, explore=True)
        next_state, reward, done, _ = env.step(action)
        agent.observe(state, action, reward, next_state, done)
        agent.update()
        state = env.reset() if done else next_state
    final_action = agent.act(np.zeros(2))
    assert final_action[0] > 0.3  # moved decisively toward the optimum (+1)


def test_rollout_helper_reports_rewards():
    env = _GoalEnv()
    agent = make_agent(state_dim=2)
    summary = env.rollout(agent.policy, max_steps=20)
    assert summary["steps"] == 10
    assert len(summary["rewards"]) == 10
    assert summary["total_reward"] <= 0.0
