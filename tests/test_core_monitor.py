"""Tests for the runtime QC monitor and fallback."""

import numpy as np
import pytest

from repro.core.monitor import QCRuntimeMonitor
from repro.core.properties import shallow_buffer_properties
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.observations import ObservationConfig


@pytest.fixture
def setup():
    obs_config = ObservationConfig()
    actor = make_actor(obs_config.state_dim, hidden_sizes=(16, 8), rng=np.random.default_rng(0))
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=5))
    state = np.clip(np.random.default_rng(1).uniform(0, 1, obs_config.state_dim), 0, 1)
    return actor, verifier, state


def make_biased_verifier(obs_config, bias):
    actor = make_actor(obs_config.state_dim, hidden_sizes=(8,), rng=np.random.default_rng(0))
    dense = actor.layers[-2]
    dense.weight[...] = 0.0
    dense.bias[...] = bias
    return Verifier(actor, obs_config, VerifierConfig(n_components=5))


class TestValidation:
    def test_invalid_threshold(self, setup):
        _, verifier, _ = setup
        with pytest.raises(ValueError):
            QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=1.5)

    def test_invalid_components(self, setup):
        _, verifier, _ = setup
        with pytest.raises(ValueError):
            QCRuntimeMonitor(verifier, shallow_buffer_properties(), n_components=0)


class TestDecisions:
    def test_evaluate_returns_per_property(self, setup):
        _, verifier, state = setup
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.5, n_components=5)
        value, per_property = monitor.evaluate(state, 20.0, 20.0)
        assert 0.0 <= value <= 1.0
        assert set(per_property) == {"P1", "P2"}

    def test_threshold_zero_always_allows(self, setup):
        _, verifier, state = setup
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.0, n_components=5)
        allow, _ = monitor.decision_filter(state, 20.0, 20.0)
        assert allow

    def test_disabled_monitor_always_allows(self, setup):
        _, verifier, state = setup
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=1.0,
                                   n_components=5, enabled=False)
        allow, _ = monitor.decision_filter(state, 20.0, 20.0)
        assert allow

    def test_high_threshold_triggers_fallback_for_violating_policy(self, setup):
        # A policy pinned at a=-1 always shrinks cwnd, so P1's QC feedback is
        # ~0.5 (P1 violated, P2 satisfied); a 0.9 threshold must trip fallback.
        _, _, state = setup
        verifier = make_biased_verifier(ObservationConfig(), bias=-10.0)
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.9, n_components=5)
        allow, value = monitor.decision_filter(state, 20.0, 20.0)
        assert not allow
        assert value < 0.9
        assert monitor.fallback_fraction == pytest.approx(1.0)

    def test_satisfying_policy_never_falls_back(self, setup):
        # A neutral-constant policy (a=0, cwnd == cwnd_tcp == cwnd_prev) satisfies
        # both shallow-buffer properties, so feedback is 1.0 everywhere.
        _, _, state = setup
        verifier = make_biased_verifier(ObservationConfig(), bias=0.0)
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.9, n_components=5)
        allow, value = monitor.decision_filter(state, 20.0, 20.0)
        assert allow
        assert value == pytest.approx(1.0)

    def test_records_and_reset(self, setup):
        _, verifier, state = setup
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.5, n_components=3)
        monitor.decision_filter(state, 20.0, 20.0)
        monitor.decision_filter(state, 25.0, 20.0)
        assert len(monitor.records) == 2
        assert 0.0 <= monitor.mean_qc <= 1.0
        monitor.reset()
        assert monitor.records == []
        assert monitor.mean_qc == pytest.approx(1.0)


class TestEmptyRecordGuards:
    """Regression: summary properties on a monitor that never decided must
    return their neutral values, not raise ZeroDivisionError (ISSUE 7 #3)."""

    def test_empty_monitor_summaries_are_neutral(self, setup):
        _, verifier, _ = setup
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.5, n_components=3)
        assert monitor.records == []
        assert monitor.fallback_fraction == 0.0
        assert monitor.mean_qc == pytest.approx(1.0)
        assert monitor.n_fallback_episodes == 0
        assert monitor.longest_fallback_run == 0

    def test_guards_hold_after_reset(self, setup):
        _, verifier, state = setup
        verifier = make_biased_verifier(ObservationConfig(), bias=-10.0)
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.9, n_components=5)
        monitor.decision_filter(state, 20.0, 20.0)
        assert monitor.fallback_fraction == pytest.approx(1.0)
        monitor.reset()
        assert monitor.fallback_fraction == 0.0
        assert monitor.mean_qc == pytest.approx(1.0)


class TestTelemetryEmission:
    """The monitor's qc_decision / fallback_enter / fallback_exit stream."""

    def test_vetoing_monitor_emits_decision_and_fallback_enter(self, setup):
        from repro.telemetry import EventTrace

        _, _, state = setup
        verifier = make_biased_verifier(ObservationConfig(), bias=-10.0)
        trace = EventTrace()
        trace.advance(1.0)
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.9,
                                   n_components=5, telemetry=trace)
        monitor.decision_filter(state, 20.0, 20.0)
        kinds = [event["kind"] for event in trace.events]
        assert kinds == ["qc_decision", "fallback_enter"]
        decision = trace.events[0]
        assert decision["t"] == 1.0
        assert decision["allowed"] is False
        assert decision["margin"] == pytest.approx(decision["qc"] - 0.9)
        # Staying in fallback must not re-emit fallback_enter.
        monitor.decision_filter(state, 20.0, 20.0)
        kinds = [event["kind"] for event in trace.events]
        assert kinds == ["qc_decision", "fallback_enter", "qc_decision"]
        assert monitor.n_fallback_episodes == 1
        assert monitor.longest_fallback_run == 2

    def test_allowing_monitor_exits_fallback(self, setup):
        from repro.telemetry import EventTrace

        _, _, state = setup
        trace = EventTrace()
        verifier = make_biased_verifier(ObservationConfig(), bias=0.0)
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.9,
                                   n_components=5, telemetry=trace)
        monitor._in_fallback = True  # as if a storm were in progress
        monitor.decision_filter(state, 20.0, 20.0)
        kinds = [event["kind"] for event in trace.events]
        assert kinds == ["qc_decision", "fallback_exit"]
        assert trace.events[0]["allowed"] is True

    def test_untraced_monitor_emits_nothing(self, setup):
        _, verifier, state = setup
        monitor = QCRuntimeMonitor(verifier, shallow_buffer_properties(), threshold=0.5, n_components=3)
        monitor.decision_filter(state, 20.0, 20.0)  # telemetry=None: no-op path
