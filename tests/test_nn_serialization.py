"""Tests for network weight serialization."""

import numpy as np
import pytest

from repro.nn.mlp import MLP, make_actor
from repro.nn.serialization import load_mlp, load_weight_dict, save_mlp, save_weight_dict
from repro.rl.td3 import TD3Agent, TD3Config


def test_mlp_round_trip(tmp_path):
    model = make_actor(6, hidden_sizes=(8, 4), rng=np.random.default_rng(0))
    path = save_mlp(model, tmp_path / "actor.npz")
    loaded = load_mlp(path)
    x = np.random.default_rng(1).normal(size=(5, 6))
    assert np.allclose(model.forward(x), loaded.forward(x))
    assert loaded.hidden_sizes == model.hidden_sizes
    assert loaded.output_activation == model.output_activation


def test_mlp_save_appends_npz_suffix(tmp_path):
    model = MLP(3, (4,), 1, rng=np.random.default_rng(2))
    path = save_mlp(model, tmp_path / "weights")
    assert path.suffix == ".npz"
    assert path.exists()


def test_load_rejects_foreign_archive(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, data=np.zeros(3))
    with pytest.raises(ValueError):
        load_mlp(path)
    with pytest.raises(ValueError):
        load_weight_dict(path)


def test_weight_dict_round_trip_through_td3_agent(tmp_path):
    agent = TD3Agent(TD3Config(state_dim=5, hidden_sizes=(8, 8), seed=0))
    path = save_weight_dict(agent.get_weights(), tmp_path / "agent.npz")
    restored = load_weight_dict(path)

    other = TD3Agent(TD3Config(state_dim=5, hidden_sizes=(8, 8), seed=99))
    other.set_weights(restored)
    state = np.linspace(0.0, 1.0, 5)
    assert np.allclose(agent.act(state), other.act(state))


def test_weight_dict_preserves_structure(tmp_path):
    weights = {"a": [np.ones((2, 2)), np.zeros(2)], "b": [np.full(3, 7.0)]}
    path = save_weight_dict(weights, tmp_path / "mix.npz")
    loaded = load_weight_dict(path)
    assert set(loaded) == {"a", "b"}
    assert len(loaded["a"]) == 2
    assert np.allclose(loaded["b"][0], 7.0)
