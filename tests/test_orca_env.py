"""Tests for the Orca RL training environment."""

import numpy as np
import pytest

from repro.orca.env import OrcaEnvConfig, OrcaNetworkEnv
from repro.traces.trace import BandwidthTrace


def make_env(**overrides):
    defaults = dict(episode_intervals=6, seed=5)
    defaults.update(overrides)
    return OrcaNetworkEnv(OrcaEnvConfig(**defaults))


class TestConfigValidation:
    def test_invalid_bandwidth_range(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(bandwidth_range_mbps=(10.0, 5.0))

    def test_invalid_rtt_range(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(rtt_range_s=(0.0, 0.1))

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(buffer_bdp=0.0)

    def test_monitor_interval_smaller_than_tick(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(monitor_interval=0.001, tick=0.01)


class TestEnvironment:
    def test_step_before_reset_raises(self):
        env = make_env()
        with pytest.raises(RuntimeError):
            env.step(np.array([0.0]))

    def test_reset_returns_state_of_right_dim(self):
        env = make_env()
        state = env.reset()
        assert state.shape == (env.state_dim,)

    def test_episode_terminates_after_configured_intervals(self):
        env = make_env(episode_intervals=4)
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done, _ = env.step(np.array([0.0]))
            steps += 1
            assert steps <= 10
        assert steps == 4

    def test_info_contains_decision_context(self):
        env = make_env()
        env.reset()
        _, _, _, info = env.step(np.array([0.3]))
        for key in ("report", "cwnd_tcp", "cwnd_prev", "cwnd_enforced", "action", "raw_reward"):
            assert key in info
        assert info["cwnd_enforced"] == pytest.approx(2 ** (2 * 0.3) * info["cwnd_tcp"], rel=1e-6)

    def test_action_clipping(self):
        env = make_env()
        env.reset()
        _, _, _, info = env.step(np.array([5.0]))
        assert info["action"] == pytest.approx(1.0)

    def test_rewards_are_finite(self):
        env = make_env(episode_intervals=8)
        env.reset()
        for _ in range(8):
            _, reward, done, _ = env.step(np.array([0.0]))
            assert np.isfinite(reward)

    def test_seeded_reset_is_reproducible(self):
        env_a = make_env(seed=9)
        env_b = make_env(seed=9)
        state_a = env_a.reset()
        state_b = env_b.reset()
        assert np.allclose(state_a, state_b)

    def test_explicit_trace_list_is_used(self):
        trace = BandwidthTrace.constant(24.0, duration=60.0, name="fixed-24")
        env = make_env(traces=[trace])
        env.reset()
        _, _, _, info = env.step(np.array([0.0]))
        assert info["link_capacity_mbps"] == pytest.approx(24.0)

    def test_observation_noise_option(self):
        env = make_env(observation_noise=0.05)
        state = env.reset()
        assert state.shape == (env.state_dim,)

    def test_cubic_property_requires_reset(self):
        env = make_env()
        with pytest.raises(RuntimeError):
            _ = env.cubic
        env.reset()
        assert env.cubic.cwnd >= 2.0

    def test_aggressive_action_raises_enforced_window(self):
        env = make_env()
        env.reset()
        _, _, _, info_up = env.step(np.array([1.0]))
        assert info_up["cwnd_enforced"] == pytest.approx(4.0 * info_up["cwnd_tcp"], rel=1e-6)
