"""Tests for the Orca RL training environment."""

import numpy as np
import pytest

from repro.orca.env import OrcaEnvConfig, OrcaNetworkEnv
from repro.seeding import derive_seed
from repro.traces.trace import BandwidthTrace


def make_env(**overrides):
    defaults = dict(episode_intervals=6, seed=5)
    defaults.update(overrides)
    return OrcaNetworkEnv(OrcaEnvConfig(**defaults))


class TestConfigValidation:
    def test_invalid_bandwidth_range(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(bandwidth_range_mbps=(10.0, 5.0))

    def test_invalid_rtt_range(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(rtt_range_s=(0.0, 0.1))

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(buffer_bdp=0.0)

    def test_monitor_interval_smaller_than_tick(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(monitor_interval=0.001, tick=0.01)


class TestEnvironment:
    def test_step_before_reset_raises(self):
        env = make_env()
        with pytest.raises(RuntimeError):
            env.step(np.array([0.0]))

    def test_reset_returns_state_of_right_dim(self):
        env = make_env()
        state = env.reset()
        assert state.shape == (env.state_dim,)

    def test_episode_terminates_after_configured_intervals(self):
        env = make_env(episode_intervals=4)
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done, _ = env.step(np.array([0.0]))
            steps += 1
            assert steps <= 10
        assert steps == 4

    def test_info_contains_decision_context(self):
        env = make_env()
        env.reset()
        _, _, _, info = env.step(np.array([0.3]))
        for key in ("report", "cwnd_tcp", "cwnd_prev", "cwnd_enforced", "action", "raw_reward"):
            assert key in info
        assert info["cwnd_enforced"] == pytest.approx(2 ** (2 * 0.3) * info["cwnd_tcp"], rel=1e-6)

    def test_action_clipping(self):
        env = make_env()
        env.reset()
        _, _, _, info = env.step(np.array([5.0]))
        assert info["action"] == pytest.approx(1.0)

    def test_rewards_are_finite(self):
        env = make_env(episode_intervals=8)
        env.reset()
        for _ in range(8):
            _, reward, done, _ = env.step(np.array([0.0]))
            assert np.isfinite(reward)

    def test_seeded_reset_is_reproducible(self):
        env_a = make_env(seed=9)
        env_b = make_env(seed=9)
        state_a = env_a.reset()
        state_b = env_b.reset()
        assert np.allclose(state_a, state_b)

    def test_explicit_trace_list_is_used(self):
        trace = BandwidthTrace.constant(24.0, duration=60.0, name="fixed-24")
        env = make_env(traces=[trace])
        env.reset()
        _, _, _, info = env.step(np.array([0.0]))
        assert info["link_capacity_mbps"] == pytest.approx(24.0)

    def test_observation_noise_option(self):
        env = make_env(observation_noise=0.05)
        state = env.reset()
        assert state.shape == (env.state_dim,)

    def test_cubic_property_requires_reset(self):
        env = make_env()
        with pytest.raises(RuntimeError):
            _ = env.cubic
        env.reset()
        assert env.cubic.cwnd >= 2.0

    def test_aggressive_action_raises_enforced_window(self):
        env = make_env()
        env.reset()
        _, _, _, info_up = env.step(np.array([1.0]))
        assert info_up["cwnd_enforced"] == pytest.approx(4.0 * info_up["cwnd_tcp"], rel=1e-6)


class TestTopologyScenarios:
    FAMILIES = ("single_bottleneck", "chain(2)", "dumbbell")

    def test_empty_topologies_rejected(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(topologies=())

    def test_malformed_spec_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            OrcaEnvConfig(topologies=("not_a_family",))
        with pytest.raises(ValueError):
            OrcaEnvConfig(topologies=("chain(0)",))

    def test_scenario_requires_reset(self):
        env = make_env()
        with pytest.raises(RuntimeError):
            _ = env.scenario

    def test_default_catalog_is_single_bottleneck(self):
        env = make_env()
        env.reset()
        assert env.scenario.spec == "single_bottleneck"
        assert env.scenario.hop_seeds == (("bottleneck", env.scenario.hop_seeds[0][1]),)

    def test_same_seed_same_scenario_sequence(self):
        env_a = make_env(seed=13, topologies=self.FAMILIES)
        env_b = make_env(seed=13, topologies=self.FAMILIES)
        for _ in range(8):
            env_a.reset()
            env_b.reset()
        assert env_a.scenario_history == env_b.scenario_history
        assert len(env_a.scenario_history) == 8
        assert [scenario.episode for scenario in env_a.scenario_history] == list(range(8))

    def test_domain_randomization_samples_every_family(self):
        env = make_env(seed=3, topologies=self.FAMILIES)
        seen = set()
        for _ in range(32):
            env.reset()
            seen.add(env.scenario.spec)
        assert seen == set(self.FAMILIES)

    def test_episode_seed_follows_derive_seed_convention(self):
        # Per-hop loss-RNG seeds must derive from the episode seed and the
        # (spec, trace, link) coordinates, exactly like evaluation-side grids.
        env = make_env(seed=7, topologies=("chain(2)",))
        env.reset()
        scenario = env.scenario
        assert len(scenario.hop_seeds) == 2
        for link_name, hop_seed in scenario.hop_seeds:
            assert hop_seed == derive_seed(scenario.seed, "topology", scenario.spec,
                                           scenario.trace_name, link_name)

    def test_multi_hop_info_fields(self):
        env = make_env(seed=2, topologies=("chain(2)",))
        env.reset()
        _, _, _, info = env.step(np.array([0.0]))
        assert info["topology"] == "chain(2)"
        assert info["n_hops"] == 2
        assert info["episode_seed"] == env.scenario.seed
        assert np.isfinite(info["min_rtt"]) and info["min_rtt"] > 0.0

    def test_scenario_as_dict_round_trip(self):
        env = make_env(seed=4, topologies=("parking_lot(2)",))
        env.reset()
        payload = env.scenario.as_dict()
        assert payload["topology"] == "parking_lot(2)"
        assert payload["episode"] == 0
        assert set(payload["hop_seeds"]) == {"seg1", "seg2"}

    def test_multi_hop_episode_runs_to_completion(self):
        env = make_env(seed=6, episode_intervals=4, topologies=("dumbbell",))
        env.reset()
        done = False
        steps = 0
        while not done:
            _, reward, done, _ = env.step(np.array([0.0]))
            assert np.isfinite(reward)
            steps += 1
        assert steps == 4
